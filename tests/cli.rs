//! CLI-level tests of the `lsl` binary: exit codes, failure echoing,
//! sweep output, and the serve/remote loop — what scripts (and CI)
//! rely on.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};

fn lsl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsl"))
}

fn run_ok(args: &[&str]) -> Output {
    let out = lsl().args(args).output().expect("spawn lsl");
    assert!(
        out.status.success(),
        "lsl {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A failing job makes the exit code non-zero and echoes the failing
/// spec on stderr — partial failure must be impossible to miss in
/// scripts.
#[test]
fn failing_job_exits_nonzero_and_echoes_the_spec() {
    let bad = "graph=cycle:8 model=coloring:q=5 algorithm=glauber scheduler=luby";
    let good = "graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=10";
    let out = lsl().args(["run", bad, good]).output().expect("spawn lsl");
    assert!(!out.status.success(), "partial failure must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("in spec:"), "stderr: {stderr}");
    assert!(
        stderr.contains("algorithm=glauber scheduler=luby"),
        "the failing spec is echoed: {stderr}"
    );
    // The good job still ran and reported.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("feasible=true"), "stdout: {stdout}");
}

/// A spec that does not parse fails before anything runs.
#[test]
fn parse_errors_fail_fast() {
    let out = lsl()
        .args(["run", "graph=moebius:9", "model=mis"])
        .output()
        .expect("spawn lsl");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("graph family"), "stderr: {stderr}");
}

/// Sweep lines expand, print indexed members, and summarize.
#[test]
fn sweep_lines_report_members_and_summary() {
    let out = run_ok(&[
        "run",
        "graph=cycle:10 model=coloring:q=5 job=run:rounds=10 seeds=0..3",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for i in 0..3 {
        assert!(stdout.contains(&format!("[{i}] ")), "member {i}: {stdout}");
    }
    assert!(stdout.contains("sweep: jobs=3"), "summary: {stdout}");
}

/// `lsl list scenarios` names the sweep clauses next to everything
/// else.
#[test]
fn scenario_listing_covers_sweeps() {
    let out = run_ok(&["list", "scenarios"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in ["graph=", "model=", "job=", "seeds=", "sweep="] {
        assert!(stdout.contains(key), "missing {key}: {stdout}");
    }
}

/// A server child that is killed (and reaped) even if the test panics.
struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The full remote loop as a script would drive it: start `lsl serve`
/// on an ephemeral port, scrape the port from its startup line, run a
/// remote batch (single job + seed sweep), and compare the stdout to
/// the local run of the same lines — identical up to timings.
#[test]
fn serve_and_remote_run_match_local_output() {
    let mut child = lsl()
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn lsl serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let guard = ServeGuard(child);
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("read the startup line");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {first_line:?}"))
        .to_string();

    let lines = [
        "graph=torus:5x5 model=coloring:q=9 seed=4 job=run:rounds=30",
        "graph=cycle:10 model=coloring:q=5 job=run:rounds=10 seeds=0..3",
    ];
    let mut remote_args = vec!["run", "--remote", &addr];
    remote_args.extend(lines);
    let remote = run_ok(&remote_args);
    let mut local_args = vec!["run"];
    local_args.extend(lines);
    let local = run_ok(&local_args);

    let strip_timing = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .map(|l| match l.find("  (") {
                Some(ix) => &l[..ix],
                None => l,
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_timing(&remote.stdout),
        strip_timing(&local.stdout),
        "remote and local output diverged"
    );
    drop(guard);
}
