//! Cross-crate integration tests: the full pipeline from graph
//! generation through LOCAL-model protocol execution to distributional
//! validation against exact ground truth.

use lsl::analysis::EmpiricalDistribution;
use lsl::core::programs::{LocalMetropolisProgram, LubyGlauberProgram};
use lsl::graph::traversal;
use lsl::local::runtime::Simulator;
use lsl::mrf::gibbs::{encode_config, Enumeration};
use lsl::prelude::*;
use std::sync::Arc;

/// End-to-end: LOCAL protocol on a cycle samples the exact Gibbs law.
#[test]
fn local_protocol_matches_exact_gibbs() {
    let mrf = models::proper_coloring(generators::cycle(4), 3);
    let exact = Enumeration::new(&mrf).unwrap();
    let graph = mrf.graph_arc();
    let mut emp = EmpiricalDistribution::new();
    for rep in 0..6000u64 {
        let sim = Simulator::new(Arc::clone(&graph), 40_000 + rep);
        let run = sim.run_with::<LubyGlauberProgram>(150, &mrf);
        emp.record(encode_config(&run.outputs, 3));
    }
    let tv = emp.tv_against_dense(&exact.distribution());
    assert!(tv < 0.05, "LOCAL LubyGlauber tv = {tv}");
}

/// The two execution surfaces (direct chain vs LOCAL program) target the
/// same distribution.
#[test]
fn direct_and_local_surfaces_agree() {
    let mrf = Arc::new(models::hardcore(generators::path(3), 1.2));
    let q = 2;
    let steps = 60;
    let reps = 8000u64;

    let mut emp_direct = EmpiricalDistribution::new();
    for rep in 0..reps {
        let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(Algorithm::LocalMetropolis)
            .seed(rep)
            .build()
            .unwrap();
        sampler.run(steps);
        emp_direct.record(encode_config(sampler.state(), q));
    }

    let graph = mrf.graph_arc();
    let mut emp_local = EmpiricalDistribution::new();
    for rep in 0..reps {
        let sim = Simulator::new(Arc::clone(&graph), 70_000 + rep);
        let run = sim.run_with::<LocalMetropolisProgram>(steps, &mrf);
        emp_local.record(encode_config(&run.outputs, q));
    }

    let tv = emp_direct.tv_against(&emp_local);
    assert!(tv < 0.03, "surfaces disagree: tv = {tv}");
}

/// Sampling on a multigraph (parallel edges from the §5.1 lift): every
/// chain respects the doubled constraints.
#[test]
fn chains_handle_multigraphs() {
    let g = lsl::graph::Graph::from_edges(4, &[(0, 1), (0, 1), (1, 2), (2, 3), (3, 0)]);
    let mrf = Arc::new(models::proper_coloring(g, 5));
    for alg in [Algorithm::LocalMetropolis, Algorithm::LubyGlauber] {
        let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(alg)
            .seed(3)
            .build()
            .unwrap();
        sampler.run(100);
        assert!(mrf.is_feasible(sampler.state()), "{alg:?} infeasible");
    }
}

/// The full lower-bound pipeline: build gadget + lift, check structure,
/// compute the exact phase law, and confirm the global/local separation.
#[test]
fn lower_bound_pipeline() {
    use lsl::lowerbound::exact_phases::ExactPhaseDistribution;
    use lsl::lowerbound::gadget::GadgetParams;
    use lsl::lowerbound::lifted::LiftedCycle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(9);
    let lifted = LiftedCycle::build_selected(
        6,
        GadgetParams {
            side: 8,
            terminals: 4,
            delta: 4,
        },
        10.0,
        3,
        &mut rng,
    );
    // Structure: Δ-regular, connected, diameter at least m/2.
    assert!(lifted.graph().is_regular());
    assert_eq!(lifted.graph().max_degree(), 4);
    assert!(traversal::is_connected(lifted.graph()));
    assert!(traversal::diameter(lifted.graph()).unwrap() >= 3);
    // Exact law: max cuts dominate and balance.
    let d = ExactPhaseDistribution::compute(&lifted, 10.0);
    let (p1, p2) = d.max_cut_probabilities();
    assert!(d.max_cut_mass() > 0.8, "mass = {}", d.max_cut_mass());
    assert!((p1 - p2).abs() / (p1 + p2) < 1e-9);
}

/// Glauber on the lifted graph stays within independent sets — the MCMC
/// surrogate runs cleanly even where it cannot equilibrate.
#[test]
fn glauber_on_lifted_graph_is_sound() {
    use lsl::lowerbound::gadget::GadgetParams;
    use lsl::lowerbound::lifted::LiftedCycle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(5);
    let lifted = LiftedCycle::build(
        4,
        GadgetParams {
            side: 6,
            terminals: 2,
            delta: 3,
        },
        &mut rng,
    );
    let mrf = Arc::new(models::hardcore(lifted.graph().clone(), 4.0));
    let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
        .algorithm(Algorithm::Glauber)
        .seed(8)
        .build()
        .unwrap();
    sampler.run(20_000);
    assert!(mrf.is_feasible(sampler.state()));
    let phases = lifted.phases(sampler.state());
    assert_eq!(phases.len(), 4);
}

/// Determinism across the whole stack: same seed, same everything.
#[test]
fn whole_stack_determinism() {
    let mrf = Arc::new(models::proper_coloring(generators::torus(5, 5), 12));
    let sim = Simulator::new(mrf.graph_arc(), 123);
    let a = sim.run_with::<LocalMetropolisProgram>(40, &mrf);
    let b = sim.run_with::<LocalMetropolisProgram>(40, &mrf);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.stats, b.stats);

    let build = || {
        Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(Algorithm::LubyGlauber)
            .seed(55)
            .build()
            .unwrap()
    };
    let mut c1 = build();
    let mut c2 = build();
    c1.run(50);
    c2.run(50);
    assert_eq!(c1.state(), c2.state());
}

/// The theory module's thresholds govern the measured chains: at q above
/// the Dobrushin bound the LubyGlauber coupling coalesces within the
/// Theorem 3.2 budget (with slack for the surrogate's constants).
#[test]
fn theory_budget_covers_measured_coalescence() {
    use lsl::analysis::theory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let n = 64;
    let delta = 4;
    let q = 12; // α = 4/8 = 0.5
    let mut rng = StdRng::seed_from_u64(77);
    let g = generators::random_regular(n, delta, &mut rng);
    let mrf = Arc::new(models::proper_coloring(g, q));
    let report = Sampler::for_mrf(Arc::clone(&mrf))
        .algorithm(Algorithm::LubyGlauber)
        .seed(5)
        .coalescence(3, 1_000_000)
        .unwrap();
    assert_eq!(report.timeouts, 0);
    let alpha = delta as f64 / (q - delta) as f64;
    let budget = theory::luby_glauber_mixing_bound(n, 0.01, alpha, theory::luby_gamma(delta));
    assert!(
        report.summary.mean < 4.0 * budget as f64,
        "measured {} vs budget {budget}",
        report.summary.mean
    );
}
