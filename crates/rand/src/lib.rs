//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace ships this minimal implementation of the slice of the
//! `rand` API the codebase uses: the [`TryRng`]/[`Rng`] traits, the
//! [`RngExt`] convenience methods (`random`, `random_range`,
//! `random_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! Every generator here is deterministic given its seed; `StdRng` is a
//! SplitMix64-seeded xoshiro256++ rather than the upstream ChaCha12 (we
//! only promise *a* high-quality deterministic stream, not upstream's
//! exact one).

use std::convert::Infallible;
use std::ops::{Range, RangeInclusive};

/// A fallible random number generator (mirror of `rand_core`'s
/// `TryRngCore`).
pub trait TryRng {
    /// The error type returned by the generator.
    type Error: std::fmt::Debug;

    /// The next 32 random bits.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// The next 64 random bits.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dst` with random bytes.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

impl<T: TryRng + ?Sized> TryRng for &mut T {
    type Error = T::Error;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        (**self).try_next_u32()
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        (**self).try_next_u64()
    }

    #[inline]
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        (**self).try_fill_bytes(dst)
    }
}

/// An infallible random number generator.
///
/// Blanket-implemented for every [`TryRng`] whose error is
/// [`Infallible`], so implementing the fallible trait is enough.
pub trait Rng {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<T: TryRng<Error = Infallible> + ?Sized> Rng for T {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        let Ok(x) = self.try_next_u32();
        x
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let Ok(x) = self.try_next_u64();
        x
    }

    #[inline]
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let Ok(()) = self.try_fill_bytes(dst);
    }
}

/// Types that can be sampled uniformly "at large" from a generator (the
/// analogue of sampling from rand's `StandardUniform` distribution):
/// integers over their full range, floats uniform in `[0, 1)`, fair
/// booleans.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Top 53 bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types that support uniform range sampling (64-bit wide and
/// narrower; spans are counted in `u64`).
pub trait UniformInt: Copy {
    /// The value reinterpreted as a 64-bit unsigned offset
    /// (sign-extended two's complement for signed types, so subtracting
    /// widened endpoints yields the span of any non-empty range).
    fn widen(self) -> u64;

    /// The value `off` steps above `lo` (wrapping, truncating — exact
    /// for any `off` within a valid range's span).
    fn from_offset(lo: Self, off: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn widen(self) -> u64 {
                self as u64
            }

            #[inline]
            fn from_offset(lo: Self, off: u64) -> Self {
                (lo as u64).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Debiased multiply-shift (Lemire) draw of one of `span` values
/// starting at `lo`; rejection keeps the draw exactly uniform.
/// `span == 0` means the full 2⁶⁴-wide window (only reachable for
/// 64-bit types' full ranges).
#[inline]
fn uniform_span<T: UniformInt, R: Rng + ?Sized>(lo: T, span: u64, rng: &mut R) -> T {
    if span == 0 {
        return T::from_offset(lo, rng.next_u64());
    }
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * span as u128) >> 64) as u64;
        let lo64 = (x as u128 * span as u128) as u64;
        if lo64 >= span || lo64 >= (u64::MAX - span + 1) % span {
            return T::from_offset(lo, hi);
        }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end.widen().wrapping_sub(self.start.widen());
        uniform_span(self.start, span, rng)
    }
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        // Wrapping to 0 marks the full 2⁶⁴-wide window (e.g. 0..=u64::MAX);
        // `lo..=MAX` with lo > MIN stays a valid nonzero span.
        let span = hi.widen().wrapping_sub(lo.widen()).wrapping_add(1);
        uniform_span(lo, span, rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = Standard::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (mirror of rand 0.9's `Rng` extension methods).
pub trait RngExt: Rng {
    /// A value sampled uniformly "at large" (integers over their full
    /// range, floats in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A value sampled uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard::from_rng(self);
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{SeedableRng, TryRng};
    use std::convert::Infallible;

    /// The workspace's standard seeded generator: SplitMix64-expanded
    /// xoshiro256++ (upstream uses ChaCha12; any deterministic
    /// high-quality stream serves the same role here).
    ///
    /// Deliberately *not* shared with `lsl_local::rng::Xoshiro256pp`
    /// despite implementing the same algorithm: the chain trajectories
    /// of the determinism contract are pinned to lsl-local's streams,
    /// which must survive this stand-in being swapped for the real
    /// `rand` crate (whose `StdRng` is a different generator entirely).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            if s == [0, 0, 0, 0] {
                StdRng { s: [1, 2, 3, 4] }
            } else {
                StdRng { s }
            }
        }
    }

    impl TryRng for StdRng {
        type Error = Infallible;

        #[inline]
        fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
            Ok((self.next() >> 32) as u32)
        }

        #[inline]
        fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
            Ok(self.next())
        }

        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
            for chunk in dst.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            Ok(())
        }
    }
}

/// Random slice operations.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffle and choose on slices (mirror of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u32);
            assert!(y <= 5);
            let z = rng.random_range(-4..5i64);
            assert!((-4..5).contains(&z));
            let f = rng.random_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_ranges_at_type_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            // Used to overflow in `hi + 1`; must stay in range.
            let a = rng.random_range(u64::MAX - 3..=u64::MAX);
            assert!(a >= u64::MAX - 3);
            let b = rng.random_range(1u64..=u64::MAX);
            assert!(b >= 1);
            let _full: u64 = rng.random_range(0..=u64::MAX);
            let c = rng.random_range(i64::MIN..=i64::MIN + 3);
            assert!(c <= i64::MIN + 3);
            let d = rng.random_range(250u8..=255);
            assert!(d >= 250);
            let _full8: u8 = rng.random_range(0..=255u8);
            let e = rng.random_range(7u32..=7);
            assert_eq!(e, 7);
        }
    }

    #[test]
    fn range_sampling_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.1).abs() < 0.01, "bucket frequency {f}");
        }
    }

    #[test]
    fn random_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn random_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
