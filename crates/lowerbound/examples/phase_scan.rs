//! Parameter/seed scan: where does max-cut phase concentration kick in,
//! and how sensitive is it to the gadget draw? (The paper's Prop 5.3 is a
//! positive-probability statement — one *selects* a good gadget.)
use lsl_lowerbound::exact_phases::ExactPhaseDistribution;
use lsl_lowerbound::gadget::GadgetParams;
use lsl_lowerbound::lifted::LiftedCycle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("seed\tlambda\tmaxcut\tties\tcondgap");
    for seed in 0..10u64 {
        for &lambda in &[10.0, 16.0] {
            let mut rng = StdRng::seed_from_u64(seed);
            let l = LiftedCycle::build(
                6,
                GadgetParams {
                    side: 8,
                    terminals: 4,
                    delta: 4,
                },
                &mut rng,
            );
            let d = ExactPhaseDistribution::compute(&l, lambda);
            let j = d.antipodal_joint();
            let p_pp = j[0] / (j[0] + j[2]);
            let p_pm = j[1] / (j[1] + j[3]);
            println!(
                "{seed}\t{lambda}\t{:.4}\t{:.4}\t{:.4}",
                d.max_cut_mass(),
                d.tie_mass(),
                (p_pp - p_pm).abs()
            );
        }
    }
}
