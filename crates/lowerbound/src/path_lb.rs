//! Theorem 5.1 machinery: exponential correlations on paths and the
//! independence defect of local protocols.

use lsl_graph::VertexId;
use lsl_mrf::transfer::{conditional_influence, PathDp};
use lsl_mrf::{Mrf, Spin};

/// One point of the correlation-decay curve of eq. (28).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecayPoint {
    /// Distance `dist(u, v)` along the path.
    pub distance: u32,
    /// `max_{σ_u, σ'_u} dTV(µ_v(·|σ_u), µ_v(·|σ'_u))` (exact).
    pub influence: f64,
}

/// Computes the exact correlation-decay curve from `u = order[0]` to the
/// vertices at the given distances, using transfer matrices.
///
/// `min_mass` is the paper's δ: conditioning spins must carry at least
/// that much marginal mass at `u`.
///
/// # Panics
/// Panics if the MRF's graph is not a simple path or a distance exceeds
/// the path length.
pub fn decay_curve(mrf: &Mrf, distances: &[u32], min_mass: f64) -> Vec<DecayPoint> {
    let dp = PathDp::new(mrf).expect("decay_curve needs a path MRF");
    let order = dp.order().to_vec();
    let u = order[0];
    distances
        .iter()
        .map(|&d| {
            let v = order[d as usize];
            let influence = conditional_influence(&dp, u, v, min_mass)
                .expect("influence defined for feasible models");
            DecayPoint {
                distance: d,
                influence,
            }
        })
        .collect()
}

/// Fits the decay rate `η` of eq. (28) by regressing `ln influence` on
/// distance over the curve; `None` if fewer than two valid points.
pub fn fit_eta(curve: &[DecayPoint]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = curve
        .iter()
        .filter(|p| p.influence > 0.0)
        .map(|p| (p.distance as f64, p.influence.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    lsl_analysis::stats::regression_slope(&xs, &ys).map(f64::exp)
}

/// The exact joint distribution of `(σ_u, σ_v)` on a path MRF, as a
/// row-major `q × q` matrix.
///
/// # Panics
/// Panics if the graph is not a simple path or the model is infeasible.
pub fn pair_joint(mrf: &Mrf, u: VertexId, v: VertexId) -> Vec<f64> {
    let dp = PathDp::new(mrf).expect("pair_joint needs a path MRF");
    let q = mrf.q();
    let mu_u = dp.marginal(u).expect("feasible model");
    let mut joint = vec![0.0; q * q];
    for a in 0..q {
        if mu_u[a] == 0.0 {
            continue;
        }
        let cond = dp
            .conditional_marginal(v, &[(u, a as Spin)])
            .expect("conditioning on positive-mass spin");
        for b in 0..q {
            joint[a * q + b] = mu_u[a] * cond[b];
        }
    }
    joint
}

/// The *independence defect* of a joint pair law: the total-variation
/// distance between the joint and the product of its own marginals.
///
/// Any `t`-round protocol output has defect exactly 0 for pairs at
/// distance `> 2t` (property (27)); the Gibbs law keeps a positive defect
/// at every distance on paths — the engine of Theorem 5.1.
pub fn independence_defect(joint: &[f64], q: usize) -> f64 {
    assert_eq!(joint.len(), q * q, "joint must be q × q");
    let mut mu = vec![0.0; q];
    let mut nu = vec![0.0; q];
    for a in 0..q {
        for b in 0..q {
            mu[a] += joint[a * q + b];
            nu[b] += joint[a * q + b];
        }
    }
    let mut tv = 0.0;
    for a in 0..q {
        for b in 0..q {
            tv += (joint[a * q + b] - mu[a] * nu[b]).abs();
        }
    }
    0.5 * tv
}

/// The smallest `t` for which a `t`-round protocol is *not* structurally
/// ruled out by the pair `(u, v)`: `dist(u, v) ≤ 2t`, i.e.
/// `t ≥ ⌈dist/2⌉`. With the Theorem 5.1 center layout (pairs at distance
/// `2t+1` packed along the path) this is where the Ω(log n) bound bites.
pub fn minimum_rounds_for_dependence(distance: u32) -> u32 {
    distance.div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_graph::generators;
    use lsl_mrf::gibbs::Enumeration;
    use lsl_mrf::models;

    #[test]
    fn decay_curve_decreases_and_stays_positive() {
        let mrf = models::proper_coloring(generators::path(40), 3);
        let curve = decay_curve(&mrf, &[1, 2, 4, 8, 16], 0.05);
        for w in curve.windows(2) {
            assert!(w[1].influence < w[0].influence);
            assert!(w[1].influence > 0.0);
        }
    }

    #[test]
    fn eta_fits_between_zero_and_one() {
        let mrf = models::proper_coloring(generators::path(40), 3);
        let curve = decay_curve(&mrf, &[2, 4, 6, 8, 10, 12], 0.05);
        let eta = fit_eta(&curve).unwrap();
        assert!(eta > 0.0 && eta < 1.0, "eta = {eta}");
        // q = 3 colorings on a path: decay rate is 1/2 exactly (the
        // conditional marginal recursion halves the bias per hop).
        assert!((eta - 0.5).abs() < 0.05, "eta = {eta}");
    }

    #[test]
    fn more_colors_decay_faster() {
        let c3 = decay_curve(
            &models::proper_coloring(generators::path(30), 3),
            &[6],
            0.01,
        );
        let c5 = decay_curve(
            &models::proper_coloring(generators::path(30), 5),
            &[6],
            0.01,
        );
        assert!(c5[0].influence < c3[0].influence);
    }

    #[test]
    fn pair_joint_matches_enumeration() {
        let mrf = models::proper_coloring(generators::path(5), 3);
        let exact = Enumeration::new(&mrf).unwrap();
        let joint = pair_joint(&mrf, VertexId(0), VertexId(3));
        let reference = exact.pair_marginal(VertexId(0), VertexId(3));
        for (a, b) in joint.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-10, "{joint:?} vs {reference:?}");
        }
    }

    #[test]
    fn gibbs_defect_positive_product_defect_zero() {
        let mrf = models::proper_coloring(generators::path(12), 3);
        let joint = pair_joint(&mrf, VertexId(0), VertexId(7));
        let defect = independence_defect(&joint, 3);
        assert!(defect > 1e-4, "Gibbs defect vanished: {defect}");
        // A genuinely product law has defect 0.
        let mut product = vec![0.0; 9];
        for a in 0..3 {
            for b in 0..3 {
                product[a * 3 + b] = (1.0 / 3.0) * (1.0 / 3.0);
            }
        }
        assert!(independence_defect(&product, 3) < 1e-12);
    }

    #[test]
    fn defect_decays_with_distance() {
        let mrf = models::proper_coloring(generators::path(30), 3);
        let d2 = independence_defect(&pair_joint(&mrf, VertexId(0), VertexId(2)), 3);
        let d6 = independence_defect(&pair_joint(&mrf, VertexId(0), VertexId(6)), 3);
        let d12 = independence_defect(&pair_joint(&mrf, VertexId(0), VertexId(12)), 3);
        assert!(d2 > d6 && d6 > d12, "{d2} {d6} {d12}");
        assert!(d12 > 0.0);
    }

    #[test]
    fn rounds_threshold() {
        assert_eq!(minimum_rounds_for_dependence(1), 1);
        assert_eq!(minimum_rounds_for_dependence(2), 1);
        assert_eq!(minimum_rounds_for_dependence(3), 2);
        assert_eq!(minimum_rounds_for_dependence(7), 4);
    }
}
