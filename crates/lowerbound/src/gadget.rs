//! The random bipartite gadget `G_n^k` of §5.1.1.
//!
//! Two sides `V⁺, V⁻` of `n` vertices each, `k` *terminals* `W±` per side.
//! The graph is the union of `Δ−1` uniform perfect matchings between `V⁺`
//! and `V⁻` plus one uniform perfect matching between the non-terminals
//! `U⁺` and `U⁻`; terminals end up with degree `Δ−1`, non-terminals with
//! degree `Δ`. In the non-uniqueness regime of the hardcore model the
//! gadget behaves like a two-state system indexed by its *phase* — which
//! side holds more occupied vertices (Proposition 5.3).

use lsl_graph::matching::Matching;
use lsl_graph::{traversal, Graph, GraphBuilder, VertexId};
use lsl_mrf::Spin;
use rand::Rng;

/// Which side of the gadget dominates a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `Σ_{V⁺} σ > Σ_{V⁻} σ`.
    Plus,
    /// `Σ_{V⁺} σ < Σ_{V⁻} σ`.
    Minus,
    /// Equal sums (measure-zero-ish boundary; the paper's phase is defined
    /// on the strict cases).
    Tie,
}

/// Parameters of a gadget draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GadgetParams {
    /// Vertices per side.
    pub side: usize,
    /// Terminals per side (`k`; the lifted construction uses `2k`).
    pub terminals: usize,
    /// Target degree Δ (non-terminals get Δ, terminals Δ−1).
    pub delta: usize,
}

/// A sampled bipartite gadget.
///
/// Vertex layout: `0..side` is `V⁺` (terminals first: `W⁺ = 0..terminals`),
/// `side..2·side` is `V⁻` (terminals first: `W⁻ = side..side+terminals`).
#[derive(Clone, Debug)]
pub struct Gadget {
    params: GadgetParams,
    graph: Graph,
}

impl Gadget {
    /// Samples a gadget; retries until connected (Proposition 5.3's
    /// expander property holds with positive probability, so retries are
    /// cheap).
    ///
    /// # Panics
    /// Panics if `terminals >= side`, `delta < 2`, or 200 draws all come
    /// out disconnected (practically impossible for sensible parameters).
    pub fn sample(params: GadgetParams, rng: &mut impl Rng) -> Self {
        assert!(params.terminals < params.side, "need terminals < side");
        assert!(params.delta >= 2, "need Δ >= 2");
        for _ in 0..200 {
            let graph = Self::draw(params, rng);
            if traversal::is_connected(&graph) {
                return Gadget { params, graph };
            }
        }
        panic!("failed to draw a connected gadget in 200 attempts");
    }

    fn draw(params: GadgetParams, rng: &mut impl Rng) -> Graph {
        let n = params.side;
        let k = params.terminals;
        let mut b = GraphBuilder::new(2 * n);
        // Δ−1 perfect matchings V⁺ ↔ V⁻.
        for _ in 0..params.delta - 1 {
            let m = Matching::sample(n, rng);
            for (i, j) in m.iter() {
                b.add_edge(i as u32, (n + j) as u32);
            }
        }
        // One perfect matching U⁺ ↔ U⁻ (non-terminals: indices k..n).
        let m = Matching::sample(n - k, rng);
        for (i, j) in m.iter() {
            b.add_edge((k + i) as u32, (n + k + j) as u32);
        }
        b.build()
    }

    /// The parameters this gadget was drawn with.
    pub fn params(&self) -> GadgetParams {
        self.params
    }

    /// The underlying (multi)graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices (`2 · side`).
    pub fn num_vertices(&self) -> usize {
        2 * self.params.side
    }

    /// The terminals `W⁺` in index order.
    pub fn terminals_plus(&self) -> Vec<VertexId> {
        (0..self.params.terminals as u32).map(VertexId).collect()
    }

    /// The terminals `W⁻` in index order.
    pub fn terminals_minus(&self) -> Vec<VertexId> {
        let n = self.params.side as u32;
        (n..n + self.params.terminals as u32)
            .map(VertexId)
            .collect()
    }

    /// The phase `Y(σ)` of a configuration restricted to this gadget.
    ///
    /// # Panics
    /// Panics if `config.len()` differs from the gadget size.
    pub fn phase(&self, config: &[Spin]) -> Phase {
        assert_eq!(config.len(), self.num_vertices());
        phase_of_sides(config, self.params.side)
    }
}

/// Phase of a configuration whose first `side` entries are `V⁺` and next
/// `side` entries are `V⁻` (shared by gadget and lifted-graph views).
pub fn phase_of_sides(config: &[Spin], side: usize) -> Phase {
    let plus: u64 = config[..side].iter().map(|&s| s as u64).sum();
    let minus: u64 = config[side..2 * side].iter().map(|&s| s as u64).sum();
    match plus.cmp(&minus) {
        std::cmp::Ordering::Greater => Phase::Plus,
        std::cmp::Ordering::Less => Phase::Minus,
        std::cmp::Ordering::Equal => Phase::Tie,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> GadgetParams {
        GadgetParams {
            side: 12,
            terminals: 3,
            delta: 4,
        }
    }

    #[test]
    fn degrees_match_the_construction() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Gadget::sample(params(), &mut rng);
        let graph = g.graph();
        for v in graph.vertices() {
            let is_terminal =
                (v.index() % 12) < 3 && (v.index() < 3 || (12..15).contains(&v.index()));
            let expect = if is_terminal { 3 } else { 4 };
            assert_eq!(graph.degree(v), expect, "vertex {v}");
        }
    }

    #[test]
    fn gadget_is_bipartite_between_sides() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = Gadget::sample(params(), &mut rng);
        for (_, u, v) in g.graph().edges() {
            let side_u = u.index() / 12;
            let side_v = v.index() / 12;
            assert_ne!(side_u, side_v, "edge inside one side");
        }
    }

    #[test]
    fn connected_and_small_diameter() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gadget::sample(params(), &mut rng);
        assert!(traversal::is_connected(g.graph()));
        let diam = traversal::diameter(g.graph()).unwrap();
        // Prop 5.3: diam = O(log n); for 24 vertices anything tiny works.
        assert!(diam <= 8, "diam = {diam}");
    }

    #[test]
    fn terminal_lists() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = Gadget::sample(params(), &mut rng);
        assert_eq!(
            g.terminals_plus(),
            vec![VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(
            g.terminals_minus(),
            vec![VertexId(12), VertexId(13), VertexId(14)]
        );
    }

    #[test]
    fn phase_function() {
        let mut config = vec![0 as Spin; 24];
        assert_eq!(phase_of_sides(&config, 12), Phase::Tie);
        config[0] = 1;
        assert_eq!(phase_of_sides(&config, 12), Phase::Plus);
        config[12] = 1;
        config[13] = 1;
        assert_eq!(phase_of_sides(&config, 12), Phase::Minus);
        let mut rng = StdRng::seed_from_u64(9);
        let g = Gadget::sample(params(), &mut rng);
        assert_eq!(g.phase(&config), Phase::Minus);
    }

    #[test]
    fn multigraph_parallel_edges_allowed() {
        // With Δ−1 = 3 matchings, parallel edges occur occasionally and
        // must be preserved (degree counts stay exact).
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..5 {
            let g = Gadget::sample(
                GadgetParams {
                    side: 4,
                    terminals: 1,
                    delta: 4,
                },
                &mut rng,
            );
            let total: usize = g.graph().vertices().map(|v| g.graph().degree(v)).sum();
            // 2m = ΣΔ(v): terminals 3 each (2 of them), rest 4.
            assert_eq!(total, 2 * 3 + 6 * 4);
        }
    }
}
