//! Section-5 lower-bound constructions of "What can be sampled locally?".
//!
//! The paper proves two lower bounds, both resting on a single structural
//! fact about `t`-round LOCAL protocols (property (27)): outputs of
//! vertices at distance `> 2t` are *independent*, because they are
//! functions of disjoint private-randomness balls. Sampling, unlike
//! labeling, is therefore obstructed by the *locality of randomness*:
//!
//! * **Theorem 5.1 (Ω(log n), path colorings)** — Gibbs distributions on
//!   paths have exponentially decaying but *nonzero* correlations; a
//!   protocol with `t = o(log n)` produces too many independent
//!   far-apart pairs and accumulates constant total-variation error.
//!   [`path_lb`] computes the exact correlation curves (via transfer
//!   matrices) and the pair statistics.
//! * **Theorem 5.2/1.3 (Ω(diam), hardcore in non-uniqueness)** — lifting
//!   an even cycle `H` by the random bipartite gadget `G_n^{2k}` makes the
//!   Gibbs distribution of the hardcore model concentrate, almost
//!   uniformly, on the *two maximum cuts* of `H` — a global, long-range
//!   correlated signal no `o(diam)` protocol can emit. [`gadget`] builds
//!   `G_n^{2k}`, [`lifted`] builds `H^G`, and [`experiment`] measures both
//!   the Gibbs behaviour and the failure of truncated local samplers.

pub mod exact_phases;
pub mod experiment;
pub mod gadget;
pub mod lifted;
pub mod path_lb;
