//! The lifted cycle `H^G` of §5.1.2: an even cycle whose vertices are
//! blown up into gadget copies, wired terminal-to-terminal.
//!
//! For each cycle vertex `x` take a copy `G_x` of a gadget `G ∈ G_n^{2k}`;
//! for each cycle edge `(x, y)` add `k` edges between `W⁺_x` and `W⁺_y`
//! and `k` edges between `W⁻_x` and `W⁻_y`. Every terminal (degree `Δ−1`
//! inside its gadget) gains exactly one external edge, so `H^G` is
//! Δ-regular. Sampling hardcore configurations on `H^G` with `λ > λ_c(Δ)`
//! effectively samples a maximum cut of `H` (Theorem 5.4).

use crate::gadget::{Gadget, GadgetParams, Phase};
#[cfg(test)]
use lsl_graph::{traversal, VertexId};
use lsl_graph::{Graph, GraphBuilder};
use lsl_mrf::Spin;
use rand::Rng;

/// The lifted graph `H^G` for `H` an even cycle.
#[derive(Clone, Debug)]
pub struct LiftedCycle {
    cycle_len: usize,
    gadget: Gadget,
    graph: Graph,
}

impl LiftedCycle {
    /// Builds `H^G` from a freshly sampled gadget.
    ///
    /// `params.terminals` is the paper's `2k` (terminals per gadget side);
    /// it must be even so `k` edges can go to each cycle neighbor.
    ///
    /// # Panics
    /// Panics if `cycle_len` is odd or `< 4`, or `params.terminals` is odd.
    pub fn build(cycle_len: usize, params: GadgetParams, rng: &mut impl Rng) -> Self {
        assert!(
            cycle_len >= 4 && cycle_len % 2 == 0,
            "need an even cycle ≥ 4"
        );
        assert!(
            params.terminals % 2 == 0,
            "terminals per side must be even (2k)"
        );
        let gadget = Gadget::sample(params, rng);
        Self::with_gadget(cycle_len, gadget)
    }

    /// Builds `H^G` around an already-sampled gadget.
    ///
    /// # Panics
    /// Same constraints as [`LiftedCycle::build`].
    pub fn with_gadget(cycle_len: usize, gadget: Gadget) -> Self {
        assert!(
            cycle_len >= 4 && cycle_len % 2 == 0,
            "need an even cycle ≥ 4"
        );
        assert!(
            gadget.params().terminals % 2 == 0,
            "terminals per side must be even (2k)"
        );
        let graph = Self::wire(cycle_len, &gadget);
        LiftedCycle {
            cycle_len,
            gadget,
            graph,
        }
    }

    /// Builds `H^G` from the most *polarized* of `candidates` gadget
    /// draws — the operational form of the paper's probabilistic-method
    /// step ("there exists a G satisfying the conditions [of Prop 5.3]").
    /// Candidates are scored by the exact max-cut phase mass of a short
    /// probe lift (`m = 4`) at fugacity `lambda`.
    ///
    /// # Panics
    /// As [`LiftedCycle::build`], plus the gadget must be small enough for
    /// exact phase analysis (`side ≤ 15`, `terminals ≤ 8`) and
    /// `candidates ≥ 1`.
    pub fn build_selected(
        cycle_len: usize,
        params: GadgetParams,
        lambda: f64,
        candidates: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(candidates >= 1, "need at least one candidate");
        let mut best: Option<(f64, Gadget)> = None;
        for _ in 0..candidates {
            let gadget = Gadget::sample(params, rng);
            let probe = Self::with_gadget(4, gadget.clone());
            let mass =
                crate::exact_phases::ExactPhaseDistribution::compute(&probe, lambda).max_cut_mass();
            if best.as_ref().is_none_or(|(m, _)| mass > *m) {
                best = Some((mass, gadget));
            }
        }
        let (_, gadget) = best.expect("candidates >= 1");
        Self::with_gadget(cycle_len, gadget)
    }

    fn wire(m: usize, gadget: &Gadget) -> Graph {
        let per = gadget.num_vertices();
        let side = gadget.params().side;
        let k2 = gadget.params().terminals; // = 2k
        let k = k2 / 2;
        let mut b = GraphBuilder::new(m * per);
        // Internal gadget copies.
        for x in 0..m {
            let base = (x * per) as u32;
            for (_, u, v) in gadget.graph().edges() {
                b.add_edge(base + u.0, base + v.0);
            }
        }
        // Terminal wiring along the cycle: terminals 0..k of W± go to the
        // *next* gadget's terminals k..2k, on both sides.
        for x in 0..m {
            let y = (x + 1) % m;
            let bx = (x * per) as u32;
            let by = (y * per) as u32;
            for i in 0..k as u32 {
                // W⁺ indices: 0..2k. W⁻ indices: side..side+2k.
                b.add_edge(bx + i, by + k as u32 + i);
                b.add_edge(bx + side as u32 + i, by + (side + k) as u32 + i);
            }
        }
        b.build()
    }

    /// The cycle length `m`.
    pub fn cycle_len(&self) -> usize {
        self.cycle_len
    }

    /// The shared gadget all copies replicate.
    pub fn gadget(&self) -> &Gadget {
        &self.gadget
    }

    /// The full lifted (multi)graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The vertex range of gadget copy `x`.
    ///
    /// # Panics
    /// Panics if `x >= cycle_len`.
    pub fn gadget_range(&self, x: usize) -> std::ops::Range<usize> {
        assert!(x < self.cycle_len);
        let per = self.gadget.num_vertices();
        x * per..(x + 1) * per
    }

    /// The phase vector `Y(σ) = (Y_x)` of a configuration on `H^G`.
    ///
    /// # Panics
    /// Panics if `config.len()` is wrong.
    pub fn phases(&self, config: &[Spin]) -> Vec<Phase> {
        assert_eq!(config.len(), self.graph.num_vertices());
        let side = self.gadget.params().side;
        (0..self.cycle_len)
            .map(|x| crate::gadget::phase_of_sides(&config[self.gadget_range(x)], side))
            .collect()
    }

    /// `Cut(Y)`: the number of cycle edges whose endpoints' phases differ
    /// (ties count as agreement with nothing — i.e. a tie never
    /// contributes a cut edge).
    pub fn cut_value(phases: &[Phase]) -> usize {
        let m = phases.len();
        (0..m)
            .filter(|&x| {
                let y = (x + 1) % m;
                matches!(
                    (phases[x], phases[y]),
                    (Phase::Plus, Phase::Minus) | (Phase::Minus, Phase::Plus)
                )
            })
            .count()
    }

    /// Whether a phase vector attains the maximum cut of the even cycle
    /// (fully alternating, no ties): `Cut(Y) = m`.
    pub fn is_max_cut(phases: &[Phase]) -> bool {
        Self::cut_value(phases) == phases.len()
    }

    /// Representative vertices of two *antipodal* gadgets `(x, y)` with
    /// `dist_H(x, y) = m/2` — the pair whose phase correlation drives the
    /// Ω(diam) argument.
    pub fn antipodal_pair(&self) -> (usize, usize) {
        (0, self.cycle_len / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> LiftedCycle {
        let mut rng = StdRng::seed_from_u64(77);
        LiftedCycle::build(
            6,
            GadgetParams {
                side: 8,
                terminals: 2,
                delta: 3,
            },
            &mut rng,
        )
    }

    #[test]
    fn lifted_graph_is_delta_regular() {
        let l = small();
        let g = l.graph();
        assert!(g.is_regular(), "lifted graph must be Δ-regular");
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.num_vertices(), 6 * 16);
    }

    #[test]
    fn lifted_graph_connected_with_large_diameter() {
        let l = small();
        assert!(traversal::is_connected(l.graph()));
        let diam = traversal::diameter(l.graph()).unwrap() as usize;
        // diam(H^G) ≥ m/2: the cycle structure survives the lift.
        assert!(diam >= l.cycle_len() / 2, "diam = {diam}");
    }

    #[test]
    fn phases_and_cuts() {
        let l = small();
        let n = l.graph().num_vertices();
        // All-empty: every gadget ties.
        let phases = l.phases(&vec![0; n]);
        assert!(phases.iter().all(|&p| p == Phase::Tie));
        assert_eq!(LiftedCycle::cut_value(&phases), 0);
        // Alternating occupation: fill V⁺ of even gadgets, V⁻ of odd.
        let mut config = vec![0 as Spin; n];
        let side = l.gadget().params().side;
        for x in 0..l.cycle_len() {
            let r = l.gadget_range(x);
            let offset = if x % 2 == 0 { 0 } else { side };
            for i in 0..side {
                config[r.start + offset + i] = 1;
            }
        }
        let phases = l.phases(&config);
        assert!(LiftedCycle::is_max_cut(&phases));
        assert_eq!(LiftedCycle::cut_value(&phases), 6);
        // Breaking one gadget's phase loses exactly two cut edges.
        let r0 = l.gadget_range(0);
        for i in r0.clone() {
            config[i] = 0;
        }
        let phases = l.phases(&config);
        assert_eq!(LiftedCycle::cut_value(&phases), 4);
        assert!(!LiftedCycle::is_max_cut(&phases));
    }

    #[test]
    fn antipodal_distance_is_half_cycle() {
        let l = small();
        let (x, y) = l.antipodal_pair();
        assert_eq!(y - x, 3);
        // Graph distance between representatives of the two gadgets is at
        // least m/2 terminal hops... at least 3.
        let u = VertexId(l.gadget_range(x).start as u32);
        let v = VertexId(l.gadget_range(y).start as u32);
        let d = traversal::distance(l.graph(), u, v).unwrap();
        assert!(d >= 3, "d = {d}");
    }

    #[test]
    fn terminal_wiring_gives_each_terminal_one_external_edge() {
        let l = small();
        let per = l.gadget().num_vertices();
        for x in 0..l.cycle_len() {
            let r = l.gadget_range(x);
            for v in r.clone() {
                let external = l
                    .graph()
                    .neighbors(VertexId(v as u32))
                    .filter(|u| !r.contains(&u.index()))
                    .count();
                let local = v - r.start;
                let side = l.gadget().params().side;
                let t = l.gadget().params().terminals;
                let is_terminal = local < t || (side..side + t).contains(&local);
                assert_eq!(external, usize::from(is_terminal), "vertex {v} in copy {x}");
            }
        }
        let _ = per;
    }
}
