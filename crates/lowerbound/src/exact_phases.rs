//! Exact phase-vector distribution on the lifted cycle, by a block
//! transfer matrix over gadget interfaces.
//!
//! The global samplers the Ω(diam) bound contrasts with cannot be
//! realized by any feasible MCMC here — the whole point of Theorem 5.2 is
//! that the phase structure mixes torpidly. Instead we compute the law of
//! the phase vector `Y(σ)` *exactly*: the hardcore partition function of
//! `H^G` factorizes over the cycle as
//!
//! ```text
//! Z(y) = tr( W_{y_0} C · W_{y_1} C · ... · W_{y_{m-1}} C )
//! ```
//!
//! where `W_y[i][o]` sums `λ^{|c|}` over the gadget's independent sets
//! `c` with phase `y`, in-terminal occupation `i`, and out-terminal
//! occupation `o`; and `C[o][i'] ∈ {0,1}` enforces the cross edges
//! (`out_j(x) — in_j(x+1)` may not both be occupied). This verifies
//! Theorem 5.4 — the two maximum cuts carry almost all and equal mass —
//! with no sampling error at all.

use crate::gadget::{Gadget, Phase};
use crate::lifted::LiftedCycle;

/// Exact distribution over phase vectors `(Y_x)_{x ∈ H}`, encoded base-3
/// with digits `0 = Plus`, `1 = Minus`, `2 = Tie` (digit `x` = phase of
/// gadget `x`).
#[derive(Clone, Debug)]
pub struct ExactPhaseDistribution {
    m: usize,
    probs: Vec<f64>,
}

/// Builds the per-phase block matrices `W_y` and the compatibility matrix
/// `C` for a gadget at fugacity `lambda`.
///
/// # Panics
/// Panics if the gadget has more than 15 vertices per side (the block
/// enumeration is `2^(2·side)`) or more than 8 terminals per side.
pub fn block_matrices(gadget: &Gadget, lambda: f64) -> (Vec<Vec<Vec<f64>>>, Vec<Vec<f64>>) {
    let side = gadget.params().side;
    let t2 = gadget.params().terminals; // 2k per side
    let k = t2 / 2;
    assert!(side <= 15, "block enumeration needs side <= 15");
    assert!(t2 <= 8, "interface state space needs terminals <= 8");
    let nv = 2 * side;
    let g = gadget.graph();
    // Edge masks for fast independence checking.
    let edge_masks: Vec<u64> = g
        .edges()
        .map(|(_, u, v)| (1u64 << u.index()) | (1u64 << v.index()))
        .collect();
    let states = 1usize << (2 * k);
    // W[phase][in][out]
    let mut w = vec![vec![vec![0.0f64; states]; states]; 3];
    // Out terminals: W⁺ 0..k and W⁻ side..side+k.
    // In terminals: W⁺ k..2k and W⁻ side+k..side+2k.
    for mask in 0u64..(1 << nv) {
        if edge_masks.iter().any(|&em| mask & em == em) {
            continue; // not an independent set
        }
        let occupied = mask.count_ones();
        let weight = lambda.powi(occupied as i32);
        let plus = (mask & ((1u64 << side) - 1)).count_ones();
        let minus = (mask >> side).count_ones();
        let phase = match plus.cmp(&minus) {
            std::cmp::Ordering::Greater => 0,
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Equal => 2,
        };
        let mut in_state = 0usize;
        let mut out_state = 0usize;
        for j in 0..k {
            // + side
            out_state |= (((mask >> j) & 1) as usize) << j;
            in_state |= (((mask >> (k + j)) & 1) as usize) << j;
            // − side
            out_state |= (((mask >> (side + j)) & 1) as usize) << (k + j);
            in_state |= (((mask >> (side + k + j)) & 1) as usize) << (k + j);
        }
        w[phase][in_state][out_state] += weight;
    }
    // Compatibility: out bit j of block x may not co-occur with in bit j
    // of block x+1.
    let mut c = vec![vec![0.0f64; states]; states];
    for (o, row) in c.iter_mut().enumerate() {
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = if o & i == 0 { 1.0 } else { 0.0 };
        }
    }
    (w, c)
}

fn matmul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for l in 0..n {
            let x = a[i][l];
            if x == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i][j] += x * b[l][j];
            }
        }
    }
    out
}

fn trace(a: &[Vec<f64>]) -> f64 {
    (0..a.len()).map(|i| a[i][i]).sum()
}

impl ExactPhaseDistribution {
    /// Computes the exact phase-vector law of the hardcore model on
    /// `lifted` at fugacity `lambda`.
    ///
    /// # Panics
    /// Panics if `3^m` exceeds `2^22` or the gadget is too large for
    /// block enumeration.
    pub fn compute(lifted: &LiftedCycle, lambda: f64) -> Self {
        let m = lifted.cycle_len();
        let total = 3usize
            .checked_pow(m as u32)
            .filter(|&t| t <= 1 << 22)
            .expect("3^m too large");
        let (w, c) = block_matrices(lifted.gadget(), lambda);
        // Pre-multiply each W_y by C once: S_y = W_y · C.
        let s: Vec<Vec<Vec<f64>>> = w.iter().map(|wy| matmul(wy, &c)).collect();
        let states = c.len();
        let mut probs = vec![0.0f64; total];
        // Depth-first over phase vectors with shared prefix products.
        let identity: Vec<Vec<f64>> = (0..states)
            .map(|i| (0..states).map(|j| f64::from(u8::from(i == j))).collect())
            .collect();
        fn rec(
            depth: usize,
            m: usize,
            code: usize,
            acc: &[Vec<f64>],
            s: &[Vec<Vec<f64>>],
            probs: &mut [f64],
        ) {
            if depth == m {
                probs[code] = trace(acc);
                return;
            }
            for y in 0..3 {
                let next = matmul(acc, &s[y]);
                rec(depth + 1, m, code * 3 + y, &next, s, probs);
            }
        }
        rec(0, m, 0, &identity, &s, &mut probs);
        let z: f64 = probs.iter().sum();
        assert!(z > 0.0, "partition function vanished");
        for p in &mut probs {
            *p /= z;
        }
        ExactPhaseDistribution { m, probs }
    }

    /// Cycle length `m`.
    pub fn cycle_len(&self) -> usize {
        self.m
    }

    /// Probability of an explicit phase vector.
    ///
    /// # Panics
    /// Panics if `phases.len() != m`.
    pub fn probability(&self, phases: &[Phase]) -> f64 {
        assert_eq!(phases.len(), self.m);
        let mut code = 0usize;
        for &p in phases {
            code = code * 3
                + match p {
                    Phase::Plus => 0,
                    Phase::Minus => 1,
                    Phase::Tie => 2,
                };
        }
        self.probs[code]
    }

    /// Decodes index `code` into a phase vector.
    fn decode(&self, mut code: usize) -> Vec<Phase> {
        let mut out = vec![Phase::Tie; self.m];
        for slot in out.iter_mut().rev() {
            *slot = match code % 3 {
                0 => Phase::Plus,
                1 => Phase::Minus,
                _ => Phase::Tie,
            };
            code /= 3;
        }
        out
    }

    /// The two maximum-cut (perfectly alternating) phase vectors and
    /// their exact probabilities, `(starting-with-Plus, starting-with-Minus)`.
    pub fn max_cut_probabilities(&self) -> (f64, f64) {
        let alt_plus: Vec<Phase> = (0..self.m)
            .map(|i| {
                if i % 2 == 0 {
                    Phase::Plus
                } else {
                    Phase::Minus
                }
            })
            .collect();
        let alt_minus: Vec<Phase> = alt_plus
            .iter()
            .map(|&p| {
                if p == Phase::Plus {
                    Phase::Minus
                } else {
                    Phase::Plus
                }
            })
            .collect();
        (self.probability(&alt_plus), self.probability(&alt_minus))
    }

    /// Total probability that `Y` attains the maximum cut.
    pub fn max_cut_mass(&self) -> f64 {
        let (a, b) = self.max_cut_probabilities();
        a + b
    }

    /// Exact joint law of the antipodal pair `(Y_0, Y_{m/2})` over
    /// `[++, +-, -+, --, any-tie]`.
    pub fn antipodal_joint(&self) -> [f64; 5] {
        let half = self.m / 2;
        let mut out = [0.0f64; 5];
        for (code, &p) in self.probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let phases = self.decode(code);
            let idx = match (phases[0], phases[half]) {
                (Phase::Plus, Phase::Plus) => 0,
                (Phase::Plus, Phase::Minus) => 1,
                (Phase::Minus, Phase::Plus) => 2,
                (Phase::Minus, Phase::Minus) => 3,
                _ => 4,
            };
            out[idx] += p;
        }
        out
    }

    /// The exact eq. (37) statistic over the antipodal pair:
    /// `|Pr[Y_0 = + | Y_{m/2} = +] − Pr[Y_0 = + | Y_{m/2} = −]|`;
    /// `None` if either conditioning event has zero probability.
    pub fn conditional_gap(&self) -> Option<f64> {
        let j = self.antipodal_joint();
        let y_plus = j[0] + j[2];
        let y_minus = j[1] + j[3];
        if y_plus <= 0.0 || y_minus <= 0.0 {
            return None;
        }
        Some((j[0] / y_plus - j[1] / y_minus).abs())
    }

    /// Total probability of any tie appearing in the phase vector.
    pub fn tie_mass(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .filter(|&(code, _)| self.decode(code).contains(&Phase::Tie))
            .map(|(_, &p)| p)
            .sum()
    }

    /// Iterator over `(phase vector, probability)` with positive mass.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<Phase>, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(code, &p)| (self.decode(code), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::GadgetParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Parameters inside the concentration regime (λ_c(4) = 27/16, and a
    /// 2k = 4 terminal coupling is strong enough for near-total max-cut
    /// mass at λ = 10; see the `phase_scan` example for the sweep).
    fn lifted(m: usize, seed: u64) -> LiftedCycle {
        let mut rng = StdRng::seed_from_u64(seed);
        LiftedCycle::build_selected(
            m,
            GadgetParams {
                side: 8,
                terminals: 4,
                delta: 4,
            },
            10.0,
            4,
            &mut rng,
        )
    }

    #[test]
    fn distribution_normalizes() {
        let l = lifted(4, 1);
        let d = ExactPhaseDistribution::compute(&l, 2.0);
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theorem_5_4_max_cuts_dominate_and_balance() {
        // λ = 10 ≫ λ_c(4) = 27/16: the two max cuts carry almost all
        // mass, equally (paper eq. 33).
        let l = lifted(6, 2);
        let d = ExactPhaseDistribution::compute(&l, 10.0);
        let (p_plus, p_minus) = d.max_cut_probabilities();
        // Exact symmetry of the even cycle: the two max cuts have EQUAL
        // probability.
        assert!(
            (p_plus - p_minus).abs() < 1e-9 * (p_plus + p_minus),
            "{p_plus} vs {p_minus}"
        );
        assert!(
            d.max_cut_mass() > 0.9,
            "max-cut mass = {}",
            d.max_cut_mass()
        );
    }

    #[test]
    fn antipodal_phases_anticorrelate_with_odd_half() {
        // m = 6, m/2 = 3 odd: on a max cut the antipodal phases differ.
        let l = lifted(6, 3);
        let d = ExactPhaseDistribution::compute(&l, 10.0);
        let joint = d.antipodal_joint();
        let disagree = joint[1] + joint[2];
        let agree = joint[0] + joint[3];
        assert!(
            disagree > 0.9 && agree < 0.1,
            "joint = {joint:?} (disagree {disagree})"
        );
    }

    #[test]
    fn uniqueness_regime_is_unpolarized() {
        // λ = 0.5 < λ_c(4) = 27/16: no phase concentration; max-cut mass
        // far from 1 (correlations decay, gadget phases near-independent
        // and often tied).
        let l = lifted(4, 4);
        let d = ExactPhaseDistribution::compute(&l, 0.5);
        assert!(
            d.max_cut_mass() < 0.5,
            "max-cut mass = {}",
            d.max_cut_mass()
        );
    }

    #[test]
    fn polarization_grows_with_lambda() {
        let l = lifted(4, 5);
        let weak = ExactPhaseDistribution::compute(&l, 1.0).max_cut_mass();
        let strong = ExactPhaseDistribution::compute(&l, 10.0).max_cut_mass();
        assert!(strong > weak, "strong {strong} <= weak {weak}");
    }

    #[test]
    fn probability_lookup_roundtrip() {
        let l = lifted(4, 6);
        let d = ExactPhaseDistribution::compute(&l, 3.0);
        let mut total = 0.0;
        for (phases, p) in d.iter() {
            assert!((d.probability(&phases) - p).abs() < 1e-15);
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-9);
    }
}
