//! The Ω(diam) experiment (Theorems 5.2/5.4): Gibbs sampling on the
//! lifted cycle concentrates on the two maximum cuts; truncated local
//! samplers cannot reproduce the long-range phase correlation.

use crate::gadget::Phase;
use crate::lifted::LiftedCycle;
use lsl_core::sampler::{Algorithm, Sampler};
use lsl_local::rng::{derive_seed, Xoshiro256pp};
use lsl_mrf::{models, Mrf, Spin};
use std::sync::Arc;

/// Statistics of phase vectors gathered from repeated sampling runs.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Samples whose phase vector attains the maximum cut.
    pub max_cut: usize,
    /// Of the max-cut samples, how many start with `Y_0 = +` (balance
    /// between the two max cuts).
    pub max_cut_plus_at_0: usize,
    /// Samples with at least one tied gadget.
    pub ties: usize,
    /// Joint counts of the antipodal pair `(Y_x, Y_y)` over the four
    /// non-tie combinations: `[++, +-, -+, --]`.
    pub antipodal: [usize; 4],
    /// Total samples.
    pub total: usize,
}

impl PhaseStats {
    /// Records one phase vector.
    pub fn record(&mut self, lifted: &LiftedCycle, phases: &[Phase]) {
        self.total += 1;
        if phases.contains(&Phase::Tie) {
            self.ties += 1;
        }
        if LiftedCycle::is_max_cut(phases) {
            self.max_cut += 1;
            if phases[0] == Phase::Plus {
                self.max_cut_plus_at_0 += 1;
            }
        }
        let (x, y) = lifted.antipodal_pair();
        match (phases[x], phases[y]) {
            (Phase::Plus, Phase::Plus) => self.antipodal[0] += 1,
            (Phase::Plus, Phase::Minus) => self.antipodal[1] += 1,
            (Phase::Minus, Phase::Plus) => self.antipodal[2] += 1,
            (Phase::Minus, Phase::Minus) => self.antipodal[3] += 1,
            _ => {}
        }
    }

    /// Fraction of samples attaining a maximum cut.
    pub fn max_cut_fraction(&self) -> f64 {
        self.max_cut as f64 / self.total.max(1) as f64
    }

    /// The antipodal phase *correlation defect*:
    /// `|Pr[agree] − Pr[disagree]|` among non-tie antipodal samples.
    pub fn antipodal_defect(&self) -> f64 {
        let agree = self.antipodal[0] + self.antipodal[3];
        let disagree = self.antipodal[1] + self.antipodal[2];
        let total = agree + disagree;
        if total == 0 {
            return 0.0;
        }
        (agree as f64 - disagree as f64).abs() / total as f64
    }

    /// The paper's eq. (37) statistic:
    /// `|Pr[Y_x = + | Y_y = +] − Pr[Y_x = + | Y_y = −]|` over the
    /// antipodal pair. Exactly 0 in expectation for ANY `t`-round
    /// protocol with `2t < dist(G_x, G_y)` — independence makes the two
    /// conditionals equal regardless of marginal bias — while the Gibbs
    /// law keeps it near 1 (anti-correlated max-cut mixture). `None` when
    /// a conditioning event was never observed.
    pub fn conditional_gap(&self) -> Option<f64> {
        let y_plus = self.antipodal[0] + self.antipodal[2];
        let y_minus = self.antipodal[1] + self.antipodal[3];
        if y_plus == 0 || y_minus == 0 {
            return None;
        }
        let p_given_plus = self.antipodal[0] as f64 / y_plus as f64;
        let p_given_minus = self.antipodal[1] as f64 / y_minus as f64;
        Some((p_given_plus - p_given_minus).abs())
    }
}

/// Builds the hardcore model on the lifted cycle.
pub fn hardcore_on(lifted: &LiftedCycle, lambda: f64) -> Mrf {
    models::hardcore(lifted.graph().clone(), lambda)
}

/// Gathers phase statistics from `runs` independent *long* Glauber runs
/// of `sweeps` full sweeps each (the "global sampler" reference: given
/// enough sweeps this approximates Gibbs; the experiment's point is the
/// *shape* — concentration on the two max cuts and antipodal
/// anti-correlation).
pub fn gibbs_phase_stats(
    lifted: &LiftedCycle,
    lambda: f64,
    runs: usize,
    sweeps: usize,
    seed: u64,
) -> PhaseStats {
    let mrf = Arc::new(hardcore_on(lifted, lambda));
    let n = mrf.num_vertices();
    let mut stats = PhaseStats::default();
    for run in 0..runs {
        let run_seed = derive_seed(seed, 0x474942, run as u64); // "GIB"
        let mut rng = Xoshiro256pp::seed_from(run_seed);
        let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(Algorithm::Glauber)
            // Random start: occupation by fair coins, thinned to an
            // independent set by dropping conflicts in index order.
            .start(random_independent_start(&mrf, &mut rng))
            .seed(run_seed)
            .build()
            .expect("valid Glauber configuration");
        sampler.run(sweeps * n);
        let phases = lifted.phases(sampler.state());
        stats.record(lifted, &phases);
    }
    stats
}

/// Gathers phase statistics from `runs` independent *t-round truncated*
/// LocalMetropolis samplers — stand-ins for an arbitrary `t`-round LOCAL
/// protocol (their outputs at distance `> 2t` are independent, which is
/// the only property the lower bound uses).
pub fn local_protocol_phase_stats(
    lifted: &LiftedCycle,
    lambda: f64,
    rounds: usize,
    runs: usize,
    seed: u64,
) -> PhaseStats {
    let mrf = Arc::new(hardcore_on(lifted, lambda));
    let mut stats = PhaseStats::default();
    for run in 0..runs {
        let run_seed = derive_seed(seed, 0x4c4f43, run as u64); // "LOC"
        let mut rng = Xoshiro256pp::seed_from(run_seed);
        let start = random_independent_start(&mrf, &mut rng);
        let mut sampler = Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(Algorithm::LocalMetropolis)
            .start(start)
            .seed(run_seed)
            .build()
            .expect("valid LocalMetropolis configuration");
        sampler.run(rounds);
        let phases = lifted.phases(sampler.state());
        stats.record(lifted, &phases);
    }
    stats
}

/// A random independent set (as a spin vector) built by coin-flipping
/// occupation and dropping conflicts in index order.
pub fn random_independent_start(mrf: &Mrf, rng: &mut Xoshiro256pp) -> Vec<Spin> {
    let g = mrf.graph();
    let mut state = vec![0 as Spin; g.num_vertices()];
    for v in g.vertices() {
        let want = rng.uniform_f64() < 0.5;
        if want && g.neighbors(v).all(|u| state[u.index()] == 0) {
            state[v.index()] = 1;
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::GadgetParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_lifted() -> LiftedCycle {
        let mut rng = StdRng::seed_from_u64(3);
        LiftedCycle::build_selected(
            6,
            GadgetParams {
                side: 8,
                terminals: 4,
                delta: 4,
            },
            10.0,
            4,
            &mut rng,
        )
    }

    #[test]
    fn gibbs_vs_truncated_protocol_conditional_gap() {
        // The Ω(diam) separation in one picture, using the paper's
        // eq. (37) statistic: under the exact Gibbs phase law
        // Pr[Y_x = + | Y_y = ±] differ by ≈ 1 (anti-correlated max
        // cuts), while for a 1-round local protocol the antipodal phases
        // are independent, so the two conditionals agree.
        let lifted = tiny_lifted();
        let exact = crate::exact_phases::ExactPhaseDistribution::compute(&lifted, 10.0);
        let gibbs_gap = exact.conditional_gap().expect("both phases occur");
        assert!(gibbs_gap > 0.85, "Gibbs gap = {gibbs_gap}");

        let stats = local_protocol_phase_stats(&lifted, 10.0, 1, 3000, 7);
        assert_eq!(stats.total, 3000);
        let protocol_gap = stats.conditional_gap().expect("both phases occur");
        assert!(
            protocol_gap < 0.15,
            "protocol gap = {protocol_gap} (should be near 0; counts {:?})",
            stats.antipodal
        );
    }

    #[test]
    fn glauber_runs_respect_feasibility_and_record_phases() {
        // The MCMC surrogate is not equilibrated on torpid instances (the
        // theorem's point) but must run cleanly and produce legal stats.
        let lifted = tiny_lifted();
        let stats = gibbs_phase_stats(&lifted, 2.0, 4, 50, 42);
        assert_eq!(stats.total, 4);
        assert!(stats.max_cut + stats.ties <= 4);
    }

    #[test]
    fn random_independent_start_is_independent() {
        let lifted = tiny_lifted();
        let mrf = hardcore_on(&lifted, 2.0);
        let mut rng = Xoshiro256pp::seed_from(1);
        for _ in 0..10 {
            let s = random_independent_start(&mrf, &mut rng);
            assert!(mrf.is_feasible(&s));
        }
    }

    #[test]
    fn phase_stats_bookkeeping() {
        let lifted = tiny_lifted();
        let mut stats = PhaseStats::default();
        let alternating: Vec<Phase> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    Phase::Plus
                } else {
                    Phase::Minus
                }
            })
            .collect();
        stats.record(&lifted, &alternating);
        assert_eq!(stats.max_cut, 1);
        assert_eq!(stats.antipodal[1], 1); // (+ at 0, - at 3)
        let tied = vec![Phase::Tie; 6];
        stats.record(&lifted, &tied);
        assert_eq!(stats.ties, 1);
        assert_eq!(stats.total, 2);
    }
}
