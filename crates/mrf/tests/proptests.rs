//! Property-based tests for the MRF substrate.

use lsl_graph::{generators, GraphBuilder, VertexId};
use lsl_mrf::gibbs::{checked_pow, decode_config, encode_config, Enumeration};
use lsl_mrf::transfer::PathDp;
use lsl_mrf::{models, EdgeActivity, Mrf, Spin, VertexActivity};
use proptest::prelude::*;

/// Strategy: a small random simple graph.
fn arb_graph() -> impl Strategy<Value = lsl_graph::Graph> {
    (
        2usize..=5,
        proptest::collection::vec((0u32..5, 0u32..5), 0..8),
    )
        .prop_map(|(n, pairs)| {
            let mut b = GraphBuilder::new(n);
            let mut seen = std::collections::HashSet::new();
            for (u, v) in pairs {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v && seen.insert((u.min(v), u.max(v))) {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
}

/// Strategy: a small weighted MRF (soft Potts-like activities).
fn arb_mrf() -> impl Strategy<Value = Mrf> {
    (
        arb_graph(),
        2usize..=3,
        0.1f64..3.0,
        proptest::collection::vec(0.1f64..2.0, 3),
    )
        .prop_map(|(g, q, beta, bvals)| {
            let b = VertexActivity::new(bvals[..q].to_vec()).expect("positive entries");
            Mrf::homogeneous(g, EdgeActivity::potts(q, beta), b)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weight_consistent_with_log_weight(mrf in arb_mrf(), idx in 0usize..100) {
        let n = mrf.num_vertices();
        let q = mrf.q();
        let total = checked_pow(q, n).unwrap();
        let mut cfg = vec![0 as Spin; n];
        decode_config(idx % total, q, &mut cfg);
        let w = mrf.weight(&cfg);
        let lw = mrf.log_weight(&cfg);
        if w > 0.0 {
            prop_assert!((w.ln() - lw).abs() < 1e-9);
        } else {
            prop_assert!(lw.is_infinite() && lw < 0.0);
        }
    }

    #[test]
    fn marginal_weights_match_weight_ratios(mrf in arb_mrf(), idx in 0usize..100) {
        // Eq. (2): the conditional marginal weights are proportional to
        // full configuration weights with only σ_v varying.
        let n = mrf.num_vertices();
        let q = mrf.q();
        let total = checked_pow(q, n).unwrap();
        let mut cfg = vec![0 as Spin; n];
        decode_config(idx % total, q, &mut cfg);
        for v in mrf.graph().vertices() {
            let weights = mrf.marginal_weights(v, &cfg);
            // Compare ratios against brute-force weights.
            let mut brute = vec![0.0; q];
            let mut scratch = cfg.clone();
            for (c, slot) in brute.iter_mut().enumerate() {
                scratch[v.index()] = c as Spin;
                *slot = mrf.weight(&scratch);
            }
            // weights[c] * K == brute[c] for a positive constant K:
            // cross-multiply pairs.
            for a in 0..q {
                for b in 0..q {
                    let lhs = weights[a] * brute[b];
                    let rhs = weights[b] * brute[a];
                    let scale = lhs.abs().max(rhs.abs()).max(1e-300);
                    prop_assert!((lhs - rhs).abs() / scale < 1e-9,
                        "ratio mismatch at {v} colors {a},{b}");
                }
            }
        }
    }

    #[test]
    fn enumeration_marginals_are_distributions(mrf in arb_mrf()) {
        let e = Enumeration::new(&mrf).unwrap();
        for v in mrf.graph().vertices() {
            let m = e.marginal(v);
            prop_assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(m.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn pair_marginal_consistent_with_singles(mrf in arb_mrf()) {
        let e = Enumeration::new(&mrf).unwrap();
        let n = mrf.num_vertices();
        if n >= 2 {
            let (u, v) = (VertexId(0), VertexId(1));
            let pair = e.pair_marginal(u, v);
            let q = mrf.q();
            // Row sums = marginal of u.
            let mu = e.marginal(u);
            for a in 0..q {
                let row: f64 = (0..q).map(|b| pair[a * q + b]).sum();
                prop_assert!((row - mu[a]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip(n in 1usize..6, q in 2usize..4, idx in 0usize..500) {
        let total = checked_pow(q, n).unwrap();
        let mut cfg = vec![0 as Spin; n];
        decode_config(idx % total, q, &mut cfg);
        prop_assert_eq!(encode_config(&cfg, q), idx % total);
    }

    #[test]
    fn transfer_matches_enumeration_on_random_path_models(
        len in 3usize..7, q in 2usize..4, beta in 0.1f64..3.0
    ) {
        let mrf = models::potts(generators::path(len), q, beta);
        let dp = PathDp::new(&mrf).unwrap();
        let e = Enumeration::new(&mrf).unwrap();
        for v in mrf.graph().vertices() {
            let a = dp.marginal(v).unwrap();
            let b = e.marginal(v);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hardcore_feasibility_is_independence(edges in proptest::collection::vec((0u32..5, 0u32..5), 0..8), bits in 0u32..32) {
        let mut b = GraphBuilder::new(5);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in edges {
            if u != v && seen.insert((u.min(v), u.max(v))) {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let mrf = models::uniform_independent_set(g.clone());
        let cfg: Vec<Spin> = (0..5).map(|i| (bits >> i) & 1).collect();
        let mask: Vec<bool> = cfg.iter().map(|&s| s == 1).collect();
        prop_assert_eq!(mrf.is_feasible(&cfg), g.is_independent_set(&mask));
    }

    #[test]
    fn condition6_implies_well_defined_marginals(q in 3usize..5) {
        // Condition (6) is strictly stronger than marginal
        // well-definedness (paper §4.1).
        let mrf = models::proper_coloring(generators::path(3), q);
        if mrf.condition6_holds_exhaustive() {
            prop_assert!(mrf.marginals_well_defined_exhaustive());
        }
    }
}
