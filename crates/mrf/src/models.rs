//! Named MRF constructors — the running examples of the paper's §2.2.

use crate::activity::{EdgeActivity, VertexActivity};
use crate::model::Mrf;
use lsl_graph::Graph;
use std::sync::Arc;

/// Uniform proper `q`-colorings of `graph`.
///
/// # Panics
/// Panics if `q < 2`.
///
/// # Example
/// ```
/// use lsl_graph::generators;
/// let mrf = lsl_mrf::models::proper_coloring(generators::cycle(4), 3);
/// assert!(mrf.is_feasible(&[0, 1, 0, 1]));
/// ```
pub fn proper_coloring(graph: impl Into<Arc<Graph>>, q: usize) -> Mrf {
    Mrf::homogeneous(graph, EdgeActivity::coloring(q), VertexActivity::uniform(q))
}

/// Uniform proper *list* colorings: vertex `v` may only use colors in
/// `lists[v] ⊆ [q]`.
///
/// # Panics
/// Panics if `lists.len() != n`, a list is empty, or a color is `>= q`.
pub fn list_coloring(graph: impl Into<Arc<Graph>>, q: usize, lists: &[Vec<u32>]) -> Mrf {
    let graph = graph.into();
    assert_eq!(
        lists.len(),
        graph.num_vertices(),
        "need one color list per vertex"
    );
    let acts = lists
        .iter()
        .map(|list| VertexActivity::list_indicator(q, list))
        .collect();
    Mrf::with_vertex_activities(graph, EdgeActivity::coloring(q), acts)
}

/// The hardcore model with fugacity `λ`: spin 1 = "in the independent
/// set", weight `λ^{|I|}` per independent set, 0 for non-independent sets.
///
/// `λ = 1` gives the uniform distribution over independent sets — the
/// model of the paper's Theorem 1.3.
pub fn hardcore(graph: impl Into<Arc<Graph>>, lambda: f64) -> Mrf {
    Mrf::homogeneous(
        graph,
        EdgeActivity::hardcore(),
        VertexActivity::hardcore(lambda),
    )
}

/// Uniform independent sets (`hardcore` with `λ = 1`).
pub fn uniform_independent_set(graph: impl Into<Arc<Graph>>) -> Mrf {
    hardcore(graph, 1.0)
}

/// Uniform vertex covers: spin 1 = "in the cover"; every edge must have a
/// covered endpoint. (Complements of independent sets.)
pub fn vertex_cover(graph: impl Into<Arc<Graph>>) -> Mrf {
    Mrf::homogeneous(
        graph,
        EdgeActivity::vertex_cover(),
        VertexActivity::uniform(2),
    )
}

/// The Ising model with edge activity `A(i,i) = beta`, `A(i,j) = 1`
/// (`beta > 1` ferromagnetic, `beta < 1` antiferromagnetic).
pub fn ising(graph: impl Into<Arc<Graph>>, beta: f64) -> Mrf {
    Mrf::homogeneous(graph, EdgeActivity::ising(beta), VertexActivity::uniform(2))
}

/// The `q`-state Potts model with diagonal activity `beta`.
pub fn potts(graph: impl Into<Arc<Graph>>, q: usize, beta: f64) -> Mrf {
    Mrf::homogeneous(
        graph,
        EdgeActivity::potts(q, beta),
        VertexActivity::uniform(q),
    )
}

/// The uniqueness threshold `λ_c(Δ) = (Δ-1)^(Δ-1) / (Δ-2)^Δ` of the
/// hardcore model (paper §5.1): sampling is tractable for `λ < λ_c` and
/// intractable (and, by Theorem 5.2, non-local) for `λ > λ_c`.
///
/// # Panics
/// Panics if `delta < 3` (the threshold is defined for Δ ≥ 3).
pub fn hardcore_uniqueness_threshold(delta: usize) -> f64 {
    assert!(delta >= 3, "uniqueness threshold needs Δ >= 3");
    let d = delta as f64;
    (d - 1.0).powf(d - 1.0) / (d - 2.0).powf(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_graph::generators;

    #[test]
    fn list_coloring_respects_lists() {
        let g = generators::path(3);
        let lists = vec![vec![0], vec![1, 2], vec![0]];
        let mrf = list_coloring(g, 3, &lists);
        assert!(mrf.is_feasible(&[0, 1, 0]));
        assert!(mrf.is_feasible(&[0, 2, 0]));
        assert!(!mrf.is_feasible(&[1, 2, 0])); // v0 must use 0
        assert!(!mrf.is_feasible(&[0, 0, 0])); // improper AND off-list
    }

    #[test]
    fn vertex_cover_complements_independent_set() {
        let g = generators::cycle(4);
        let vc = vertex_cover(g.clone());
        let is = uniform_independent_set(g);
        for idx in 0..16u32 {
            let config: Vec<u32> = (0..4).map(|i| (idx >> i) & 1).collect();
            let complement: Vec<u32> = config.iter().map(|&c| 1 - c).collect();
            assert_eq!(vc.is_feasible(&config), is.is_feasible(&complement));
        }
    }

    #[test]
    fn ising_ferro_prefers_agreement() {
        let mrf = ising(generators::path(2), 2.0);
        assert!(mrf.weight(&[0, 0]) > mrf.weight(&[0, 1]));
        let anti = ising(generators::path(2), 0.5);
        assert!(anti.weight(&[0, 0]) < anti.weight(&[0, 1]));
    }

    #[test]
    fn potts_diagonal() {
        let mrf = potts(generators::path(2), 3, 0.25);
        assert_eq!(mrf.weight(&[1, 1]), 0.25);
        assert_eq!(mrf.weight(&[1, 2]), 1.0);
    }

    #[test]
    fn uniqueness_threshold_values() {
        // λ_c(3) = 2²/1³ = 4, λ_c(4) = 27/16, λ_c(5) = 256/243,
        // λ_c(6) = 3125/4096 < 1 — hence uniform independent sets (λ = 1)
        // are non-unique exactly when Δ ≥ 6 (Theorem 1.3's condition).
        assert!((hardcore_uniqueness_threshold(3) - 4.0).abs() < 1e-12);
        assert!((hardcore_uniqueness_threshold(4) - 27.0 / 16.0).abs() < 1e-12);
        assert!(hardcore_uniqueness_threshold(5) > 1.0);
        assert!(hardcore_uniqueness_threshold(6) < 1.0);
    }
}
