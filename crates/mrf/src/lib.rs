//! Markov random fields and weighted local CSPs — the distributional
//! substrate of "What can be sampled locally?" (Feng, Sun, Yin, PODC 2017).
//!
//! The paper's Section 2.2 defines a Markov random field (spin system) on a
//! network `G(V, E)`: a domain `[q]`, a symmetric non-negative *edge
//! activity* `A_e ∈ R^{q×q}` per edge, and a non-negative *vertex activity*
//! `b_v ∈ R^q` per vertex. Every configuration `σ ∈ [q]^V` carries weight
//!
//! ```text
//! w(σ) = Π_{e=uv∈E} A_e(σ_u, σ_v) · Π_{v∈V} b_v(σ_v)           (paper eq. 1)
//! ```
//!
//! and the Gibbs distribution is `µ(σ) = w(σ) / Z`. This crate provides:
//!
//! * [`Mrf`] — the model itself, with the conditional marginal of eq. (2),
//!   the LocalMetropolis pass probabilities, and feasibility checks;
//! * [`models`] — the named models the paper uses as running examples
//!   (proper/list colorings, hardcore/independent sets, vertex covers,
//!   Ising, Potts);
//! * [`csp`] — the weighted *local CSP* generalization (factors with
//!   arbitrary scopes), including MIS and dominating-set constraints;
//! * [`gibbs`] — exact enumeration of the Gibbs distribution on small
//!   instances (the ground truth for every correctness experiment);
//! * [`transfer`] — transfer-matrix computations on paths and cycles
//!   (exact marginals at any size; the engine of the Theorem 5.1
//!   experiments);
//! * [`dobrushin`] — the influence matrix of Definition 3.1 and the total
//!   influence `α` of Dobrushin's condition.
//!
//! # Example
//!
//! ```
//! use lsl_graph::generators;
//! use lsl_mrf::{models, gibbs::Enumeration};
//!
//! let g = generators::cycle(4);
//! let mrf = models::proper_coloring(g, 3);
//! let exact = Enumeration::new(&mrf).unwrap();
//! // C_4 has 3-color chromatic polynomial (3-1)^4 + (3-1) = 18.
//! assert_eq!(exact.num_feasible(), 18);
//! ```

pub mod activity;
pub mod csp;
pub mod dobrushin;
pub mod gibbs;
pub mod model;
pub mod models;
pub mod transfer;

pub use activity::{EdgeActivity, VertexActivity};
pub use model::{Mrf, Spin};
