//! Weighted local CSPs (factor graphs) — the paper's §2.2 generalization
//! of MRFs to multivariate constraints `c = (f_c, S_c)`.
//!
//! A weighted CSP assigns each configuration the weight
//! `w(σ) = Π_c f_c(σ|S_c)`; Boolean-valued factors give the uniform
//! distribution over CSP solutions. The paper's examples — dominating sets
//! and maximal independent sets — are provided as constructors, and the
//! hypergraph neighborhood structure needed by the LubyGlauber extension
//! (strongly independent scheduling) is exposed via
//! [`Csp::scope_hypergraph`].

use crate::model::{sample_weighted, Spin};
use lsl_graph::hypergraph::Hypergraph;
use lsl_graph::{Graph, VertexId};
use rand::Rng;
use std::sync::Arc;

/// A single weighted constraint: a factor `f_c : [q]^{|S_c|} → R≥0` with
/// scope `S_c` (vertices, in a fixed order).
#[derive(Clone, Debug)]
pub struct Constraint {
    scope: Vec<u32>,
    /// Row-major table of size `q^{|scope|}`; index built with
    /// `scope[0]` as the least significant digit.
    table: Vec<f64>,
}

impl Constraint {
    /// Builds a constraint from a scope and a dense factor table.
    ///
    /// # Errors
    /// Returns a message if the table size is not `q^{|scope|}`, an entry
    /// is negative/non-finite, or the scope repeats a vertex.
    pub fn new(q: usize, scope: Vec<u32>, table: Vec<f64>) -> Result<Self, String> {
        let expect = crate::gibbs::checked_pow(q, scope.len())
            .ok_or("scope too large for a dense factor table")?;
        if table.len() != expect {
            return Err(format!(
                "factor table has {} entries; expected q^|S| = {expect}",
                table.len()
            ));
        }
        if table.iter().any(|&x| !x.is_finite() || x < 0.0) {
            return Err("factor entries must be finite and non-negative".into());
        }
        let mut seen = std::collections::HashSet::new();
        if !scope.iter().all(|&v| seen.insert(v)) {
            return Err("scope repeats a vertex".into());
        }
        Ok(Constraint { scope, table })
    }

    /// Builds a Boolean constraint from a predicate over local assignments.
    pub fn from_predicate(
        q: usize,
        scope: Vec<u32>,
        pred: impl Fn(&[Spin]) -> bool,
    ) -> Result<Self, String> {
        let size = crate::gibbs::checked_pow(q, scope.len())
            .ok_or("scope too large for a dense factor table")?;
        let k = scope.len();
        let mut local = vec![0 as Spin; k];
        let table = (0..size)
            .map(|idx| {
                crate::gibbs::decode_config(idx, q, &mut local);
                if pred(&local) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Constraint::new(q, scope, table)
    }

    /// The constraint's scope.
    pub fn scope(&self) -> &[u32] {
        &self.scope
    }

    /// Evaluates the factor on a *global* configuration.
    pub fn evaluate(&self, q: usize, config: &[Spin]) -> f64 {
        let mut idx = 0usize;
        for &v in self.scope.iter().rev() {
            idx = idx * q + config[v as usize] as usize;
        }
        self.table[idx]
    }

    /// Largest factor value (normalizer for Metropolis-style filters).
    pub fn max_value(&self) -> f64 {
        self.table.iter().copied().fold(0.0, f64::max)
    }

    /// Evaluates the factor on a *local* assignment aligned with the
    /// scope order (`local[i]` is the spin of `scope()[i]`).
    ///
    /// # Panics
    /// Panics if `local.len() != scope len` (debug) or a spin is out of
    /// range.
    pub fn evaluate_local(&self, q: usize, local: &[Spin]) -> f64 {
        debug_assert_eq!(local.len(), self.scope.len());
        let mut idx = 0usize;
        for &s in local.iter().rev() {
            idx = idx * q + s as usize;
        }
        self.table[idx]
    }
}

/// A weighted CSP over a network, with locality bookkeeping.
///
/// # Example
/// ```
/// use lsl_graph::generators;
/// use lsl_mrf::csp::Csp;
///
/// let g = generators::cycle(4);
/// let csp = Csp::dominating_set(g.into());
/// assert!(csp.is_feasible(&[1, 0, 1, 0]));
/// assert!(!csp.is_feasible(&[0, 0, 0, 0]));
/// ```
#[derive(Clone, Debug)]
pub struct Csp {
    graph: Arc<Graph>,
    q: usize,
    constraints: Vec<Constraint>,
    /// For each vertex, indices of constraints whose scope contains it.
    incident: Vec<Vec<u32>>,
}

impl Csp {
    /// Builds a CSP from constraints on a network.
    ///
    /// # Panics
    /// Panics if a scope member is out of range.
    pub fn new(graph: Arc<Graph>, q: usize, constraints: Vec<Constraint>) -> Self {
        let n = graph.num_vertices();
        let mut incident = vec![Vec::new(); n];
        for (ci, c) in constraints.iter().enumerate() {
            for &v in c.scope() {
                assert!((v as usize) < n, "scope member {v} out of range");
                incident[v as usize].push(ci as u32);
            }
        }
        Csp {
            graph,
            q,
            constraints,
            incident,
        }
    }

    /// Uniform dominating sets of `graph`: spin 1 = "chosen"; every closed
    /// neighborhood `Γ⁺(v)` must contain a chosen vertex.
    pub fn dominating_set(graph: Arc<Graph>) -> Self {
        let constraints = graph
            .vertices()
            .map(|v| {
                let mut scope: Vec<u32> = graph.neighbors(v).map(|u| u.0).collect();
                scope.push(v.0);
                scope.sort_unstable();
                scope.dedup();
                Constraint::from_predicate(2, scope, |local| local.contains(&1))
                    .expect("dominating-set constraint is valid")
            })
            .collect();
        Csp::new(graph, 2, constraints)
    }

    /// Uniform *maximal* independent sets: independence per edge plus
    /// domination per closed neighborhood (an MIS is a dominating
    /// independent set — paper §2.2).
    pub fn maximal_independent_set(graph: Arc<Graph>) -> Self {
        let mut constraints: Vec<Constraint> = graph
            .edges()
            .map(|(_, u, v)| {
                Constraint::from_predicate(2, vec![u.0, v.0], |local| {
                    !(local[0] == 1 && local[1] == 1)
                })
                .expect("independence constraint is valid")
            })
            .collect();
        for v in graph.vertices() {
            let mut scope: Vec<u32> = graph.neighbors(v).map(|u| u.0).collect();
            scope.push(v.0);
            scope.sort_unstable();
            scope.dedup();
            constraints.push(
                Constraint::from_predicate(2, scope, |local| local.contains(&1))
                    .expect("domination constraint is valid"),
            );
        }
        Csp::new(graph, 2, constraints)
    }

    /// The underlying network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Domain size `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Weight `w(σ) = Π_c f_c(σ|S_c)`.
    pub fn weight(&self, config: &[Spin]) -> f64 {
        assert_eq!(config.len(), self.graph.num_vertices());
        let mut w = 1.0;
        for c in &self.constraints {
            w *= c.evaluate(self.q, config);
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// Whether `w(σ) > 0`.
    pub fn is_feasible(&self, config: &[Spin]) -> bool {
        self.weight(config) > 0.0
    }

    /// Unnormalized conditional marginal of `v` given the rest of `config`:
    /// `weights[s] = Π_{c ∋ v} f_c(config with σ_v = s)`.
    pub fn marginal_weights(&self, v: VertexId, config: &[Spin]) -> Vec<f64> {
        let mut scratch = MarginalScratch::new(self);
        self.marginal_weights_into(v, config, &mut scratch);
        scratch.weights
    }

    /// In-place variant of [`Csp::marginal_weights`] for hot loops: the
    /// trial configuration and the weight vector both live in `scratch`.
    pub fn marginal_weights_into(
        &self,
        v: VertexId,
        config: &[Spin],
        scratch: &mut MarginalScratch,
    ) {
        scratch.config.clear();
        scratch.config.extend_from_slice(config);
        scratch.weights.resize(self.q, 0.0);
        for (s, slot) in scratch.weights.iter_mut().enumerate() {
            scratch.config[v.index()] = s as Spin;
            let mut w = 1.0;
            for &ci in &self.incident[v.index()] {
                w *= self.constraints[ci as usize].evaluate(self.q, &scratch.config);
                if w == 0.0 {
                    break;
                }
            }
            *slot = w;
        }
    }

    /// Heat-bath resample of `σ_v` from the conditional marginal; `None` if
    /// the marginal is ill-defined (all weights zero).
    pub fn sample_marginal(
        &self,
        v: VertexId,
        config: &[Spin],
        rng: &mut impl Rng,
    ) -> Option<Spin> {
        let mut scratch = MarginalScratch::new(self);
        self.sample_marginal_with(v, config, rng, &mut scratch)
    }

    /// Allocation-free variant of [`Csp::sample_marginal`] for hot loops.
    pub fn sample_marginal_with(
        &self,
        v: VertexId,
        config: &[Spin],
        rng: &mut impl Rng,
        scratch: &mut MarginalScratch,
    ) -> Option<Spin> {
        self.marginal_weights_into(v, config, scratch);
        sample_weighted(&scratch.weights, rng)
    }

    /// The hypergraph of constraint scopes — LubyGlauber's strongly
    /// independent scheduling operates on this structure.
    pub fn scope_hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.graph.num_vertices(),
            self.constraints.iter().map(|c| c.scope.clone()).collect(),
        )
    }

    /// Exhaustive enumeration: all feasible configurations with weights.
    /// Intended for small instances.
    ///
    /// # Panics
    /// Panics if `q^n > 2^24`.
    pub fn enumerate(&self) -> Vec<(Vec<Spin>, f64)> {
        let n = self.graph.num_vertices();
        let total = crate::gibbs::checked_pow(self.q, n).expect("q^n overflow");
        assert!(total <= 1 << 24, "state space too large to enumerate");
        let mut out = Vec::new();
        let mut config = vec![0 as Spin; n];
        for idx in 0..total {
            crate::gibbs::decode_config(idx, self.q, &mut config);
            let w = self.weight(&config);
            if w > 0.0 {
                out.push((config.clone(), w));
            }
        }
        out
    }
}

/// Clones the CSP into a fresh shared handle (the CSP counterpart of
/// `From<&Mrf> for Arc<Mrf>`): borrowed call sites keep compiling
/// against chain constructors that take `impl Into<Arc<Csp>>`, at the
/// cost of duplicating the constraint tables. Hold an `Arc<Csp>` and
/// pass `Arc::clone` on hot paths.
impl From<&Csp> for Arc<Csp> {
    fn from(csp: &Csp) -> Self {
        Arc::new(csp.clone())
    }
}

/// Reusable buffers for allocation-free CSP marginals: the trial
/// configuration written per candidate spin and the resulting weights.
#[derive(Clone, Debug)]
pub struct MarginalScratch {
    config: Vec<Spin>,
    weights: Vec<f64>,
}

impl MarginalScratch {
    /// Builds scratch sized for `csp`.
    pub fn new(csp: &Csp) -> Self {
        MarginalScratch {
            config: Vec::with_capacity(csp.graph.num_vertices()),
            weights: vec![0.0; csp.q],
        }
    }

    /// The marginal weights of the most recent
    /// [`Csp::marginal_weights_into`] call.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_graph::generators;

    #[test]
    fn dominating_sets_of_path3() {
        // P3: dominating sets are all sets containing v1, plus {0,2}:
        // {1},{0,1},{1,2},{0,1,2},{0,2} — and {0} fails (2 uncovered), etc.
        let csp = Csp::dominating_set(Arc::new(generators::path(3)));
        let sols = csp.enumerate();
        assert_eq!(sols.len(), 5);
        assert!(csp.is_feasible(&[0, 1, 0]));
        assert!(csp.is_feasible(&[1, 0, 1]));
        assert!(!csp.is_feasible(&[1, 0, 0]));
    }

    #[test]
    fn mis_of_cycle4() {
        // C4 has exactly 2 maximal independent sets: {0,2} and {1,3}.
        let csp = Csp::maximal_independent_set(Arc::new(generators::cycle(4)));
        let sols = csp.enumerate();
        assert_eq!(sols.len(), 2);
        assert!(csp.is_feasible(&[1, 0, 1, 0]));
        assert!(csp.is_feasible(&[0, 1, 0, 1]));
        assert!(!csp.is_feasible(&[1, 0, 0, 0])); // not maximal
        assert!(!csp.is_feasible(&[1, 1, 0, 0])); // not independent
    }

    #[test]
    fn mis_of_star() {
        // Star K_{1,3}: MISs are {hub} and {all leaves}.
        let csp = Csp::maximal_independent_set(Arc::new(generators::star(3)));
        assert_eq!(csp.enumerate().len(), 2);
    }

    #[test]
    fn marginal_weights_respect_constraints() {
        let csp = Csp::maximal_independent_set(Arc::new(generators::path(3)));
        // Config [1,0,?]: v2 must be 1 (else Γ+(2) = {1,2} undominated).
        let w = csp.marginal_weights(VertexId(2), &[1, 0, 0]);
        assert_eq!(w[0], 0.0);
        assert!(w[1] > 0.0);
    }

    #[test]
    fn scope_hypergraph_strong_independence() {
        let csp = Csp::maximal_independent_set(Arc::new(generators::path(3)));
        let h = csp.scope_hypergraph();
        // v0 and v2 share the domination scope of v1 = {0,1,2}.
        assert!(!h.is_strongly_independent(&[true, false, true]));
        assert!(h.is_strongly_independent(&[true, false, false]));
    }

    #[test]
    fn weighted_factor_tables() {
        let g = Arc::new(generators::path(2));
        // Soft agreement factor on the edge.
        let c = Constraint::new(2, vec![0, 1], vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let csp = Csp::new(g, 2, vec![c]);
        assert_eq!(csp.weight(&[0, 0]), 2.0);
        assert_eq!(csp.weight(&[0, 1]), 1.0);
        assert_eq!(csp.constraints()[0].max_value(), 2.0);
    }

    #[test]
    fn constraint_validation() {
        assert!(Constraint::new(2, vec![0, 1], vec![1.0; 3]).is_err());
        assert!(Constraint::new(2, vec![0, 0], vec![1.0; 4]).is_err());
        assert!(Constraint::new(2, vec![0, 1], vec![1.0, -1.0, 0.0, 1.0]).is_err());
    }
}
