//! Transfer-matrix (dynamic-programming) computations on paths and cycles.
//!
//! The Theorem 5.1 lower bound rests on the *exponential correlation*
//! property of Gibbs distributions on paths (paper eq. 28/29):
//! `dTV(µ_v(·|σ_u), µ_v(·|σ'_u)) ≥ η^dist(u,v)`. This module computes those
//! conditional marginals *exactly* at any path length by the standard
//! forward/backward DP, with per-layer rescaling for numerical stability.

use crate::model::{Mrf, Spin};
use lsl_graph::{EdgeId, Graph, VertexId};

/// Exact marginal machinery for an MRF whose graph is a simple path.
///
/// # Example
/// ```
/// use lsl_graph::generators;
/// use lsl_mrf::{models, transfer::PathDp};
///
/// let mrf = models::proper_coloring(generators::path(10), 3);
/// let dp = PathDp::new(&mrf).unwrap();
/// let m = dp.marginal(lsl_graph::VertexId(5)).unwrap();
/// assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct PathDp<'a> {
    mrf: &'a Mrf,
    /// Vertices in path order.
    order: Vec<VertexId>,
    /// `edge[i]` joins `order[i]` to `order[i+1]`.
    edges: Vec<EdgeId>,
    /// Position of each vertex in `order`.
    position: Vec<usize>,
}

/// Detects whether `g` is a simple path and returns its vertices in path
/// order (either orientation), or `None`.
pub fn path_order(g: &Graph) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    if n == 0 {
        return Some(Vec::new());
    }
    if n == 1 {
        return Some(vec![VertexId(0)]);
    }
    if g.num_edges() != n - 1 {
        return None;
    }
    let mut ends = Vec::new();
    for v in g.vertices() {
        match g.degree(v) {
            1 => ends.push(v),
            2 => {}
            _ => return None,
        }
    }
    if ends.len() != 2 {
        return None;
    }
    walk_from(g, ends[0], n)
}

/// Detects whether `g` is a simple cycle and returns its vertices in cyclic
/// order, or `None`.
pub fn cycle_order(g: &Graph) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    if n < 3 || g.num_edges() != n {
        return None;
    }
    if g.vertices().any(|v| g.degree(v) != 2) {
        return None;
    }
    walk_from(g, VertexId(0), n)
}

/// Walks a degree-≤2 graph from `start`, returning the visit order if it
/// covers all `n` vertices.
fn walk_from(g: &Graph, start: VertexId, n: usize) -> Option<Vec<VertexId>> {
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut current = start;
    visited[current.index()] = true;
    order.push(current);
    loop {
        let next = g.neighbors(current).find(|u| !visited[u.index()]);
        match next {
            Some(u) => {
                visited[u.index()] = true;
                order.push(u);
                current = u;
            }
            None => break,
        }
    }
    (order.len() == n).then_some(order)
}

impl<'a> PathDp<'a> {
    /// Builds the DP over an MRF whose graph must be a simple path.
    ///
    /// # Errors
    /// Returns an error if the graph is not a simple path.
    pub fn new(mrf: &'a Mrf) -> Result<Self, String> {
        let g = mrf.graph();
        let order = path_order(g).ok_or("graph is not a simple path")?;
        let mut edges = Vec::with_capacity(order.len().saturating_sub(1));
        for w in order.windows(2) {
            let (v, u) = (w[0], w[1]);
            let e = g
                .incident_edges(v)
                .find(|&(_, x)| x == u)
                .map(|(e, _)| e)
                .ok_or("path order inconsistent")?;
            edges.push(e);
        }
        let mut position = vec![0usize; g.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            position[v.index()] = i;
        }
        Ok(PathDp {
            mrf,
            order,
            edges,
            position,
        })
    }

    /// The path order used by the DP.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// The vertex activity at position `i`, respecting `pins`.
    fn pinned_activity(&self, i: usize, c: Spin, pins: &[(VertexId, Spin)]) -> f64 {
        let v = self.order[i];
        for &(u, s) in pins {
            if u == v && s != c {
                return 0.0;
            }
        }
        self.mrf.vertex_activity(v).get(c)
    }

    /// Forward messages with per-layer rescaling. Returns `(layers,
    /// log_scale)` where the true layer values are `layers[i] *
    /// exp(log_scale[i])` cumulatively.
    fn forward(&self, pins: &[(VertexId, Spin)]) -> (Vec<Vec<f64>>, f64) {
        let q = self.mrf.q();
        let n = self.order.len();
        let mut layers = Vec::with_capacity(n);
        let mut log_scale = 0.0;
        let mut cur: Vec<f64> = (0..q)
            .map(|c| self.pinned_activity(0, c as Spin, pins))
            .collect();
        log_scale += rescale(&mut cur);
        layers.push(cur.clone());
        for i in 1..n {
            let a = self.mrf.edge_activity(self.edges[i - 1]);
            let mut next = vec![0.0; q];
            for (c, slot) in next.iter_mut().enumerate() {
                let b = self.pinned_activity(i, c as Spin, pins);
                if b == 0.0 {
                    continue;
                }
                let mut acc = 0.0;
                for (cp, &f) in cur.iter().enumerate() {
                    acc += f * a.get(cp as Spin, c as Spin);
                }
                *slot = b * acc;
            }
            log_scale += rescale(&mut next);
            layers.push(next.clone());
            cur = next;
        }
        (layers, log_scale)
    }

    /// Backward messages (same rescaling convention).
    fn backward(&self, pins: &[(VertexId, Spin)]) -> Vec<Vec<f64>> {
        let q = self.mrf.q();
        let n = self.order.len();
        let mut layers = vec![vec![0.0; q]; n];
        let mut cur = vec![1.0; q];
        rescale(&mut cur);
        layers[n - 1] = cur.clone();
        for i in (0..n - 1).rev() {
            let a = self.mrf.edge_activity(self.edges[i]);
            let mut prev = vec![0.0; q];
            for (c, slot) in prev.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (cn, &bk) in cur.iter().enumerate() {
                    let b = self.pinned_activity(i + 1, cn as Spin, pins);
                    acc += a.get(c as Spin, cn as Spin) * b * bk;
                }
                *slot = acc;
            }
            rescale(&mut prev);
            layers[i] = prev.clone();
            cur = prev;
        }
        layers
    }

    /// Natural log of the partition function `ln Z`.
    pub fn log_partition_function(&self) -> f64 {
        let (layers, log_scale) = self.forward(&[]);
        let last: f64 = layers.last().expect("nonempty path").iter().sum();
        last.ln() + log_scale
    }

    /// Exact marginal `µ_v` (length-`q`, sums to 1); `None` if the model on
    /// this path is infeasible.
    pub fn marginal(&self, v: VertexId) -> Option<Vec<f64>> {
        self.conditional_marginal(v, &[])
    }

    /// Exact conditional marginal `µ_v(· | pins)`; `None` if the pinned
    /// event has zero probability.
    pub fn conditional_marginal(&self, v: VertexId, pins: &[(VertexId, Spin)]) -> Option<Vec<f64>> {
        let (fwd, _) = self.forward(pins);
        let bwd = self.backward(pins);
        let i = self.position[v.index()];
        let q = self.mrf.q();
        let mut out = vec![0.0; q];
        let mut mass = 0.0;
        for c in 0..q {
            let p = fwd[i][c] * bwd[i][c];
            out[c] = p;
            mass += p;
        }
        if !(mass > 0.0) {
            return None;
        }
        for x in &mut out {
            *x /= mass;
        }
        Some(out)
    }
}

/// Rescales `layer` to sum 1 (if positive) and returns `ln(scale)`.
fn rescale(layer: &mut [f64]) -> f64 {
    let sum: f64 = layer.iter().sum();
    if sum > 0.0 {
        for x in layer.iter_mut() {
            *x /= sum;
        }
        sum.ln()
    } else {
        0.0
    }
}

/// Exact marginal of a vertex for an MRF on a simple *cycle*, by pinning
/// the vertex and reducing to path DPs.
///
/// Returns `None` if the graph is not a simple cycle or the model is
/// infeasible.
pub fn cycle_marginal(mrf: &Mrf, v: VertexId) -> Option<Vec<f64>> {
    let g = mrf.graph();
    let order = cycle_order(g)?;
    let n = order.len();
    let q = mrf.q();
    // Rotate order so v is first.
    let pos = order.iter().position(|&u| u == v)?;
    let rot: Vec<VertexId> = (0..n).map(|i| order[(pos + i) % n]).collect();
    // Edge between rot[i] and rot[i+1], plus the closing edge rot[n-1]-rot[0].
    let edge_between = |a: VertexId, b: VertexId| -> Option<EdgeId> {
        g.incident_edges(a).find(|&(_, x)| x == b).map(|(e, _)| e)
    };
    let closing = edge_between(rot[n - 1], rot[0])?;
    let mut log_weights = vec![f64::NEG_INFINITY; q];
    for c in 0..q as Spin {
        // Forward DP along the open path rot[0..n] with rot[0] pinned to c.
        let b0 = mrf.vertex_activity(rot[0]).get(c);
        if b0 == 0.0 {
            continue;
        }
        let mut cur = vec![0.0; q];
        cur[c as usize] = b0;
        let mut log_scale = rescale(&mut cur);
        for i in 1..n {
            let e = edge_between(rot[i - 1], rot[i])?;
            let a = mrf.edge_activity(e);
            let mut next = vec![0.0; q];
            for (cn, slot) in next.iter_mut().enumerate() {
                let b = mrf.vertex_activity(rot[i]).get(cn as Spin);
                if b == 0.0 {
                    continue;
                }
                let mut acc = 0.0;
                for (cp, &f) in cur.iter().enumerate() {
                    acc += f * a.get(cp as Spin, cn as Spin);
                }
                *slot = b * acc;
            }
            log_scale += rescale(&mut next);
            cur = next;
        }
        // Close the cycle.
        let a = mrf.edge_activity(closing);
        let mut acc = 0.0;
        for (cl, &f) in cur.iter().enumerate() {
            acc += f * a.get(cl as Spin, c);
        }
        if acc > 0.0 {
            log_weights[c as usize] = acc.ln() + log_scale;
        }
    }
    // Normalize in log space to avoid overflow on long cycles.
    let max_log = log_weights
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if !max_log.is_finite() {
        return None;
    }
    let mut weights: Vec<f64> = log_weights.iter().map(|&lw| (lw - max_log).exp()).collect();
    let mass: f64 = weights.iter().sum();
    for x in &mut weights {
        *x /= mass;
    }
    Some(weights)
}

/// The worst-pair conditional total-variation influence of `u` on `v`
/// along a path: `max dTV(µ_v(·|σ_u = a), µ_v(·|σ_u = b))` over spin pairs
/// `(a, b)` whose marginal probability at `u` is at least `min_mass`.
///
/// This is the quantity whose exponential decay (paper eq. 28) drives the
/// Ω(log n) lower bound; `min_mass` plays the role of the paper's δ.
pub fn conditional_influence(
    dp: &PathDp<'_>,
    u: VertexId,
    v: VertexId,
    min_mass: f64,
) -> Option<f64> {
    let mu_u = dp.marginal(u)?;
    let q = mu_u.len();
    let conds: Vec<Option<Vec<f64>>> = (0..q as Spin)
        .map(|a| {
            if mu_u[a as usize] >= min_mass {
                dp.conditional_marginal(v, &[(u, a)])
            } else {
                None
            }
        })
        .collect();
    let mut best: Option<f64> = None;
    for a in 0..q {
        for b in (a + 1)..q {
            if let (Some(pa), Some(pb)) = (&conds[a], &conds[b]) {
                let tv = 0.5 * pa.iter().zip(pb).map(|(x, y)| (x - y).abs()).sum::<f64>();
                best = Some(best.map_or(tv, |cur: f64| cur.max(tv)));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::Enumeration;
    use crate::models;
    use lsl_graph::generators;

    #[test]
    fn path_order_detection() {
        assert!(path_order(&generators::path(5)).is_some());
        assert!(path_order(&generators::cycle(5)).is_none());
        assert!(path_order(&generators::star(3)).is_none());
        assert_eq!(path_order(&generators::path(1)).unwrap().len(), 1);
        let order = path_order(&generators::path(4)).unwrap();
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn cycle_order_detection() {
        assert!(cycle_order(&generators::cycle(6)).is_some());
        assert!(cycle_order(&generators::path(6)).is_none());
        // Two disjoint triangles: 2-regular but disconnected.
        let g = lsl_graph::Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(cycle_order(&g).is_none());
    }

    #[test]
    fn log_z_matches_enumeration() {
        for q in [2usize, 3, 4] {
            let mrf = models::proper_coloring(generators::path(5), q.max(2));
            let dp = PathDp::new(&mrf).unwrap();
            let exact = Enumeration::new(&mrf).unwrap();
            let diff = (dp.log_partition_function() - exact.partition_function().ln()).abs();
            assert!(diff < 1e-9, "q = {q}: diff = {diff}");
        }
        // Weighted model too.
        let mrf = models::hardcore(generators::path(6), 0.7);
        let dp = PathDp::new(&mrf).unwrap();
        let exact = Enumeration::new(&mrf).unwrap();
        assert!((dp.log_partition_function() - exact.partition_function().ln()).abs() < 1e-9);
    }

    #[test]
    fn marginals_match_enumeration() {
        let mrf = models::hardcore(generators::path(5), 1.3);
        let dp = PathDp::new(&mrf).unwrap();
        let exact = Enumeration::new(&mrf).unwrap();
        for v in mrf.graph().vertices() {
            let a = dp.marginal(v).unwrap();
            let b = exact.marginal(v);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-10, "{v}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn conditional_marginals_match_enumeration() {
        let mrf = models::proper_coloring(generators::path(6), 3);
        let dp = PathDp::new(&mrf).unwrap();
        let exact = Enumeration::new(&mrf).unwrap();
        let pins = [(VertexId(1), 0 as Spin), (VertexId(4), 2 as Spin)];
        for v in [VertexId(0), VertexId(2), VertexId(3), VertexId(5)] {
            let a = dp.conditional_marginal(v, &pins).unwrap();
            let b = exact.conditional_marginal(v, &pins).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn infeasible_pin_returns_none() {
        let mrf = models::proper_coloring(generators::path(3), 3);
        let dp = PathDp::new(&mrf).unwrap();
        // Adjacent vertices pinned to the same color: impossible.
        let pins = [(VertexId(0), 1 as Spin), (VertexId(1), 1 as Spin)];
        assert!(dp.conditional_marginal(VertexId(2), &pins).is_none());
    }

    #[test]
    fn long_paths_are_stable() {
        let mrf = models::proper_coloring(generators::path(2000), 3);
        let dp = PathDp::new(&mrf).unwrap();
        let m = dp.marginal(VertexId(1000)).unwrap();
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(m.iter().all(|&p| p.is_finite() && p >= 0.0));
        // ln Z = ln(3 * 2^1999).
        let expect = 3.0f64.ln() + 1999.0 * 2.0f64.ln();
        assert!((dp.log_partition_function() - expect).abs() < 1e-6);
    }

    #[test]
    fn cycle_marginal_matches_enumeration() {
        let mrf = models::hardcore(generators::cycle(6), 0.9);
        let exact = Enumeration::new(&mrf).unwrap();
        for v in mrf.graph().vertices() {
            let a = cycle_marginal(&mrf, v).unwrap();
            let b = exact.marginal(v);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-10, "{v}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn correlation_decays_exponentially_for_colorings() {
        // Paper eq. (28): on a path with q = 3 the influence of σ_u on µ_v
        // decays exponentially in dist(u, v) — and is nonzero at every
        // distance.
        let mrf = models::proper_coloring(generators::path(30), 3);
        let dp = PathDp::new(&mrf).unwrap();
        let u = VertexId(0);
        let mut last = f64::INFINITY;
        for d in [1u32, 3, 5, 8, 12] {
            let v = VertexId(d);
            let inf = conditional_influence(&dp, u, v, 0.05).unwrap();
            assert!(inf > 0.0, "influence vanished at distance {d}");
            assert!(inf < last, "influence not decreasing at distance {d}");
            last = inf;
        }
        // Rate check: ratio between distances 5 and 8 ≈ η³ for some η < 1.
        let i5 = conditional_influence(&dp, u, VertexId(5), 0.05).unwrap();
        let i8 = conditional_influence(&dp, u, VertexId(8), 0.05).unwrap();
        let eta = (i8 / i5).powf(1.0 / 3.0);
        assert!(eta > 0.0 && eta < 1.0, "eta = {eta}");
    }
}
