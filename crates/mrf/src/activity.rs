//! Edge and vertex activities: the factors of the MRF weight (paper eq. 1).

/// A symmetric non-negative `q × q` edge activity matrix `A_e`.
///
/// Stores both the raw entries and the normalized matrix
/// `Ã_e = A_e / max_{i,j} A_e(i,j)` that the LocalMetropolis filter uses.
///
/// # Example
/// ```
/// use lsl_mrf::EdgeActivity;
/// let a = EdgeActivity::coloring(3);
/// assert_eq!(a.get(0, 0), 0.0);
/// assert_eq!(a.get(0, 1), 1.0);
/// assert_eq!(a.normalized(1, 2), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeActivity {
    q: usize,
    data: Vec<f64>,
    max: f64,
}

impl EdgeActivity {
    /// Builds an edge activity from a row-major `q × q` matrix.
    ///
    /// # Errors
    /// Returns a message if the data has the wrong length, contains a
    /// negative or non-finite entry, is all-zero, or is asymmetric.
    pub fn new(q: usize, data: Vec<f64>) -> Result<Self, String> {
        if q == 0 {
            return Err("domain size q must be positive".into());
        }
        if data.len() != q * q {
            return Err(format!("expected {} entries, got {}", q * q, data.len()));
        }
        let mut max = 0.0f64;
        for (idx, &x) in data.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "entry {idx} = {x} is not a finite non-negative value"
                ));
            }
            max = max.max(x);
        }
        if max == 0.0 {
            return Err("edge activity must have a positive entry".into());
        }
        for i in 0..q {
            for j in (i + 1)..q {
                if data[i * q + j] != data[j * q + i] {
                    return Err(format!("asymmetric at ({i}, {j})"));
                }
            }
        }
        Ok(EdgeActivity { q, data, max })
    }

    /// The all-ones activity (no interaction).
    pub fn uniform(q: usize) -> Self {
        EdgeActivity::new(q, vec![1.0; q * q]).expect("all-ones matrix is valid")
    }

    /// The proper-coloring activity: `A(i, i) = 0`, `A(i, j) = 1` for `i ≠ j`.
    ///
    /// # Panics
    /// Panics if `q < 2` (a 1-spin coloring activity would be all-zero).
    pub fn coloring(q: usize) -> Self {
        assert!(q >= 2, "coloring activity needs q >= 2");
        let mut data = vec![1.0; q * q];
        for i in 0..q {
            data[i * q + i] = 0.0;
        }
        EdgeActivity::new(q, data).expect("coloring matrix is valid")
    }

    /// The hardcore / independent-set activity on spins `{0 = out, 1 = in}`:
    /// `A(1, 1) = 0`, all other entries 1.
    pub fn hardcore() -> Self {
        EdgeActivity::new(2, vec![1.0, 1.0, 1.0, 0.0]).expect("hardcore matrix is valid")
    }

    /// The vertex-cover activity on spins `{0 = out, 1 = in}`: an edge may
    /// not have both endpoints out — `A(0, 0) = 0`, all other entries 1.
    pub fn vertex_cover() -> Self {
        EdgeActivity::new(2, vec![0.0, 1.0, 1.0, 1.0]).expect("vertex-cover matrix is valid")
    }

    /// The Potts activity: `A(i, i) = beta`, `A(i, j) = 1` for `i ≠ j`
    /// (paper §2.2; `beta > 1` ferromagnetic, `beta < 1` antiferromagnetic).
    ///
    /// # Panics
    /// Panics if `beta` is negative or not finite.
    pub fn potts(q: usize, beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be finite and >= 0"
        );
        let mut data = vec![1.0; q * q];
        for i in 0..q {
            data[i * q + i] = beta;
        }
        EdgeActivity::new(q, data).expect("potts matrix is valid")
    }

    /// The Ising activity (`q = 2` Potts).
    pub fn ising(beta: f64) -> Self {
        EdgeActivity::potts(2, beta)
    }

    /// Domain size `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Raw entry `A(a, b)`.
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> f64 {
        self.data[a as usize * self.q + b as usize]
    }

    /// Normalized entry `Ã(a, b) = A(a, b) / max A` — a probability in
    /// `[0, 1]`, the building block of the LocalMetropolis filter.
    #[inline]
    pub fn normalized(&self, a: u32, b: u32) -> f64 {
        self.get(a, b) / self.max
    }

    /// Largest entry `max_{i,j} A(i, j)`.
    #[inline]
    pub fn max_entry(&self) -> f64 {
        self.max
    }

    /// Whether every entry is 0 or `max` — then every LocalMetropolis edge
    /// coin is deterministic (the coloring/hardcore fast path).
    pub fn is_hard_constraint(&self) -> bool {
        self.data.iter().all(|&x| x == 0.0 || x == self.max)
    }
}

/// A non-negative vertex activity vector `b_v ∈ R^q`.
///
/// # Example
/// ```
/// use lsl_mrf::VertexActivity;
/// let b = VertexActivity::hardcore(0.5);
/// assert_eq!(b.get(1), 0.5);
/// assert_eq!(b.total(), 1.5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct VertexActivity {
    data: Vec<f64>,
    total: f64,
}

impl VertexActivity {
    /// Builds a vertex activity from its `q` entries.
    ///
    /// # Errors
    /// Returns a message if the vector is empty, has a negative or
    /// non-finite entry, or sums to zero (no spin could ever be proposed).
    pub fn new(data: Vec<f64>) -> Result<Self, String> {
        if data.is_empty() {
            return Err("vertex activity must be non-empty".into());
        }
        let mut total = 0.0;
        for (idx, &x) in data.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "entry {idx} = {x} is not a finite non-negative value"
                ));
            }
            total += x;
        }
        if total == 0.0 {
            return Err("vertex activity must have a positive entry".into());
        }
        Ok(VertexActivity { data, total })
    }

    /// The all-ones activity (uniform external field).
    pub fn uniform(q: usize) -> Self {
        VertexActivity::new(vec![1.0; q]).expect("all-ones vector is valid")
    }

    /// Hardcore vertex activity `b = (1, λ)` with fugacity `λ > 0`.
    ///
    /// # Panics
    /// Panics if `lambda` is not finite and positive.
    pub fn hardcore(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "fugacity must be finite and positive"
        );
        VertexActivity::new(vec![1.0, lambda]).expect("hardcore vector is valid")
    }

    /// List-coloring indicator: `b(c) = 1` iff `c` appears in `list`.
    ///
    /// # Panics
    /// Panics if the list is empty or contains a color `>= q`.
    pub fn list_indicator(q: usize, list: &[u32]) -> Self {
        assert!(!list.is_empty(), "color list must be non-empty");
        let mut data = vec![0.0; q];
        for &c in list {
            assert!((c as usize) < q, "color {c} out of range for q = {q}");
            data[c as usize] = 1.0;
        }
        VertexActivity::new(data).expect("indicator vector is valid")
    }

    /// Domain size `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.data.len()
    }

    /// Entry `b(c)`.
    #[inline]
    pub fn get(&self, c: u32) -> f64 {
        self.data[c as usize]
    }

    /// Sum of all entries (the proposal normalizer of LocalMetropolis).
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Samples a spin with probability proportional to `b` — the
    /// LocalMetropolis *propose* step.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> u32 {
        use rand::RngExt;
        let mut target = rng.random::<f64>() * self.total;
        for (c, &w) in self.data.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return c as u32;
            }
        }
        // Floating-point slack: return the last spin with positive weight.
        self.data
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("total > 0 guarantees a positive entry") as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coloring_matrix_entries() {
        let a = EdgeActivity::coloring(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), if i == j { 0.0 } else { 1.0 });
            }
        }
        assert!(a.is_hard_constraint());
        assert_eq!(a.max_entry(), 1.0);
    }

    #[test]
    fn hardcore_matrix() {
        let a = EdgeActivity::hardcore();
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert!(a.is_hard_constraint());
    }

    #[test]
    fn potts_not_hard() {
        let a = EdgeActivity::potts(3, 0.5);
        assert!(!a.is_hard_constraint());
        assert_eq!(a.normalized(0, 0), 0.5);
        assert_eq!(a.normalized(0, 1), 1.0);
    }

    #[test]
    fn rejects_bad_matrices() {
        assert!(EdgeActivity::new(2, vec![1.0, 0.0, 1.0, 0.0]).is_err()); // asymmetric
        assert!(EdgeActivity::new(2, vec![0.0; 4]).is_err()); // all-zero
        assert!(EdgeActivity::new(2, vec![1.0, -1.0, -1.0, 1.0]).is_err()); // negative
        assert!(EdgeActivity::new(2, vec![1.0; 3]).is_err()); // wrong size
        assert!(EdgeActivity::new(0, vec![]).is_err()); // q = 0
    }

    #[test]
    fn vertex_activity_validation() {
        assert!(VertexActivity::new(vec![]).is_err());
        assert!(VertexActivity::new(vec![0.0, 0.0]).is_err());
        assert!(VertexActivity::new(vec![1.0, f64::NAN]).is_err());
        assert!(VertexActivity::new(vec![0.0, 2.0]).is_ok());
    }

    #[test]
    fn list_indicator_entries() {
        let b = VertexActivity::list_indicator(5, &[1, 3]);
        assert_eq!(b.get(0), 0.0);
        assert_eq!(b.get(1), 1.0);
        assert_eq!(b.get(3), 1.0);
        assert_eq!(b.total(), 2.0);
    }

    #[test]
    fn sampling_respects_support() {
        let b = VertexActivity::list_indicator(4, &[2]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(b.sample(&mut rng), 2);
        }
    }

    #[test]
    fn sampling_roughly_proportional() {
        let b = VertexActivity::new(vec![1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let ones = (0..n).filter(|_| b.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }
}
