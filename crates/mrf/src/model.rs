//! The [`Mrf`] type: a Markov random field bound to a network.

use crate::activity::{EdgeActivity, VertexActivity};
use lsl_graph::{EdgeId, Graph, VertexId};
use rand::{Rng, RngExt};
use std::sync::Arc;

/// A spin value in the domain `[q] = {0, 1, ..., q-1}`.
///
/// (The paper indexes spins from 1; we index from 0.)
pub type Spin = u32;

/// A Markov random field on a network.
///
/// The network is shared behind an [`Arc`] so that chains, couplings, and
/// replicas can all reference the same topology without cloning it —
/// the main ownership friction in a Rust reproduction of shared-graph
/// distributed algorithms.
///
/// Activities are stored in small *palettes* with per-edge / per-vertex
/// indices, so a 10⁶-edge model with one shared activity costs O(q²), not
/// O(m q²).
///
/// # Example
/// ```
/// use lsl_graph::generators;
/// use lsl_mrf::models;
///
/// let mrf = models::proper_coloring(generators::cycle(5), 3);
/// assert_eq!(mrf.q(), 3);
/// assert!(mrf.is_feasible(&[0, 1, 0, 1, 2]));
/// assert!(!mrf.is_feasible(&[0, 0, 1, 2, 1]));
/// ```
#[derive(Clone, Debug)]
pub struct Mrf {
    graph: Arc<Graph>,
    q: usize,
    edge_palette: Vec<EdgeActivity>,
    edge_kind: Vec<u32>,
    vertex_palette: Vec<VertexActivity>,
    vertex_kind: Vec<u32>,
}

impl Mrf {
    /// Builds an MRF in which every edge shares `edge_act` and every vertex
    /// shares `vertex_act`.
    ///
    /// # Panics
    /// Panics if the two activities disagree on `q`.
    pub fn homogeneous(
        graph: impl Into<Arc<Graph>>,
        edge_act: EdgeActivity,
        vertex_act: VertexActivity,
    ) -> Self {
        assert_eq!(
            edge_act.q(),
            vertex_act.q(),
            "edge and vertex activities disagree on q"
        );
        let graph = graph.into();
        let q = edge_act.q();
        let m = graph.num_edges();
        let n = graph.num_vertices();
        Mrf {
            graph,
            q,
            edge_palette: vec![edge_act],
            edge_kind: vec![0; m],
            vertex_palette: vec![vertex_act],
            vertex_kind: vec![0; n],
        }
    }

    /// Builds an MRF with one shared edge activity but per-vertex
    /// activities (the list-coloring shape).
    ///
    /// # Panics
    /// Panics if the number of vertex activities differs from `n` or any
    /// disagrees on `q`.
    pub fn with_vertex_activities(
        graph: impl Into<Arc<Graph>>,
        edge_act: EdgeActivity,
        vertex_acts: Vec<VertexActivity>,
    ) -> Self {
        let graph = graph.into();
        let q = edge_act.q();
        assert_eq!(
            vertex_acts.len(),
            graph.num_vertices(),
            "need one vertex activity per vertex"
        );
        assert!(
            vertex_acts.iter().all(|b| b.q() == q),
            "every vertex activity must have the same q"
        );
        let m = graph.num_edges();
        let vertex_kind = (0..vertex_acts.len() as u32).collect();
        Mrf {
            graph,
            q,
            edge_palette: vec![edge_act],
            edge_kind: vec![0; m],
            vertex_palette: vertex_acts,
            vertex_kind,
        }
    }

    /// Replaces the activity of a single vertex (palette grows by one).
    pub fn set_vertex_activity(&mut self, v: VertexId, act: VertexActivity) {
        assert_eq!(act.q(), self.q, "activity q mismatch");
        self.vertex_kind[v.index()] = self.vertex_palette.len() as u32;
        self.vertex_palette.push(act);
    }

    /// Replaces the activity of a single edge (palette grows by one).
    pub fn set_edge_activity(&mut self, e: EdgeId, act: EdgeActivity) {
        assert_eq!(act.q(), self.q, "activity q mismatch");
        self.edge_kind[e.index()] = self.edge_palette.len() as u32;
        self.edge_palette.push(act);
    }

    /// The underlying network.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A shareable handle to the underlying network.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Domain size `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of vertices (shorthand for `graph().num_vertices()`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The activity of edge `e`.
    #[inline]
    pub fn edge_activity(&self, e: EdgeId) -> &EdgeActivity {
        &self.edge_palette[self.edge_kind[e.index()] as usize]
    }

    /// The activity of vertex `v`.
    #[inline]
    pub fn vertex_activity(&self, v: VertexId) -> &VertexActivity {
        &self.vertex_palette[self.vertex_kind[v.index()] as usize]
    }

    /// The palette index of edge `e`'s activity (see [`Mrf::edge_palette`]).
    #[inline]
    pub fn edge_kind_of(&self, e: EdgeId) -> u32 {
        self.edge_kind[e.index()]
    }

    /// The palette index of vertex `v`'s activity (see
    /// [`Mrf::vertex_palette`]).
    #[inline]
    pub fn vertex_kind_of(&self, v: VertexId) -> u32 {
        self.vertex_kind[v.index()]
    }

    /// The edge-activity palette, indexed by [`Mrf::edge_kind_of`]. Kernels
    /// precompute per-kind tables (e.g. normalized filter factors) against
    /// this instead of one table per edge.
    #[inline]
    pub fn edge_palette(&self) -> &[EdgeActivity] {
        &self.edge_palette
    }

    /// The vertex-activity palette, indexed by [`Mrf::vertex_kind_of`].
    #[inline]
    pub fn vertex_palette(&self) -> &[VertexActivity] {
        &self.vertex_palette
    }

    /// The weight `w(σ)` of a configuration (paper eq. 1). May underflow to
    /// zero for large instances; use [`Mrf::log_weight`] there.
    ///
    /// # Panics
    /// Panics if `config.len() != n` or a spin is out of range.
    pub fn weight(&self, config: &[Spin]) -> f64 {
        self.check_config(config);
        let mut w = 1.0;
        for (e, u, v) in self.graph.edges() {
            w *= self
                .edge_activity(e)
                .get(config[u.index()], config[v.index()]);
            if w == 0.0 {
                return 0.0;
            }
        }
        for v in self.graph.vertices() {
            w *= self.vertex_activity(v).get(config[v.index()]);
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// The log-weight `ln w(σ)`, `-∞` for infeasible configurations.
    pub fn log_weight(&self, config: &[Spin]) -> f64 {
        self.check_config(config);
        let mut lw = 0.0;
        for (e, u, v) in self.graph.edges() {
            let a = self
                .edge_activity(e)
                .get(config[u.index()], config[v.index()]);
            if a == 0.0 {
                return f64::NEG_INFINITY;
            }
            lw += a.ln();
        }
        for v in self.graph.vertices() {
            let b = self.vertex_activity(v).get(config[v.index()]);
            if b == 0.0 {
                return f64::NEG_INFINITY;
            }
            lw += b.ln();
        }
        lw
    }

    /// Whether `µ(σ) > 0`.
    pub fn is_feasible(&self, config: &[Spin]) -> bool {
        self.weight(config) > 0.0
    }

    /// The unnormalized conditional marginal of eq. (2) at `v`:
    /// `weights[c] = b_v(c) · Π_{u ∈ Γ(v)} A_uv(c, X_u)`.
    ///
    /// Returns the weights *unnormalized*; the caller checks positivity of
    /// the sum (the paper's well-definedness assumption).
    pub fn marginal_weights(&self, v: VertexId, config: &[Spin]) -> Vec<f64> {
        let mut weights = vec![0.0; self.q];
        self.marginal_weights_into(v, config, &mut weights);
        weights
    }

    /// In-place variant of [`Mrf::marginal_weights`] for hot loops.
    ///
    /// # Panics
    /// Panics if `out.len() != q`.
    pub fn marginal_weights_into(&self, v: VertexId, config: &[Spin], out: &mut [f64]) {
        self.marginal_weights_with(v, |u| config[u.index()], out);
    }

    /// [`Mrf::marginal_weights_into`] over an arbitrary spin accessor —
    /// the slice variant delegates here, so any representation (flat
    /// slice, packed slab, sharded halo) sees bit-identical weights.
    ///
    /// # Panics
    /// Panics if `out.len() != q`.
    pub fn marginal_weights_with(
        &self,
        v: VertexId,
        spin_of: impl Fn(VertexId) -> Spin,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), self.q, "output buffer must have length q");
        let b = self.vertex_activity(v);
        for c in 0..self.q {
            out[c] = b.get(c as Spin);
        }
        for (e, u) in self.graph.incident_edges(v) {
            let a = self.edge_activity(e);
            let xu = spin_of(u);
            for (c, w) in out.iter_mut().enumerate() {
                if *w > 0.0 {
                    *w *= a.get(c as Spin, xu);
                }
            }
        }
    }

    /// Samples from the conditional marginal µ_v(· | X_Γ(v)) — one
    /// heat-bath (Glauber) update.
    ///
    /// Returns `None` if the marginal is not well-defined (all weights
    /// zero), which the paper rules out by assumption; callers treat this
    /// as an invariant violation.
    pub fn sample_marginal(
        &self,
        v: VertexId,
        config: &[Spin],
        rng: &mut impl Rng,
    ) -> Option<Spin> {
        let weights = self.marginal_weights(v, config);
        sample_weighted(&weights, rng)
    }

    /// The LocalMetropolis pass probability of edge `e` (Algorithm 2 line
    /// 6): `Ã(σ_u, σ_v) · Ã(X_u, σ_v) · Ã(σ_u, X_v)`.
    #[inline]
    pub fn pass_probability(&self, e: EdgeId, xu: Spin, xv: Spin, su: Spin, sv: Spin) -> f64 {
        let a = self.edge_activity(e);
        a.normalized(su, sv) * a.normalized(xu, sv) * a.normalized(su, xv)
    }

    /// Whether every edge activity is a hard constraint (entries ∈ {0, max}),
    /// making every LocalMetropolis coin deterministic.
    pub fn all_hard_constraints(&self) -> bool {
        self.edge_palette.iter().all(|a| a.is_hard_constraint())
    }

    /// Exhaustively checks the paper's condition (6) — the well-definedness
    /// assumption for LocalMetropolis from *any* (possibly infeasible)
    /// start: for all `X ∈ [q]^V` and all `v`,
    /// `Σ_i b_v(i) Π_{u∈Γ(v)} [ A_uv(i, X_u) Σ_j b_u(j) A_uv(X_v, j) A_uv(i, j) ] > 0`.
    ///
    /// Exponential in `n`; intended for the small instances of the exact
    /// experiments.
    ///
    /// # Panics
    /// Panics if `q^n` exceeds `2^24` (guard against runaway enumeration).
    pub fn condition6_holds_exhaustive(&self) -> bool {
        let n = self.num_vertices();
        let total = crate::gibbs::checked_pow(self.q, n).expect("q^n too large for enumeration");
        assert!(total <= 1 << 24, "q^n too large for exhaustive check");
        let mut config = vec![0 as Spin; n];
        for idx in 0..total {
            crate::gibbs::decode_config(idx, self.q, &mut config);
            for v in self.graph.vertices() {
                let mut outer = 0.0;
                for i in 0..self.q as Spin {
                    let mut term = self.vertex_activity(v).get(i);
                    if term == 0.0 {
                        continue;
                    }
                    for (e, u) in self.graph.incident_edges(v) {
                        let a = self.edge_activity(e);
                        let mut inner = 0.0;
                        for j in 0..self.q as Spin {
                            inner += self.vertex_activity(u).get(j)
                                * a.get(config[v.index()], j)
                                * a.get(i, j);
                        }
                        term *= a.get(i, config[u.index()]) * inner;
                        if term == 0.0 {
                            break;
                        }
                    }
                    outer += term;
                }
                if outer <= 0.0 {
                    return false;
                }
            }
        }
        true
    }

    /// Exhaustively checks that the Glauber marginal (eq. 2) is
    /// well-defined from every configuration in `[q]^V` (the paper's
    /// assumption for LubyGlauber started from arbitrary states).
    ///
    /// # Panics
    /// Panics if `q^n` exceeds `2^24`.
    pub fn marginals_well_defined_exhaustive(&self) -> bool {
        let n = self.num_vertices();
        let total = crate::gibbs::checked_pow(self.q, n).expect("q^n too large for enumeration");
        assert!(total <= 1 << 24, "q^n too large for exhaustive check");
        let mut config = vec![0 as Spin; n];
        for idx in 0..total {
            crate::gibbs::decode_config(idx, self.q, &mut config);
            for v in self.graph.vertices() {
                let w = self.marginal_weights(v, &config);
                if w.iter().sum::<f64>() <= 0.0 {
                    return false;
                }
            }
        }
        true
    }

    fn check_config(&self, config: &[Spin]) {
        assert_eq!(
            config.len(),
            self.num_vertices(),
            "configuration length must equal n"
        );
        debug_assert!(
            config.iter().all(|&c| (c as usize) < self.q),
            "spin out of range"
        );
    }
}

/// Clones the model into a fresh shared handle.
///
/// Chains and samplers *own* their model as an `Arc<Mrf>` (so they are
/// `'static` and can be served concurrently); this impl lets borrowed
/// call sites keep compiling by cloning into a new allocation. The
/// graph itself is already behind an `Arc` and is shared, not copied —
/// only the O(n + m) activity-index tables are duplicated. Hot paths
/// that build many chains from one model should hold an `Arc<Mrf>` and
/// pass `Arc::clone` instead.
impl From<&Mrf> for std::sync::Arc<Mrf> {
    fn from(mrf: &Mrf) -> Self {
        Arc::new(mrf.clone())
    }
}

/// Samples an index with probability proportional to `weights`; `None` if
/// all weights are zero (or the sum is not positive).
pub fn sample_weighted(weights: &[f64], rng: &mut impl Rng) -> Option<u32> {
    let total: f64 = weights.iter().sum();
    if !(total > 0.0) {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    for (c, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 && w > 0.0 {
            return Some(c as u32);
        }
    }
    weights.iter().rposition(|&w| w > 0.0).map(|c| c as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use lsl_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coloring_weights() {
        let mrf = models::proper_coloring(generators::path(3), 3);
        assert_eq!(mrf.weight(&[0, 1, 0]), 1.0);
        assert_eq!(mrf.weight(&[0, 0, 1]), 0.0);
        assert!(mrf.log_weight(&[0, 0, 1]).is_infinite());
        assert_eq!(mrf.log_weight(&[0, 1, 2]), 0.0);
    }

    #[test]
    fn hardcore_weights_count_occupied() {
        let mrf = models::hardcore(generators::path(3), 2.0);
        // Independent set {0, 2}: weight λ².
        assert_eq!(mrf.weight(&[1, 0, 1]), 4.0);
        assert_eq!(mrf.weight(&[1, 1, 0]), 0.0);
        assert_eq!(mrf.weight(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn marginal_matches_eq2_for_coloring() {
        // Path 0-1-2, q = 3, neighbors of 1 colored 0 and 2:
        // available color for v1 is only {1}.
        let mrf = models::proper_coloring(generators::path(3), 3);
        let w = mrf.marginal_weights(VertexId(1), &[0, 0, 2]);
        assert_eq!(w, vec![0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            mrf.sample_marginal(VertexId(1), &[0, 0, 2], &mut rng),
            Some(1)
        );
    }

    #[test]
    fn marginal_none_when_no_color_available() {
        // Star with 3 leaves colored 0,1,2 leaves nothing for the hub at q=3.
        let mrf = models::proper_coloring(generators::star(3), 3);
        let w = mrf.marginal_weights(VertexId(0), &[0, 0, 1, 2]);
        assert_eq!(w.iter().sum::<f64>(), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            mrf.sample_marginal(VertexId(0), &[0, 0, 1, 2], &mut rng),
            None
        );
    }

    #[test]
    fn pass_probability_truth_table() {
        let mrf = models::proper_coloring(generators::path(2), 4);
        let e = EdgeId(0);
        let (xu, xv) = (0, 1);
        // Proposals that conflict with nothing pass with probability 1.
        assert_eq!(mrf.pass_probability(e, xu, xv, 2, 3), 1.0);
        // Same proposals on both endpoints: rule 2.
        assert_eq!(mrf.pass_probability(e, xu, xv, 2, 2), 0.0);
        // u proposes v's current color: Ã(σu, Xv) = 0 — rule 3/1 symmetric.
        assert_eq!(mrf.pass_probability(e, xu, xv, 1, 3), 0.0);
        // v proposes u's current color.
        assert_eq!(mrf.pass_probability(e, xu, xv, 2, 0), 0.0);
    }

    #[test]
    fn condition6_for_colorings() {
        // Paper: for colorings condition (6) holds as long as q ≥ Δ+1, q ≥ 3.
        let g = generators::path(3); // Δ = 2
        let ok = models::proper_coloring(g.clone(), 3);
        assert!(ok.condition6_holds_exhaustive());
        let too_few = models::proper_coloring(g, 2); // q = 2 < 3
        assert!(!too_few.condition6_holds_exhaustive());
    }

    #[test]
    fn marginals_well_defined_threshold() {
        // q ≥ Δ+1 needed for well-defined marginals from arbitrary states.
        let g = generators::star(3); // Δ = 3
        assert!(models::proper_coloring(g.clone(), 4).marginals_well_defined_exhaustive());
        assert!(!models::proper_coloring(g, 3).marginals_well_defined_exhaustive());
    }

    #[test]
    fn per_vertex_and_per_edge_overrides() {
        let g = generators::path(2);
        let mut mrf = models::proper_coloring(g, 3);
        mrf.set_vertex_activity(VertexId(0), VertexActivity::list_indicator(3, &[1]));
        assert_eq!(mrf.weight(&[0, 1]), 0.0); // color 0 not in v0's list
        assert_eq!(mrf.weight(&[1, 0]), 1.0);
        mrf.set_edge_activity(EdgeId(0), EdgeActivity::uniform(3));
        assert_eq!(mrf.weight(&[1, 1]), 1.0); // constraint dropped
    }

    #[test]
    fn sample_weighted_edge_cases() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(sample_weighted(&[0.0, 0.0], &mut rng), None);
        assert_eq!(sample_weighted(&[0.0, 5.0, 0.0], &mut rng), Some(1));
        let got = sample_weighted(&[1.0, 1.0], &mut rng).unwrap();
        assert!(got < 2);
    }

    #[test]
    fn all_hard_constraints_flags() {
        assert!(models::proper_coloring(generators::path(2), 3).all_hard_constraints());
        assert!(models::hardcore(generators::path(2), 1.5).all_hard_constraints());
        assert!(!models::ising(generators::path(2), 0.5).all_hard_constraints());
    }
}
