//! Exact enumeration of Gibbs distributions on small instances.
//!
//! Every correctness experiment in this workspace is anchored on exact
//! ground truth: the full Gibbs vector over `[q]^V`, computed by brute
//! force. Configurations are indexed by the base-`q` number
//! `idx = Σ_v σ_v · q^v`, so distribution vectors align with transition
//! kernels built elsewhere.

use crate::model::{Mrf, Spin};
use lsl_graph::VertexId;
use rand::{Rng, RngExt};

/// `q^n` with overflow checking; `None` if it does not fit in `usize`.
pub fn checked_pow(q: usize, n: usize) -> Option<usize> {
    let mut acc: usize = 1;
    for _ in 0..n {
        acc = acc.checked_mul(q)?;
    }
    Some(acc)
}

/// Decodes configuration index `idx` into `out` (base-`q` digits,
/// vertex 0 = least significant digit).
///
/// # Panics
/// Panics in debug builds if a digit overflows `out`.
#[inline]
pub fn decode_config(idx: usize, q: usize, out: &mut [Spin]) {
    let mut rest = idx;
    for slot in out.iter_mut() {
        *slot = (rest % q) as Spin;
        rest /= q;
    }
    debug_assert_eq!(rest, 0, "index out of range for configuration space");
}

/// Encodes a configuration into its index (inverse of [`decode_config`]).
#[inline]
pub fn encode_config(config: &[Spin], q: usize) -> usize {
    let mut idx = 0usize;
    for &c in config.iter().rev() {
        idx = idx * q + c as usize;
    }
    idx
}

/// Exact enumeration of an MRF's Gibbs distribution.
///
/// # Example
/// ```
/// use lsl_graph::generators;
/// use lsl_mrf::{models, gibbs::Enumeration};
///
/// let mrf = models::uniform_independent_set(generators::path(3));
/// let exact = Enumeration::new(&mrf).unwrap();
/// assert_eq!(exact.num_feasible(), 5); // {}, {0}, {1}, {2}, {0,2}
/// ```
#[derive(Clone, Debug)]
pub struct Enumeration {
    q: usize,
    n: usize,
    /// Unnormalized weights per configuration index.
    weights: Vec<f64>,
    z: f64,
}

/// Maximum number of configurations [`Enumeration::new`] will materialize.
pub const MAX_STATES: usize = 1 << 24;

impl Enumeration {
    /// Enumerates all `q^n` configurations of `mrf`.
    ///
    /// # Errors
    /// Returns an error if `q^n` exceeds [`MAX_STATES`] (or overflows), or
    /// if the model has no feasible configuration (Z = 0).
    pub fn new(mrf: &Mrf) -> Result<Self, String> {
        let q = mrf.q();
        let n = mrf.num_vertices();
        let total = checked_pow(q, n)
            .filter(|&t| t <= MAX_STATES)
            .ok_or_else(|| format!("state space q^n = {q}^{n} too large to enumerate"))?;
        let mut weights = vec![0.0; total];
        let mut config = vec![0 as Spin; n];
        let mut z = 0.0;
        for (idx, w) in weights.iter_mut().enumerate() {
            decode_config(idx, q, &mut config);
            *w = mrf.weight(&config);
            z += *w;
        }
        if z <= 0.0 {
            return Err("model has no feasible configuration (Z = 0)".into());
        }
        Ok(Enumeration { q, n, weights, z })
    }

    /// Domain size `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of configurations `q^n`.
    pub fn num_states(&self) -> usize {
        self.weights.len()
    }

    /// The partition function `Z = Σ_σ w(σ)`.
    pub fn partition_function(&self) -> f64 {
        self.z
    }

    /// Number of feasible configurations (`w(σ) > 0`). For uniform models
    /// this is the count of CSP solutions (e.g. proper colorings).
    pub fn num_feasible(&self) -> usize {
        self.weights.iter().filter(|&&w| w > 0.0).count()
    }

    /// Gibbs probability of the configuration with index `idx`.
    #[inline]
    pub fn probability_of_index(&self, idx: usize) -> f64 {
        self.weights[idx] / self.z
    }

    /// Gibbs probability of a configuration.
    pub fn probability(&self, config: &[Spin]) -> f64 {
        self.probability_of_index(encode_config(config, self.q))
    }

    /// The full Gibbs distribution as a dense vector over configuration
    /// indices (sums to 1).
    pub fn distribution(&self) -> Vec<f64> {
        self.weights.iter().map(|&w| w / self.z).collect()
    }

    /// Exact marginal distribution of vertex `v` (length-`q` vector).
    pub fn marginal(&self, v: VertexId) -> Vec<f64> {
        let mut out = vec![0.0; self.q];
        let stride = checked_pow(self.q, v.index()).expect("within bounds");
        for (idx, &w) in self.weights.iter().enumerate() {
            out[(idx / stride) % self.q] += w;
        }
        for x in &mut out {
            *x /= self.z;
        }
        out
    }

    /// Exact joint marginal of a pair `(u, v)` as a row-major `q × q`
    /// matrix: `out[a * q + b] = Pr[σ_u = a, σ_v = b]`.
    ///
    /// # Panics
    /// Panics if `u == v`.
    pub fn pair_marginal(&self, u: VertexId, v: VertexId) -> Vec<f64> {
        assert_ne!(u, v, "pair marginal needs distinct vertices");
        let mut out = vec![0.0; self.q * self.q];
        let su = checked_pow(self.q, u.index()).expect("within bounds");
        let sv = checked_pow(self.q, v.index()).expect("within bounds");
        for (idx, &w) in self.weights.iter().enumerate() {
            let a = (idx / su) % self.q;
            let b = (idx / sv) % self.q;
            out[a * self.q + b] += w;
        }
        for x in &mut out {
            *x /= self.z;
        }
        out
    }

    /// Exact conditional marginal of `v` given pinned spins
    /// `pins = [(vertex, spin), ...]`; `None` if the conditioning event has
    /// zero probability.
    pub fn conditional_marginal(&self, v: VertexId, pins: &[(VertexId, Spin)]) -> Option<Vec<f64>> {
        let mut out = vec![0.0; self.q];
        let sv = checked_pow(self.q, v.index()).expect("within bounds");
        let mut mass = 0.0;
        'outer: for (idx, &w) in self.weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            for &(u, s) in pins {
                let su = checked_pow(self.q, u.index()).expect("within bounds");
                if (idx / su) % self.q != s as usize {
                    continue 'outer;
                }
            }
            out[(idx / sv) % self.q] += w;
            mass += w;
        }
        if mass <= 0.0 {
            return None;
        }
        for x in &mut out {
            *x /= mass;
        }
        Some(out)
    }

    /// Draws an exact Gibbs sample (by inverse CDF over the enumeration).
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<Spin> {
        let mut target = rng.random::<f64>() * self.z;
        let mut pick = self.weights.len() - 1;
        for (idx, &w) in self.weights.iter().enumerate() {
            target -= w;
            if target < 0.0 && w > 0.0 {
                pick = idx;
                break;
            }
        }
        let mut config = vec![0 as Spin; self.n];
        decode_config(pick, self.q, &mut config);
        config
    }

    /// Iterator over `(index, probability)` of feasible configurations.
    pub fn feasible(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0.0)
            .map(|(i, &w)| (i, w / self.z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use lsl_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encode_decode_roundtrip() {
        let q = 3;
        let mut buf = vec![0; 4];
        for idx in 0..checked_pow(q, 4).unwrap() {
            decode_config(idx, q, &mut buf);
            assert_eq!(encode_config(&buf, q), idx);
        }
    }

    #[test]
    fn checked_pow_overflow() {
        assert_eq!(checked_pow(10, 2), Some(100));
        assert_eq!(checked_pow(2, 0), Some(1));
        assert_eq!(checked_pow(usize::MAX, 2), None);
    }

    #[test]
    fn counts_proper_colorings() {
        // Chromatic polynomial checks.
        // Path P_n: q (q-1)^(n-1).
        let p4 = Enumeration::new(&models::proper_coloring(generators::path(4), 3)).unwrap();
        assert_eq!(p4.num_feasible(), 3 * 2 * 2 * 2);
        // Cycle C_n: (q-1)^n + (-1)^n (q-1).
        let c5 = Enumeration::new(&models::proper_coloring(generators::cycle(5), 3)).unwrap();
        assert_eq!(c5.num_feasible(), 32 - 2);
        // Triangle with q = 3: 3! = 6.
        let k3 = Enumeration::new(&models::proper_coloring(generators::complete(3), 3)).unwrap();
        assert_eq!(k3.num_feasible(), 6);
    }

    #[test]
    fn counts_independent_sets() {
        // Independent sets of P_n follow Fibonacci: |IS(P_n)| = F(n+2).
        for (n, expect) in [(1usize, 2usize), (2, 3), (3, 5), (4, 8), (5, 13)] {
            let mrf = models::uniform_independent_set(generators::path(n));
            let e = Enumeration::new(&mrf).unwrap();
            assert_eq!(e.num_feasible(), expect, "P_{n}");
        }
    }

    #[test]
    fn hardcore_partition_function() {
        // P_2: Z = 1 + λ + λ = 1 + 2λ.
        let mrf = models::hardcore(generators::path(2), 3.0);
        let e = Enumeration::new(&mrf).unwrap();
        assert!((e.partition_function() - 7.0).abs() < 1e-12);
        assert!((e.probability(&[0, 0]) - 1.0 / 7.0).abs() < 1e-12);
        assert!((e.probability(&[1, 0]) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_sum_to_one_and_match_pairs() {
        let mrf = models::proper_coloring(generators::cycle(4), 3);
        let e = Enumeration::new(&mrf).unwrap();
        for v in mrf.graph().vertices() {
            let m = e.marginal(v);
            assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            // Symmetry: every color equally likely.
            for &p in &m {
                assert!((p - 1.0 / 3.0).abs() < 1e-12);
            }
        }
        let pair = e.pair_marginal(VertexId(0), VertexId(1));
        assert!((pair.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Adjacent vertices never share a color.
        for a in 0..3 {
            assert_eq!(pair[a * 3 + a], 0.0);
        }
    }

    #[test]
    fn conditional_marginal_consistency() {
        let mrf = models::proper_coloring(generators::path(3), 3);
        let e = Enumeration::new(&mrf).unwrap();
        // Pin the middle vertex: ends become independent uniform over
        // the remaining 2 colors.
        let cond = e
            .conditional_marginal(VertexId(0), &[(VertexId(1), 2)])
            .unwrap();
        assert!((cond[0] - 0.5).abs() < 1e-12);
        assert!((cond[1] - 0.5).abs() < 1e-12);
        assert_eq!(cond[2], 0.0);
        // Impossible pin.
        let mrf2 = models::uniform_independent_set(generators::path(2));
        let e2 = Enumeration::new(&mrf2).unwrap();
        assert!(
            e2.conditional_marginal(VertexId(0), &[(VertexId(0), 1), (VertexId(1), 1)])
                .is_none()
                || e2
                    .conditional_marginal(VertexId(1), &[(VertexId(0), 1)])
                    .unwrap()[1]
                    == 0.0
        );
    }

    #[test]
    fn exact_sampler_matches_distribution() {
        let mrf = models::uniform_independent_set(generators::path(3));
        let e = Enumeration::new(&mrf).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 50_000;
        let mut counts = vec![0usize; e.num_states()];
        for _ in 0..trials {
            let s = e.sample(&mut rng);
            counts[encode_config(&s, 2)] += 1;
        }
        for (idx, p) in e.feasible() {
            let emp = counts[idx] as f64 / trials as f64;
            assert!((emp - p).abs() < 0.01, "idx {idx}: emp {emp} vs {p}");
        }
        // Infeasible states never sampled.
        for (idx, &c) in counts.iter().enumerate() {
            if e.probability_of_index(idx) == 0.0 {
                assert_eq!(c, 0, "sampled infeasible state {idx}");
            }
        }
    }

    #[test]
    fn rejects_oversized_spaces() {
        let g = generators::path(40);
        let mrf = models::proper_coloring(g, 5);
        assert!(Enumeration::new(&mrf).is_err());
    }
}
