//! Dobrushin influence: Definition 3.1 and Definition 3.2 of the paper.
//!
//! The influence `ρ_{i,j}` of `j` on `i` is the worst-case total-variation
//! change of the conditional marginal `µ_i^σ = µ_i(·|σ_Γ(i))` over pairs of
//! feasible configurations differing only at `j`. Dobrushin's condition —
//! total influence `α = max_i Σ_j ρ_{i,j} < 1` — is the mixing hypothesis
//! of Theorem 3.2 (LubyGlauber).

use crate::gibbs::{checked_pow, decode_config};
use crate::model::{Mrf, Spin};
use lsl_graph::Graph;

/// The exact influence matrix `ρ` by exhaustive enumeration over feasible
/// configuration pairs (exponential in `n`; for small ground-truth
/// instances only).
///
/// Entry `[i][j]` is `ρ_{i,j} = max_{(σ,τ) ∈ S_j} dTV(µ_i^σ, µ_i^τ)`.
///
/// # Panics
/// Panics if `q^n > 2^20`.
pub fn influence_matrix_exhaustive(mrf: &Mrf) -> Vec<Vec<f64>> {
    let n = mrf.num_vertices();
    let q = mrf.q();
    let total = checked_pow(q, n).expect("q^n overflow");
    assert!(
        total <= 1 << 20,
        "state space too large for exhaustive influence"
    );
    let mut rho = vec![vec![0.0; n]; n];
    let mut sigma = vec![0 as Spin; n];
    let mut tau = vec![0 as Spin; n];
    // Reused marginal buffers keep the q^n-sized enumeration loop
    // allocation-free.
    let mut wi_sigma = vec![0.0; q];
    let mut wi_tau = vec![0.0; q];
    for idx in 0..total {
        decode_config(idx, q, &mut sigma);
        if !mrf.is_feasible(&sigma) {
            continue;
        }
        // For each disagreeing vertex j and alternative spin s.
        for j in 0..n {
            let original = sigma[j];
            for s in 0..q as Spin {
                if s == original {
                    continue;
                }
                tau.copy_from_slice(&sigma);
                tau[j] = s;
                if !mrf.is_feasible(&tau) {
                    continue;
                }
                for i in 0..n {
                    if i == j {
                        continue;
                    }
                    let v = lsl_graph::VertexId(i as u32);
                    mrf.marginal_weights_into(v, &sigma, &mut wi_sigma);
                    mrf.marginal_weights_into(v, &tau, &mut wi_tau);
                    if let Some(tv) = tv_of_weights(&wi_sigma, &wi_tau) {
                        if tv > rho[i][j] {
                            rho[i][j] = tv;
                        }
                    }
                }
            }
        }
    }
    rho
}

/// Total variation distance between two *unnormalized* weight vectors;
/// `None` if either normalizes to zero.
fn tv_of_weights(a: &[f64], b: &[f64]) -> Option<f64> {
    let (sa, sb) = (a.iter().sum::<f64>(), b.iter().sum::<f64>());
    if !(sa > 0.0 && sb > 0.0) {
        return None;
    }
    Some(
        0.5 * a
            .iter()
            .zip(b)
            .map(|(x, y)| (x / sa - y / sb).abs())
            .sum::<f64>(),
    )
}

/// Total influence `α = max_i Σ_j ρ_{i,j}` (Definition 3.2).
pub fn total_influence(rho: &[Vec<f64>]) -> f64 {
    rho.iter()
        .map(|row| row.iter().sum::<f64>())
        .fold(0.0, f64::max)
}

/// The closed-form total influence bound for (list) colorings (paper
/// §3.2): `α = max_v d_v / (q_v − d_v)`, where `q_v` is the list size.
///
/// Dobrushin's condition `α < 1` therefore holds when `q_v > 2 d_v` for
/// every `v` — e.g. uniform `q`-colorings with `q ≥ 2Δ + 1`.
///
/// # Panics
/// Panics if some `q_v <= d_v` (the marginal can be ill-defined there).
pub fn coloring_total_influence(graph: &Graph, list_sizes: &[usize]) -> f64 {
    assert_eq!(list_sizes.len(), graph.num_vertices());
    graph
        .vertices()
        .map(|v| {
            let d = graph.degree(v);
            let qv = list_sizes[v.index()];
            assert!(qv > d, "vertex {v} has list size {qv} <= degree {d}");
            d as f64 / (qv - d) as f64
        })
        .fold(0.0, f64::max)
}

/// Uniform-coloring shorthand for [`coloring_total_influence`] with all
/// lists of size `q`.
pub fn uniform_coloring_total_influence(graph: &Graph, q: usize) -> f64 {
    coloring_total_influence(graph, &vec![q; graph.num_vertices()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use lsl_graph::generators;

    #[test]
    fn influence_zero_for_distant_vertices() {
        // On a path the influence matrix of an MRF is supported on
        // adjacency: ρ_{i,j} = 0 unless i ~ j (conditional marginal depends
        // only on neighbors).
        let mrf = models::proper_coloring(generators::path(4), 4);
        let rho = influence_matrix_exhaustive(&mrf);
        for i in 0..4 {
            for j in 0..4 {
                let adjacent = (i as i32 - j as i32).abs() == 1;
                if !adjacent {
                    assert_eq!(rho[i][j], 0.0, "ρ[{i}][{j}] should vanish");
                } else {
                    assert!(rho[i][j] > 0.0, "ρ[{i}][{j}] should be positive");
                }
            }
        }
    }

    #[test]
    fn exhaustive_influence_bounded_by_formula() {
        // The analytic d/(q-d) bound dominates the exhaustive value.
        for q in [3usize, 4, 5] {
            let g = generators::path(4);
            let mrf = models::proper_coloring(g.clone(), q);
            let rho = influence_matrix_exhaustive(&mrf);
            let alpha = total_influence(&rho);
            let bound = uniform_coloring_total_influence(&g, q);
            assert!(
                alpha <= bound + 1e-12,
                "q = {q}: exhaustive {alpha} > bound {bound}"
            );
        }
    }

    #[test]
    fn coloring_influence_formula() {
        // Cycle: all degrees 2, so α = 2/(q-2).
        let g = generators::cycle(6);
        assert!((uniform_coloring_total_influence(&g, 5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((uniform_coloring_total_influence(&g, 6) - 0.5).abs() < 1e-12);
        // Dobrushin satisfied iff q >= 2Δ+1 = 5.
        assert!(uniform_coloring_total_influence(&g, 5) < 1.0);
    }

    #[test]
    fn list_coloring_influence_uses_list_sizes() {
        let g = generators::star(3); // hub degree 3, leaves degree 1
        let alpha = coloring_total_influence(&g, &[7, 2, 2, 2]);
        // hub: 3/(7-3) = 0.75; leaves: 1/(2-1) = 1.
        assert!((alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "list size")]
    fn influence_formula_rejects_tiny_lists() {
        let g = generators::star(3);
        coloring_total_influence(&g, &[3, 2, 2, 2]);
    }

    #[test]
    fn hardcore_influence_small_lambda_mixes() {
        // For λ small the hardcore influence is small: α < 1 on a path.
        let mrf = models::hardcore(generators::path(4), 0.2);
        let rho = influence_matrix_exhaustive(&mrf);
        assert!(total_influence(&rho) < 1.0);
    }
}
