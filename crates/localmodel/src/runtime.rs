//! The synchronous executor: rounds, delivery, and accounting.

use crate::program::{Outbox, VertexContext, VertexProgram};
use crate::rng::VertexRng;
use lsl_graph::{Graph, VertexId};
use std::sync::Arc;

/// Message-complexity statistics of a protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Total bits delivered.
    pub total_bits: usize,
    /// Largest single message, in bits — the quantity behind the paper's
    /// "each message is of O(log n) bits" remark.
    pub max_message_bits: usize,
}

/// The result of running a protocol: per-vertex outputs plus statistics.
#[derive(Clone, Debug)]
pub struct Run<O> {
    /// Output of each vertex, indexed by vertex id.
    pub outputs: Vec<O>,
    /// Communication statistics.
    pub stats: RoundStats,
}

/// A LOCAL-model simulator bound to a network and a master seed.
///
/// The master seed determines every vertex's private stream `Ψ_v`
/// deterministically, so a run is reproducible from `(graph, seed, T)`.
#[derive(Clone, Debug)]
pub struct Simulator {
    graph: Arc<Graph>,
    master_seed: u64,
}

impl Simulator {
    /// Creates a simulator for `graph` with the given master seed.
    pub fn new(graph: Arc<Graph>, master_seed: u64) -> Self {
        Simulator { graph, master_seed }
    }

    /// The network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Runs a parameterless program `P` for `rounds` synchronous rounds.
    pub fn run<P: VertexProgram<Config = ()>>(&self, rounds: usize) -> Run<P::Output> {
        self.run_with::<P>(rounds, &())
    }

    /// Runs program `P` with shared parameters `config` for `rounds`
    /// synchronous rounds.
    pub fn run_with<P: VertexProgram>(&self, rounds: usize, config: &P::Config) -> Run<P::Output> {
        let g = &*self.graph;
        let n = g.num_vertices();
        let mut rngs: Vec<VertexRng> = (0..n)
            .map(|v| VertexRng::for_vertex(self.master_seed, v as u32))
            .collect();
        let mut programs: Vec<P> = (0..n)
            .map(|v| {
                let ctx = VertexContext::new(g, VertexId(v as u32));
                P::init(config, &ctx, &mut rngs[v])
            })
            .collect();

        // inboxes[v][p]: message waiting at vertex v's port p.
        let mut inboxes: Vec<Vec<Option<P::Message>>> =
            g.vertices().map(|v| vec![None; g.degree(v)]).collect();
        // Port lookup: for vertex v's port p carrying edge e to neighbor u,
        // find u's port index for edge e (parallel edges map to distinct
        // ports because ports are keyed by edge id).
        let reverse_port: Vec<Vec<usize>> = g
            .vertices()
            .map(|v| {
                g.incident_edges(v)
                    .map(|(e, u)| {
                        g.incident_edges(u)
                            .position(|(e2, _)| e2 == e)
                            .expect("edge is incident to both endpoints")
                    })
                    .collect()
            })
            .collect();

        let mut stats = RoundStats::default();
        for _ in 0..rounds {
            stats.rounds += 1;
            for slot in inboxes.iter_mut().flat_map(|row| row.iter_mut()) {
                *slot = None;
            }
            // Phase 1: everyone sends based on pre-round state.
            for v in 0..n {
                let ctx = VertexContext::new(g, VertexId(v as u32));
                let outbox = programs[v].send(config, &ctx, &mut rngs[v]);
                match outbox {
                    Outbox::Silent => {}
                    Outbox::Broadcast(msg) => {
                        for (p, (_, u)) in g.incident_edges(VertexId(v as u32)).enumerate() {
                            deliver(&mut inboxes, &mut stats, u, reverse_port[v][p], msg.clone());
                        }
                    }
                    Outbox::PerPort(msgs) => {
                        assert_eq!(
                            msgs.len(),
                            g.degree(VertexId(v as u32)),
                            "per-port outbox must cover every port"
                        );
                        for (p, ((_, u), msg)) in
                            g.incident_edges(VertexId(v as u32)).zip(msgs).enumerate()
                        {
                            if let Some(msg) = msg {
                                deliver(&mut inboxes, &mut stats, u, reverse_port[v][p], msg);
                            }
                        }
                    }
                }
            }
            // Phase 2: everyone processes this round's mail.
            for v in 0..n {
                let ctx = VertexContext::new(g, VertexId(v as u32));
                // Temporarily take the inbox to satisfy the borrow checker.
                let inbox = std::mem::take(&mut inboxes[v]);
                programs[v].receive(config, &ctx, &inbox, &mut rngs[v]);
                inboxes[v] = inbox;
            }
        }

        Run {
            outputs: programs.iter().map(P::output).collect(),
            stats,
        }
    }
}

fn deliver<M: crate::program::MessageSize>(
    inboxes: &mut [Vec<Option<M>>],
    stats: &mut RoundStats,
    to: VertexId,
    port: usize,
    msg: M,
) {
    stats.messages += 1;
    let bits = msg.bits();
    stats.total_bits += bits;
    stats.max_message_bits = stats.max_message_bits.max(bits);
    debug_assert!(
        inboxes[to.index()][port].is_none(),
        "two messages delivered to one port in one round"
    );
    inboxes[to.index()][port] = Some(msg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::MessageSize;
    use lsl_graph::generators;

    /// Flood the maximum vertex id.
    struct MaxId(u32);

    impl VertexProgram for MaxId {
        type Message = u32;
        type Output = u32;
        type Config = ();

        fn init(_config: &(), ctx: &VertexContext<'_>, _rng: &mut VertexRng) -> Self {
            MaxId(ctx.vertex().0)
        }

        fn send(
            &mut self,
            _config: &(),
            _ctx: &VertexContext<'_>,
            _rng: &mut VertexRng,
        ) -> Outbox<u32> {
            Outbox::broadcast(self.0)
        }

        fn receive(
            &mut self,
            _config: &(),
            _ctx: &VertexContext<'_>,
            inbox: &[Option<u32>],
            _rng: &mut VertexRng,
        ) {
            for msg in inbox.iter().flatten() {
                self.0 = self.0.max(*msg);
            }
        }

        fn output(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn information_spreads_at_speed_one() {
        let g = generators::path(7);
        let sim = Simulator::new(g.into(), 0);
        let run = sim.run::<MaxId>(3);
        // v0: B_3(v0) = {0..3} so it sees exactly max id 3.
        assert_eq!(run.outputs[0], 3);
        // v5 is adjacent to 6: sees it after one round already.
        assert_eq!(run.outputs[5], 6);
        // Zero rounds: outputs are the initial states.
        let run0 = sim.run::<MaxId>(0);
        assert_eq!(run0.outputs, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(run0.stats.messages, 0);
    }

    #[test]
    fn exact_locality_horizon() {
        // A t-round protocol's output at v is a function of B_t(v): on a
        // path the flooded maximum is exactly the id at distance t.
        let g = generators::path(12);
        let sim = Simulator::new(g.into(), 0);
        for t in 0..6 {
            let run = sim.run::<MaxId>(t);
            let expect = t.min(11) as u32;
            assert_eq!(run.outputs[0], expect, "t = {t}");
        }
    }

    #[test]
    fn stats_accounting() {
        let g = generators::cycle(5);
        let sim = Simulator::new(g.into(), 0);
        let run = sim.run::<MaxId>(2);
        // Every vertex broadcasts on both ports each round: 10 messages
        // per round.
        assert_eq!(run.stats.rounds, 2);
        assert_eq!(run.stats.messages, 20);
        assert_eq!(run.stats.max_message_bits, 32);
        assert_eq!(run.stats.total_bits, 20 * 32);
    }

    #[test]
    fn deterministic_given_seed() {
        /// A program that outputs a random number influenced by neighbors.
        struct Noisy(u64);
        impl VertexProgram for Noisy {
            type Message = u64;
            type Output = u64;
            type Config = ();
            fn init(_config: &(), _ctx: &VertexContext<'_>, rng: &mut VertexRng) -> Self {
                use rand::RngExt;
                Noisy(rng.random())
            }
            fn send(
                &mut self,
                _config: &(),
                _ctx: &VertexContext<'_>,
                _rng: &mut VertexRng,
            ) -> Outbox<u64> {
                Outbox::broadcast(self.0)
            }
            fn receive(
                &mut self,
                _config: &(),
                _ctx: &VertexContext<'_>,
                inbox: &[Option<u64>],
                rng: &mut VertexRng,
            ) {
                use rand::RngExt;
                for m in inbox.iter().flatten() {
                    self.0 ^= m.rotate_left(13);
                }
                self.0 ^= rng.random::<u64>();
            }
            fn output(&self) -> u64 {
                self.0
            }
        }

        let g = std::sync::Arc::new(generators::torus(4, 4));
        let a = Simulator::new(Arc::clone(&g), 42).run::<Noisy>(5);
        let b = Simulator::new(Arc::clone(&g), 42).run::<Noisy>(5);
        assert_eq!(a.outputs, b.outputs);
        let c = Simulator::new(g, 43).run::<Noisy>(5);
        assert_ne!(a.outputs, c.outputs);
    }

    #[test]
    fn per_port_delivery() {
        /// The hub sends distinct messages per port; leaves record them.
        struct Sender(Vec<u32>);
        impl VertexProgram for Sender {
            type Message = u32;
            type Output = Vec<u32>;
            type Config = ();
            fn init(_config: &(), _ctx: &VertexContext<'_>, _rng: &mut VertexRng) -> Self {
                Sender(Vec::new())
            }
            fn send(
                &mut self,
                _config: &(),
                ctx: &VertexContext<'_>,
                _rng: &mut VertexRng,
            ) -> Outbox<u32> {
                if ctx.vertex().0 == 0 {
                    Outbox::PerPort((0..ctx.degree()).map(|p| Some(100 + p as u32)).collect())
                } else {
                    Outbox::silent()
                }
            }
            fn receive(
                &mut self,
                _config: &(),
                _ctx: &VertexContext<'_>,
                inbox: &[Option<u32>],
                _rng: &mut VertexRng,
            ) {
                self.0.extend(inbox.iter().flatten().copied());
            }
            fn output(&self) -> Vec<u32> {
                self.0.clone()
            }
        }

        // Star: hub 0 with 3 leaves; 1 round sends 3 distinct messages.
        let g = generators::star(3);
        let sim = Simulator::new(g.into(), 1);
        let run = sim.run::<Sender>(1);
        assert_eq!(run.stats.messages, 3);
        assert_eq!(run.stats.total_bits, 96);
        // Each leaf received its port-specific payload.
        let mut all: Vec<u32> = run.outputs[1..].iter().flatten().copied().collect();
        all.sort();
        assert_eq!(all, vec![100, 101, 102]);
    }

    #[test]
    fn parallel_edges_have_distinct_ports() {
        // Multigraph: two parallel edges; a broadcast sends 2 messages
        // and both arrive on distinct ports.
        struct CountIn(usize);
        impl VertexProgram for CountIn {
            type Message = bool;
            type Output = usize;
            type Config = ();
            fn init(_config: &(), _ctx: &VertexContext<'_>, _rng: &mut VertexRng) -> Self {
                CountIn(0)
            }
            fn send(
                &mut self,
                _config: &(),
                _ctx: &VertexContext<'_>,
                _rng: &mut VertexRng,
            ) -> Outbox<bool> {
                Outbox::broadcast(true)
            }
            fn receive(
                &mut self,
                _config: &(),
                _ctx: &VertexContext<'_>,
                inbox: &[Option<bool>],
                _rng: &mut VertexRng,
            ) {
                self.0 += inbox.iter().flatten().count();
            }
            fn output(&self) -> usize {
                self.0
            }
        }
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        let sim = Simulator::new(g.into(), 0);
        let run = sim.run::<CountIn>(1);
        // One round delivers both parallel-edge copies to each endpoint.
        assert_eq!(run.outputs, vec![2, 2]);
    }

    #[test]
    fn message_size_trait_object_safety() {
        // MessageSize composes through the Option/tuple impls used by the
        // sampling programs.
        let msg: (u32, Option<f64>) = (3, Some(0.5));
        assert_eq!(msg.bits(), 32 + 65);
    }
}
