//! The vertex-program abstraction: what one LOCAL processor runs.

use crate::rng::VertexRng;
use lsl_graph::{EdgeId, Graph, VertexId};

/// Exact bit size of a message, for the simulator's accounting.
///
/// The paper remarks that neither of its algorithms "abuses the power of
/// the LOCAL model": messages are `O(log n)` bits for polynomial `q`.
/// Implementations report the number of bits a reasonable encoding of the
/// message would use on the wire.
pub trait MessageSize {
    /// Number of bits in the encoded message.
    fn bits(&self) -> usize;
}

impl MessageSize for u32 {
    fn bits(&self) -> usize {
        32
    }
}

impl MessageSize for u64 {
    fn bits(&self) -> usize {
        64
    }
}

impl MessageSize for f64 {
    fn bits(&self) -> usize {
        64
    }
}

impl MessageSize for bool {
    fn bits(&self) -> usize {
        1
    }
}

impl MessageSize for () {
    fn bits(&self) -> usize {
        0
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn bits(&self) -> usize {
        self.0.bits() + self.1.bits()
    }
}

impl<A: MessageSize, B: MessageSize, C: MessageSize> MessageSize for (A, B, C) {
    fn bits(&self) -> usize {
        self.0.bits() + self.1.bits() + self.2.bits()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::bits)
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn bits(&self) -> usize {
        // Length prefix (practical encodings use ≤ 64 bits) + payload.
        64 + self.iter().map(MessageSize::bits).sum::<usize>()
    }
}

/// Read-only view a vertex has of its own position in the network.
///
/// Matches the paper's §2.1 knowledge model: a vertex knows its incident
/// edges and may know upper bounds on `Δ` and `log n`; it does *not* see
/// the rest of the topology.
#[derive(Clone, Copy, Debug)]
pub struct VertexContext<'a> {
    graph: &'a Graph,
    vertex: VertexId,
}

impl<'a> VertexContext<'a> {
    /// Builds the context of `vertex` (crate-internal; the runtime does
    /// this).
    pub(crate) fn new(graph: &'a Graph, vertex: VertexId) -> Self {
        VertexContext { graph, vertex }
    }

    /// This vertex's id (a unique identifier, as in the LOCAL model).
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.vertex)
    }

    /// Incident `(edge, neighbor)` pairs, in a fixed order; inboxes and
    /// outboxes are indexed by the *position* (port number) in this list.
    pub fn ports(&self) -> impl ExactSizeIterator<Item = (EdgeId, VertexId)> + 'a {
        self.graph.incident_edges(self.vertex)
    }

    /// Upper bound on the maximum degree Δ (global knowledge the paper
    /// grants to set running times).
    pub fn max_degree(&self) -> usize {
        self.graph.max_degree()
    }

    /// The number of vertices `n` (the paper grants knowledge of
    /// `log n`-scale quantities; we expose `n` itself for convenience —
    /// protocols must not use it for anything but setting parameters).
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }
}

/// Messages a vertex emits in one round, one optional message per port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outbox<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message on every port.
    Broadcast(M),
    /// Send a (possibly different, possibly absent) message per port; the
    /// vector is indexed by port position and must have length `degree`.
    PerPort(Vec<Option<M>>),
}

impl<M> Outbox<M> {
    /// Convenience constructor for the common broadcast case.
    pub fn broadcast(msg: M) -> Self {
        Outbox::Broadcast(msg)
    }

    /// Convenience constructor for silence.
    pub fn silent() -> Self {
        Outbox::Silent
    }
}

/// One processor's program in the LOCAL model.
///
/// The runtime drives the protocol as:
/// 1. `init` for every vertex (round 0, no messages yet);
/// 2. for each round `1..=T`: every vertex runs `send` (producing its
///    outbox from its current state), all messages are delivered, then
///    every vertex runs `receive` on the messages that just arrived;
/// 3. `output` extracts the result.
///
/// With this send-then-receive structure a `T`-round protocol's output at
/// `v` is a function of the initial states (hence private streams) in the
/// ball `B_T(v)` — exactly the information horizon of the LOCAL model and
/// the locality-of-randomness property (27) of the paper.
///
/// Determinism contract: a correct program touches randomness only through
/// the provided [`VertexRng`].
pub trait VertexProgram: Sized {
    /// Message type exchanged with neighbors.
    type Message: Clone + MessageSize;
    /// Final per-vertex output.
    type Output;
    /// Shared, read-only protocol parameters (e.g. the MRF instance whose
    /// local pieces are the "private inputs" of the paper's §2.3). Use `()`
    /// for parameterless protocols.
    type Config: ?Sized;

    /// Creates the vertex's initial state.
    fn init(config: &Self::Config, ctx: &VertexContext<'_>, rng: &mut VertexRng) -> Self;

    /// First phase of a round: emit messages based on the current state.
    fn send(
        &mut self,
        config: &Self::Config,
        ctx: &VertexContext<'_>,
        rng: &mut VertexRng,
    ) -> Outbox<Self::Message>;

    /// Second phase of a round: process the messages that arrived this
    /// round. `inbox[p]` holds the message on port `p`, if any.
    fn receive(
        &mut self,
        config: &Self::Config,
        ctx: &VertexContext<'_>,
        inbox: &[Option<Self::Message>],
        rng: &mut VertexRng,
    );

    /// The vertex's final output.
    fn output(&self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes() {
        assert_eq!(5u32.bits(), 32);
        assert_eq!((1u32, true).bits(), 33);
        assert_eq!((1u32, 2u64, false).bits(), 97);
        assert_eq!(Some(3u32).bits(), 33);
        assert_eq!(None::<u32>.bits(), 1);
        assert_eq!(vec![1u32, 2u32].bits(), 64 + 64);
        assert_eq!(().bits(), 0);
    }

    #[test]
    fn outbox_constructors() {
        let b: Outbox<u32> = Outbox::broadcast(7);
        assert_eq!(b, Outbox::Broadcast(7));
        let s: Outbox<u32> = Outbox::silent();
        assert_eq!(s, Outbox::Silent);
    }
}
