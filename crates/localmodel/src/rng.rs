//! Deterministic hierarchical randomness for LOCAL protocols.
//!
//! Every vertex `v` owns an independent randomness stream `Ψ_v`, derived
//! from a master seed by SplitMix64 key-mixing and consumed through a
//! Xoshiro256++ generator. The derivation is *hierarchical and pure*: the
//! stream of vertex `v` depends only on `(master_seed, v)`, so a `t`-round
//! protocol's output at `v` is a deterministic function of the streams in
//! `B_t(v)` — property (27) of the paper, by construction.
//!
//! The generators implement `rand_core`'s infallible RNG trait, so the
//! whole `rand` API is available on top of them.

use rand::Rng;

/// SplitMix64's additive state constant.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 step: the standard 64-bit mixing finalizer, used both to
/// seed Xoshiro and to derive child keys.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `k`-th [`splitmix64`] output from initial state `base`, computed
/// directly: the state advance is pure addition, so consecutive outputs
/// are independent finalizer mixes of `base + k·GOLDEN`. Block fills use
/// this to compute only the outputs they need, each at dependency depth
/// one instead of at the end of a serial state chain.
#[inline(always)]
fn splitmix_at(base: u64, k: u64) -> u64 {
    let mut z = base.wrapping_add(GOLDEN.wrapping_mul(k));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a master seed with a stream label and index into a child seed.
#[inline]
pub fn derive_seed(master: u64, label: u64, index: u64) -> u64 {
    let s = master ^ label.rotate_left(32) ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    splitmix_at(s, 1) ^ splitmix_at(s, 2).rotate_left(17)
}

/// Xoshiro256++ — a small, fast, well-tested PRNG; the engine behind every
/// vertex stream.
///
/// # Example
/// ```
/// use lsl_local::rng::Xoshiro256pp;
/// use rand::RngExt;
/// let mut a = Xoshiro256pp::seed_from(42);
/// let mut b = Xoshiro256pp::seed_from(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator from a 64-bit seed via SplitMix64 (the
    /// initialization recommended by the xoshiro authors).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is invalid; SplitMix64 of any seed avoids it with
        // overwhelming probability, but guard anyway.
        if s == [0, 0, 0, 0] {
            Xoshiro256pp { s: [1, 2, 3, 4] }
        } else {
            Xoshiro256pp { s }
        }
    }

    /// The next raw 64-bit output.
    // Established name across the workspace; this type is not an iterator.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl rand::TryRng for Xoshiro256pp {
    type Error = std::convert::Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.next() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.next())
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Ok(())
    }
}

/// Label under which per-round master keys are derived (the counter
/// dimension of the step-engine's `(master, round, vertex)` streams).
const ROUND_STREAM_LABEL: u64 = 0x524e_4453_5452_4d00; // "RNDSTRM\0"

/// The round key `K_r`: a pure function of `(master_seed, round)`.
///
/// The step engine derives every random draw of round `r` from this key,
/// so a round's randomness is a *counter-style* function of
/// `(master_seed, round, vertex-or-edge)` — independent of execution
/// order. This is what makes sequential and parallel sweeps bit-identical
/// and lets coupled replicas share one round's randomness.
#[inline]
pub fn round_key(master: u64, round: u64) -> u64 {
    derive_seed(master, ROUND_STREAM_LABEL, round)
}

/// A vertex's private randomness stream `Ψ_v`.
///
/// Thin wrapper over [`Xoshiro256pp`] carrying its derivation so debugging
/// output can name the stream.
#[derive(Clone, Debug)]
pub struct VertexRng {
    vertex: u32,
    inner: Xoshiro256pp,
}

/// Label under which vertex streams are derived (public so block fills
/// can address the same streams as [`VertexRng::for_vertex`]).
pub const VERTEX_STREAM_LABEL: u64 = 0x5653_5452_4541_4d00; // "VSTREAM\0"

/// The first output of the derived stream `(master, label, index)` —
/// exactly the value the stream's first `next()` would return.
///
/// Single-draw consumers (proposal samples, Luby marks, edge coins) can
/// therefore be served from a precomputed block of heads instead of a
/// generator construction per index, with bit-identical results.
#[inline]
pub fn stream_head(master: u64, label: u64, index: u64) -> u64 {
    Xoshiro256pp::seed_from(derive_seed(master, label, index)).next()
}

/// First output of the all-zero-seed fallback state `[1, 2, 3, 4]`
/// (`(1 + 4).rotate_left(23) + 1`) — lets [`head_at`] stay branchless
/// where [`Xoshiro256pp::seed_from`] branches.
const ZERO_GUARD_HEAD: u64 = (5u64 << 23) | 1;

/// Branchless [`stream_head`]: the same SplitMix64/Xoshiro mixing steps
/// with the zero-state guard as a select, so block fills auto-vectorize
/// (the guard fires only if four consecutive SplitMix64 outputs are all
/// zero — equality with the branching path is asserted by
/// `stream_heads_match_per_vertex_streams`).
#[inline(always)]
fn head_at(master: u64, label: u64, index: u64) -> u64 {
    let child = derive_seed(master, label, index);
    let s0 = splitmix_at(child, 1);
    let s1 = splitmix_at(child, 2);
    let s2 = splitmix_at(child, 3);
    let s3 = splitmix_at(child, 4);
    let head = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
    if s0 | s1 | s2 | s3 == 0 {
        ZERO_GUARD_HEAD
    } else {
        head
    }
}

/// The eight-multiply fast path of [`head_at`]: only `s0` and `s3` of
/// the freshly seeded Xoshiro state feed a stream's first output, so a
/// head needs four direct [`splitmix_at`] mixes, not six. The zero-state
/// guard also needs `s1 | s2`, but can only fire when `s0 | s3 == 0` —
/// so instead of computing them, this returns that condition as a flag;
/// callers OR-accumulate it and re-run the exact [`head_at`] over the
/// block iff any index raised it (probability ~2⁻¹²⁸ per index).
#[inline(always)]
fn head_fast(master: u64, label: u64, index: u64) -> (u64, u64) {
    let child = derive_seed(master, label, index);
    let s0 = splitmix_at(child, 1);
    let s3 = splitmix_at(child, 4);
    let head = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
    (head, u64::from(s0 | s3 == 0))
}

/// The `[0, 1)` mapping of [`Xoshiro256pp::uniform_f64`] applied to a
/// raw head: top 53 bits, bit-for-bit the same `f64`.
#[inline(always)]
pub fn head_to_f64(head: u64) -> f64 {
    (head >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Declares scalar/AVX2/AVX-512 clones of a fill loop and a dispatcher
/// that picks the widest instruction set the host supports. The bodies
/// are identical — the `#[target_feature]` clones just let LLVM
/// vectorize the (branchless, independent-per-index) loop with wider
/// registers and native 64-bit multiplies (`vpmullq` needs AVX-512DQ).
/// On non-x86-64 hosts only the portable loop exists.
macro_rules! simd_fill {
    ($(#[$doc:meta])* $name:ident, $elem:ty, $fast:expr, $exact:expr) => {
        $(#[$doc])*
        pub fn $name(master: u64, label: u64, out: &mut [$elem]) {
            #[inline(always)]
            fn portable(master: u64, label: u64, out: &mut [$elem]) {
                // `fn(master, label, index) -> (elem, flag)`, pure; a
                // nonzero flag marks an index whose fast value may
                // disagree with the exact one (the Xoshiro zero-state
                // guard, which the fast path does not evaluate fully).
                let fast = $fast;
                let mut rare = 0u64;
                for (i, slot) in out.iter_mut().enumerate() {
                    let (val, flag) = fast(master, label, i as u64);
                    rare |= flag;
                    *slot = val;
                }
                if rare != 0 {
                    // A possibly-guarded index exists: redo the block on
                    // the exact path. Never taken in practice — kept for
                    // bit-exactness with the per-index streams.
                    let exact = $exact;
                    for (i, slot) in out.iter_mut().enumerate() {
                        *slot = exact(master, label, i as u64);
                    }
                }
            }
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
                unsafe fn wide512(master: u64, label: u64, out: &mut [$elem]) {
                    portable(master, label, out);
                }
                #[target_feature(enable = "avx2")]
                unsafe fn wide256(master: u64, label: u64, out: &mut [$elem]) {
                    portable(master, label, out);
                }
                if std::arch::is_x86_feature_detected!("avx512dq")
                    && std::arch::is_x86_feature_detected!("avx512vl")
                {
                    // SAFETY: the required features were just detected.
                    return unsafe { wide512(master, label, out) };
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 was just detected.
                    return unsafe { wide256(master, label, out) };
                }
            }
            portable(master, label, out);
        }
    };
}

simd_fill!(
    /// Fills `out[i]` with [`stream_head`]`(master, label, i)` — one
    /// round's single-draw randomness as one contiguous, vectorizable
    /// pass.
    ///
    /// The per-index streams are unchanged (each head is still a pure
    /// function of `(master, label, index)`), so trajectories built on
    /// the heads are identical to ones that construct a generator per
    /// index.
    fill_stream_heads, u64, head_fast, head_at
);

simd_fill!(
    /// Fills `out[i] = derive_seed(master, label, i)` — the seed block
    /// for multi-draw consumers, which then build each full stream with
    /// [`Xoshiro256pp::seed_from`] exactly as the scalar path does.
    fill_stream_seeds, u64, |m, l, i| (derive_seed(m, l, i), 0), derive_seed
);

/// Fills `out[i]` with the first `uniform_f64` of stream
/// `(master, label, i)` — [`fill_stream_heads`] composed with
/// [`head_to_f64`], both passes vectorized (filling heads and
/// converting in one mixed-type loop defeats the vectorizer, so the
/// heads land in `out`'s storage bit-cast and convert in place).
pub fn fill_stream_uniforms(master: u64, label: u64, out: &mut [f64]) {
    {
        // SAFETY: `f64` and `u64` have identical size and alignment,
        // and every bit pattern written is overwritten by the convert
        // pass below before any caller reads it as a float.
        let heads =
            unsafe { core::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<u64>(), out.len()) };
        fill_stream_heads(master, label, heads);
    }
    for slot in out.iter_mut() {
        *slot = head_to_f64(slot.to_bits());
    }
}

impl VertexRng {
    /// Derives the stream `Ψ_v` of vertex `v` from a protocol master seed.
    pub fn for_vertex(master: u64, vertex: u32) -> Self {
        VertexRng {
            vertex,
            inner: Xoshiro256pp::seed_from(derive_seed(master, VERTEX_STREAM_LABEL, vertex as u64)),
        }
    }

    /// Which vertex this stream belongs to.
    pub fn vertex(&self) -> u32 {
        self.vertex
    }

    /// The underlying raw generator (for callers that need the concrete
    /// [`Xoshiro256pp`], e.g. coupling-friendly resamplers).
    pub fn raw(&mut self) -> &mut Xoshiro256pp {
        &mut self.inner
    }

    /// A uniform `f64` in `[0, 1)` — e.g. the LubyGlauber `β_v`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.uniform_f64()
    }
}

impl rand::TryRng for VertexRng {
    type Error = std::convert::Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.inner.next() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.inner.next())
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        rand::TryRng::try_fill_bytes(&mut self.inner, dst)
    }
}

/// Asserts at compile time that our generators satisfy the full `rand`
/// bound used throughout the workspace.
#[allow(dead_code)]
fn assert_rng_bounds(x: Xoshiro256pp, v: VertexRng) -> (impl Rng, impl Rng) {
    (x, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_streams() {
        let mut a = VertexRng::for_vertex(99, 3);
        let mut b = VertexRng::for_vertex(99, 3);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_vertices_get_distinct_streams() {
        let mut a = VertexRng::for_vertex(99, 3);
        let mut b = VertexRng::for_vertex(99, 4);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn distinct_masters_get_distinct_streams() {
        let mut a = VertexRng::for_vertex(1, 0);
        let mut b = VertexRng::for_vertex(2, 0);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from(7);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bit_balance_smoke() {
        // Each output bit should be ~fair.
        let mut rng = Xoshiro256pp::seed_from(1234);
        let n = 20_000;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let x = rng.next();
            for (b, slot) in counts.iter_mut().enumerate() {
                *slot += ((x >> b) & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.03, "bit {b}: {frac}");
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        use rand::TryRng;
        let mut rng = Xoshiro256pp::seed_from(5);
        let mut buf = [0u8; 13];
        rng.try_fill_bytes(&mut buf).unwrap();
        // Not all zero (would indicate a fill bug).
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rand_api_composes() {
        let mut rng = VertexRng::for_vertex(0, 0);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let k = rng.random_range(0..10u32);
        assert!(k < 10);
    }

    #[test]
    fn round_streams_are_pure_functions_of_master_round_vertex() {
        // The round-local discipline: vertex streams under a round key
        // are reproducible and differ across rounds.
        let mut a = VertexRng::for_vertex(round_key(42, 7), 3);
        let mut b = VertexRng::for_vertex(round_key(42, 7), 3);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = VertexRng::for_vertex(round_key(42, 8), 3);
        let x = VertexRng::for_vertex(round_key(42, 7), 3).random::<u64>();
        assert_ne!(x, c.random::<u64>());
    }

    #[test]
    fn round_key_distinct_across_rounds() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..1000u64 {
            assert!(seen.insert(round_key(9, r)), "round key collision");
        }
    }

    #[test]
    fn stream_heads_match_per_vertex_streams() {
        // The block fill must reproduce the first draw of every
        // VertexRng stream bit-for-bit — the hot path's contract.
        let master = round_key(42, 9);
        let mut heads = vec![0u64; 64];
        fill_stream_heads(master, VERTEX_STREAM_LABEL, &mut heads);
        for (v, &head) in heads.iter().enumerate() {
            let mut scalar = VertexRng::for_vertex(master, v as u32);
            assert_eq!(head, scalar.random::<u64>(), "vertex {v}");
        }
    }

    #[test]
    fn stream_seeds_match_derive_seed() {
        let mut seeds = vec![0u64; 32];
        fill_stream_seeds(7, VERTEX_STREAM_LABEL, &mut seeds);
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, derive_seed(7, VERTEX_STREAM_LABEL, i as u64));
            // Seeding from the block seed reproduces the full stream.
            let mut blocked = Xoshiro256pp::seed_from(s);
            let mut scalar = VertexRng::for_vertex(7, i as u32);
            for _ in 0..8 {
                assert_eq!(blocked.next(), scalar.random::<u64>());
            }
        }
    }

    #[test]
    fn uniform_fill_matches_stream_uniform_f64() {
        let master = round_key(7, 3);
        let mut coins = vec![0.0; 97];
        fill_stream_uniforms(master, 5, &mut coins);
        for (i, &c) in coins.iter().enumerate() {
            let mut scalar = Xoshiro256pp::seed_from(derive_seed(master, 5, i as u64));
            assert_eq!(c, scalar.uniform_f64(), "index {i}");
        }
    }

    #[test]
    fn head_at_matches_branching_path_on_zero_guard() {
        // The fallback state's head, as the branching constructor
        // computes it.
        let mut guarded = Xoshiro256pp { s: [1, 2, 3, 4] };
        assert_eq!(guarded.next(), ZERO_GUARD_HEAD);
    }

    #[test]
    fn derive_seed_spreads() {
        // Small-index seeds should not collide.
        let mut seen = std::collections::HashSet::new();
        for label in 0..4u64 {
            for idx in 0..1000u64 {
                assert!(seen.insert(derive_seed(42, label, idx)), "collision");
            }
        }
    }
}
