//! Deterministic hierarchical randomness for LOCAL protocols.
//!
//! Every vertex `v` owns an independent randomness stream `Ψ_v`, derived
//! from a master seed by SplitMix64 key-mixing and consumed through a
//! Xoshiro256++ generator. The derivation is *hierarchical and pure*: the
//! stream of vertex `v` depends only on `(master_seed, v)`, so a `t`-round
//! protocol's output at `v` is a deterministic function of the streams in
//! `B_t(v)` — property (27) of the paper, by construction.
//!
//! The generators implement `rand_core`'s infallible RNG trait, so the
//! whole `rand` API is available on top of them.

use rand::Rng;

/// SplitMix64 step: the standard 64-bit mixing finalizer, used both to
/// seed Xoshiro and to derive child keys.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a master seed with a stream label and index into a child seed.
#[inline]
pub fn derive_seed(master: u64, label: u64, index: u64) -> u64 {
    let mut s = master ^ label.rotate_left(32) ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// Xoshiro256++ — a small, fast, well-tested PRNG; the engine behind every
/// vertex stream.
///
/// # Example
/// ```
/// use lsl_local::rng::Xoshiro256pp;
/// use rand::RngExt;
/// let mut a = Xoshiro256pp::seed_from(42);
/// let mut b = Xoshiro256pp::seed_from(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator from a 64-bit seed via SplitMix64 (the
    /// initialization recommended by the xoshiro authors).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is invalid; SplitMix64 of any seed avoids it with
        // overwhelming probability, but guard anyway.
        if s == [0, 0, 0, 0] {
            Xoshiro256pp { s: [1, 2, 3, 4] }
        } else {
            Xoshiro256pp { s }
        }
    }

    /// The next raw 64-bit output.
    // Established name across the workspace; this type is not an iterator.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl rand::TryRng for Xoshiro256pp {
    type Error = std::convert::Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.next() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.next())
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Ok(())
    }
}

/// Label under which per-round master keys are derived (the counter
/// dimension of the step-engine's `(master, round, vertex)` streams).
const ROUND_STREAM_LABEL: u64 = 0x524e_4453_5452_4d00; // "RNDSTRM\0"

/// The round key `K_r`: a pure function of `(master_seed, round)`.
///
/// The step engine derives every random draw of round `r` from this key,
/// so a round's randomness is a *counter-style* function of
/// `(master_seed, round, vertex-or-edge)` — independent of execution
/// order. This is what makes sequential and parallel sweeps bit-identical
/// and lets coupled replicas share one round's randomness.
#[inline]
pub fn round_key(master: u64, round: u64) -> u64 {
    derive_seed(master, ROUND_STREAM_LABEL, round)
}

/// A vertex's private randomness stream `Ψ_v`.
///
/// Thin wrapper over [`Xoshiro256pp`] carrying its derivation so debugging
/// output can name the stream.
#[derive(Clone, Debug)]
pub struct VertexRng {
    vertex: u32,
    inner: Xoshiro256pp,
}

/// Label under which vertex streams are derived.
const VERTEX_STREAM_LABEL: u64 = 0x5653_5452_4541_4d00; // "VSTREAM\0"

impl VertexRng {
    /// Derives the stream `Ψ_v` of vertex `v` from a protocol master seed.
    pub fn for_vertex(master: u64, vertex: u32) -> Self {
        VertexRng {
            vertex,
            inner: Xoshiro256pp::seed_from(derive_seed(master, VERTEX_STREAM_LABEL, vertex as u64)),
        }
    }

    /// Which vertex this stream belongs to.
    pub fn vertex(&self) -> u32 {
        self.vertex
    }

    /// The underlying raw generator (for callers that need the concrete
    /// [`Xoshiro256pp`], e.g. coupling-friendly resamplers).
    pub fn raw(&mut self) -> &mut Xoshiro256pp {
        &mut self.inner
    }

    /// A uniform `f64` in `[0, 1)` — e.g. the LubyGlauber `β_v`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.uniform_f64()
    }
}

impl rand::TryRng for VertexRng {
    type Error = std::convert::Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.inner.next() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.inner.next())
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        rand::TryRng::try_fill_bytes(&mut self.inner, dst)
    }
}

/// Asserts at compile time that our generators satisfy the full `rand`
/// bound used throughout the workspace.
#[allow(dead_code)]
fn assert_rng_bounds(x: Xoshiro256pp, v: VertexRng) -> (impl Rng, impl Rng) {
    (x, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_streams() {
        let mut a = VertexRng::for_vertex(99, 3);
        let mut b = VertexRng::for_vertex(99, 3);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_vertices_get_distinct_streams() {
        let mut a = VertexRng::for_vertex(99, 3);
        let mut b = VertexRng::for_vertex(99, 4);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn distinct_masters_get_distinct_streams() {
        let mut a = VertexRng::for_vertex(1, 0);
        let mut b = VertexRng::for_vertex(2, 0);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from(7);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bit_balance_smoke() {
        // Each output bit should be ~fair.
        let mut rng = Xoshiro256pp::seed_from(1234);
        let n = 20_000;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let x = rng.next();
            for (b, slot) in counts.iter_mut().enumerate() {
                *slot += ((x >> b) & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.03, "bit {b}: {frac}");
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        use rand::TryRng;
        let mut rng = Xoshiro256pp::seed_from(5);
        let mut buf = [0u8; 13];
        rng.try_fill_bytes(&mut buf).unwrap();
        // Not all zero (would indicate a fill bug).
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rand_api_composes() {
        let mut rng = VertexRng::for_vertex(0, 0);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let k = rng.random_range(0..10u32);
        assert!(k < 10);
    }

    #[test]
    fn round_streams_are_pure_functions_of_master_round_vertex() {
        // The round-local discipline: vertex streams under a round key
        // are reproducible and differ across rounds.
        let mut a = VertexRng::for_vertex(round_key(42, 7), 3);
        let mut b = VertexRng::for_vertex(round_key(42, 7), 3);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = VertexRng::for_vertex(round_key(42, 8), 3);
        let x = VertexRng::for_vertex(round_key(42, 7), 3).random::<u64>();
        assert_ne!(x, c.random::<u64>());
    }

    #[test]
    fn round_key_distinct_across_rounds() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..1000u64 {
            assert!(seen.insert(round_key(9, r)), "round key collision");
        }
    }

    #[test]
    fn derive_seed_spreads() {
        // Small-index seeds should not collide.
        let mut seen = std::collections::HashSet::new();
        for label in 0..4u64 {
            for idx in 0..1000u64 {
                assert!(seen.insert(derive_seed(42, label, idx)), "collision");
            }
        }
    }
}
