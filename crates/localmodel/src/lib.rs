//! A deterministic simulator of Linial's LOCAL model.
//!
//! The paper's computation model (§2.1): a network `G(V, E)` of processors,
//! synchronized rounds, per-round exchange of messages of arbitrary size
//! with each neighbor, unbounded local computation, and — for sampling —
//! an independent private randomness source `Ψ_v` per vertex. Each vertex
//! may also know upper bounds on `Δ` and `log n` (used only to set running
//! times).
//!
//! This crate *is* that model, as a library:
//!
//! * [`rng`] — deterministic hierarchical randomness: a master seed is
//!   split into per-vertex streams `Ψ_v` (SplitMix64-seeded
//!   Xoshiro256++), so a protocol's output is a pure function of
//!   `(Ψ_u)_{u ∈ B_t(v)}` — exactly the locality-of-randomness property
//!   (27) on which the paper's lower bounds rest.
//! * [`program`] — the [`VertexProgram`](program::VertexProgram) trait:
//!   `init → round* → output`, with per-edge outboxes and bit-accounted
//!   messages.
//! * [`runtime`] — the synchronous executor with round and message-size
//!   statistics (the paper claims its algorithms use `O(log n)`-bit
//!   messages; [`runtime::RoundStats`] measures that).
//!
//! # Example
//!
//! ```
//! use lsl_graph::generators;
//! use lsl_local::program::{Outbox, VertexContext, VertexProgram};
//! use lsl_local::rng::VertexRng;
//! use lsl_local::runtime::Simulator;
//!
//! /// Each vertex computes the maximum id in its t-ball.
//! struct MaxId(u32);
//!
//! impl VertexProgram for MaxId {
//!     type Message = u32;
//!     type Output = u32;
//!     type Config = ();
//!     fn init(_config: &(), ctx: &VertexContext<'_>, _rng: &mut VertexRng) -> Self {
//!         MaxId(ctx.vertex().0)
//!     }
//!     fn send(&mut self, _config: &(), _ctx: &VertexContext<'_>, _rng: &mut VertexRng) -> Outbox<u32> {
//!         Outbox::broadcast(self.0)
//!     }
//!     fn receive(
//!         &mut self,
//!         _config: &(),
//!         _ctx: &VertexContext<'_>,
//!         inbox: &[Option<u32>],
//!         _rng: &mut VertexRng,
//!     ) {
//!         for msg in inbox.iter().flatten() {
//!             self.0 = self.0.max(*msg);
//!         }
//!     }
//!     fn output(&self) -> u32 {
//!         self.0
//!     }
//! }
//!
//! let g = generators::path(5);
//! let sim = Simulator::new(g.into(), 7);
//! let run = sim.run::<MaxId>(2);
//! // After 2 rounds, v0 has seen exactly the ids within distance 2.
//! assert_eq!(run.outputs[0], 2);
//! assert_eq!(run.outputs[4], 4);
//! ```

pub mod program;
pub mod rng;
pub mod runtime;
