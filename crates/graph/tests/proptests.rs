//! Property-based tests for the graph substrate.

use lsl_graph::{generators, partition, traversal, Graph, GraphBuilder, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
// Redundant under the offline proptest stand-in (its macro injects the
// trait), but required if the stand-ins are swapped for the real crates.
#[allow(unused_imports)]
use rand::SeedableRng;

/// Strategy: a random edge list over `n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph(24, 60)) {
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn neighbors_are_symmetric(g in arb_graph(16, 40)) {
        for v in g.vertices() {
            for u in g.neighbors(v) {
                prop_assert!(g.neighbors(u).any(|w| w == v));
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(g in arb_graph(16, 40)) {
        for src in g.vertices() {
            let d = traversal::bfs_distances(&g, src);
            for (_, u, v) in g.edges() {
                let (du, dv) = (d[u.index()], d[v.index()]);
                if du != traversal::UNREACHABLE && dv != traversal::UNREACHABLE {
                    prop_assert!(du.abs_diff(dv) <= 1);
                }
            }
        }
    }

    #[test]
    fn components_refine_reachability(g in arb_graph(16, 30)) {
        let comp = traversal::components(&g);
        for u in g.vertices() {
            let d = traversal::bfs_distances(&g, u);
            for v in g.vertices() {
                let reachable = d[v.index()] != traversal::UNREACHABLE;
                prop_assert_eq!(reachable, comp[u.index()] == comp[v.index()]);
            }
        }
    }

    #[test]
    fn greedy_coloring_proper_and_small(g in arb_graph(20, 50)) {
        let col = lsl_graph::coloring::greedy(&g);
        prop_assert!(col.num_classes() <= g.max_degree() + 1);
        for (_, u, v) in g.edges() {
            prop_assert_ne!(col.color(u), col.color(v));
        }
    }

    #[test]
    fn ball_radius_monotone(g in arb_graph(14, 30), r in 0u32..5) {
        for v in g.vertices().take(4) {
            let small = traversal::ball(&g, v, r);
            let big = traversal::ball(&g, v, r + 1);
            prop_assert!(small.len() <= big.len());
            for x in &small {
                prop_assert!(big.contains(x));
            }
        }
    }

    #[test]
    fn random_regular_has_right_degrees(seed in 0u64..50, d in 2usize..5) {
        let n = 12;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng);
        for v in g.vertices() {
            prop_assert_eq!(g.degree(v), d);
        }
    }

    #[test]
    fn random_tree_connected_acyclic(seed in 0u64..60, n in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        prop_assert_eq!(g.num_edges(), n - 1);
        prop_assert!(traversal::is_connected(&g));
    }

    #[test]
    fn diameter_lower_bound_is_lower(g in arb_graph(12, 24)) {
        if traversal::is_connected(&g) && g.num_vertices() > 0 {
            let lb = traversal::diameter_lower_bound(&g).unwrap();
            let exact = traversal::diameter(&g).unwrap();
            prop_assert!(lb <= exact);
        }
    }

    #[test]
    fn independent_set_mask_respects_edges(g in arb_graph(14, 30), bits in proptest::collection::vec(any::<bool>(), 14)) {
        let n = g.num_vertices();
        let mask: Vec<bool> = (0..n).map(|i| *bits.get(i).unwrap_or(&false)).collect();
        let claim = g.is_independent_set(&mask);
        let truth = g.edges().all(|(_, u, v)| !(mask[u.index()] && mask[v.index()]));
        prop_assert_eq!(claim, truth);
    }

    #[test]
    fn partitioners_cover_every_vertex_exactly_once(g in arb_graph(20, 50), k in 1usize..6) {
        for p in partition::Partitioner::ALL {
            let part = p.partition(&g, k);
            prop_assert_eq!(part.num_shards(), k);
            prop_assert_eq!(part.len(), g.num_vertices());
            let mut seen = vec![false; g.num_vertices()];
            for s in 0..k {
                for &v in part.members(s) {
                    prop_assert!(!seen[v.index()], "{} assigned v twice", p.name());
                    seen[v.index()] = true;
                    prop_assert_eq!(part.shard_of(v), s);
                }
            }
            prop_assert!(seen.iter().all(|&b| b), "{} missed a vertex", p.name());
        }
    }

    #[test]
    fn partition_stats_match_brute_force(g in arb_graph(16, 40), k in 1usize..5) {
        for p in partition::Partitioner::ALL {
            let part = p.partition(&g, k);
            let stats = part.stats(&g);
            let cut = g
                .edges()
                .filter(|&(_, u, v)| part.shard_of(u) != part.shard_of(v))
                .count();
            prop_assert_eq!(stats.cut_size, cut, "{} miscounts the cut", p.name());
            prop_assert_eq!(stats.cut_size, part.cut_edges(&g).count());
            let boundary = g
                .vertices()
                .filter(|&v| g.neighbors(v).any(|u| part.shard_of(u) != part.shard_of(v)))
                .count();
            prop_assert_eq!(stats.boundary_vertices, boundary);
            prop_assert_eq!(
                stats.shard_sizes.iter().sum::<usize>(),
                g.num_vertices()
            );
            // The built-in partitioners respect the ceil(n/k) quota.
            let ideal = g.num_vertices().div_ceil(k).max(1);
            prop_assert!(stats.balance <= 1.0 + 1e-12, "{}: {}", p.name(), stats.balance);
            prop_assert!(stats.shard_sizes.iter().all(|&s| s <= ideal));
        }
    }
}

#[test]
fn torus_vertex_transitive_distances() {
    // On a torus every vertex has the same eccentricity.
    let g = generators::torus(5, 4);
    let e0 = traversal::eccentricity(&g, VertexId(0)).unwrap();
    for v in g.vertices() {
        assert_eq!(traversal::eccentricity(&g, v), Some(e0));
    }
}
