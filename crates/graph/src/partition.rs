//! Graph partitions for owner-computes sharded execution.
//!
//! The paper's chains run on a *network*: each vertex sees only its
//! neighborhood, and the cost that matters is rounds of boundary
//! communication. The sharded execution backend
//! (`lsl_core::engine::sharded`) simulates that honestly by splitting
//! the vertex set into `K` **owner-computes shards** — each shard
//! updates only the vertices it owns and learns about the rest of the
//! graph exclusively through boundary-state exchange. This module
//! provides the partitions themselves:
//!
//! * [`Partition`] — an assignment of every vertex to one of `K`
//!   shards, with membership queries and cut/balance statistics;
//! * three deterministic partitioners ([`Partitioner`]):
//!   [`Partition::contiguous`] (index blocks), [`Partition::bfs`]
//!   (BFS-grown regions), and [`Partition::greedy_edge_cut`] (linear
//!   deterministic greedy, minimizing the edge cut under a balance
//!   cap).
//!
//! The communication volume a partition induces is governed by its
//! **cut** — the edges whose endpoints live in different shards — and
//! reported by [`Partition::stats`]; experiment E14 plots measured
//! boundary messages against the cut size.
//!
//! # Example
//! ```
//! use lsl_graph::partition::Partition;
//! use lsl_graph::generators;
//!
//! let g = generators::torus(8, 8);
//! let p = Partition::bfs(&g, 4);
//! let stats = p.stats(&g);
//! assert_eq!(stats.shard_sizes.iter().sum::<usize>(), 64);
//! assert!(stats.cut_size < g.num_edges());
//! ```

use crate::{EdgeId, Graph, VertexId};

/// An assignment of every vertex of a graph to one of `K` shards.
///
/// Shards are dense indices `0..K`; the assignment is immutable once
/// built. Construction validates that every vertex is assigned to a
/// shard in range, so downstream consumers can index without checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    num_shards: usize,
    shard_of: Vec<u32>,
    /// CSR offsets into `members`, length `num_shards + 1`.
    member_offsets: Vec<u32>,
    /// Vertices grouped by shard, ascending within each shard.
    members: Vec<VertexId>,
}

impl Partition {
    /// Builds a partition from an explicit per-vertex assignment.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or any entry is `>= num_shards`.
    pub fn from_assignment(num_shards: usize, shard_of: Vec<u32>) -> Self {
        assert!(num_shards > 0, "a partition needs at least one shard");
        assert!(
            num_shards <= u32::MAX as usize,
            "shard count exceeds u32 range"
        );
        let mut sizes = vec![0u32; num_shards];
        for (v, &s) in shard_of.iter().enumerate() {
            assert!(
                (s as usize) < num_shards,
                "vertex v{v} assigned to shard {s}, but there are only {num_shards} shards"
            );
            sizes[s as usize] += 1;
        }
        let mut member_offsets = vec![0u32; num_shards + 1];
        for s in 0..num_shards {
            member_offsets[s + 1] = member_offsets[s] + sizes[s];
        }
        let mut members = vec![VertexId(0); shard_of.len()];
        let mut cursor: Vec<u32> = member_offsets[..num_shards].to_vec();
        // Vertices are visited in index order, so members stay ascending
        // within each shard.
        for (v, &s) in shard_of.iter().enumerate() {
            members[cursor[s as usize] as usize] = VertexId(v as u32);
            cursor[s as usize] += 1;
        }
        Partition {
            num_shards,
            shard_of,
            member_offsets,
            members,
        }
    }

    /// Partitions `0..n` into `k` contiguous index blocks whose sizes
    /// differ by at most one.
    ///
    /// On index-local graph families (paths, cycles, row-major tori)
    /// contiguous blocks already give near-minimal cuts; this is the
    /// default partitioner of the facade's `Backend::Sharded`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn contiguous(g: &Graph, k: usize) -> Self {
        assert!(k > 0, "a partition needs at least one shard");
        let n = g.num_vertices();
        let mut shard_of = vec![0u32; n];
        // The first `n % k` blocks get one extra vertex.
        let (base, extra) = (n / k, n % k);
        let mut v = 0usize;
        for s in 0..k {
            let size = base + usize::from(s < extra);
            for slot in &mut shard_of[v..v + size] {
                *slot = s as u32;
            }
            v += size;
        }
        Self::from_assignment(k, shard_of)
    }

    /// Partitions the graph into `k` BFS-grown regions of near-equal
    /// size.
    ///
    /// Shard `s` grows from the smallest-index unassigned vertex by
    /// breadth-first search until it reaches its size quota; on
    /// disconnected graphs the frontier is reseeded from the smallest
    /// unassigned vertex. Deterministic: no randomness, ties broken by
    /// vertex index.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn bfs(g: &Graph, k: usize) -> Self {
        assert!(k > 0, "a partition needs at least one shard");
        let n = g.num_vertices();
        const UNASSIGNED: u32 = u32::MAX;
        let mut shard_of = vec![UNASSIGNED; n];
        let mut queue = std::collections::VecDeque::new();
        let mut next_seed = 0usize;
        let (base, extra) = (n / k, n % k);
        for s in 0..k {
            let quota = base + usize::from(s < extra);
            let mut size = 0usize;
            while size < quota {
                let v = match queue.pop_front() {
                    Some(v) => v,
                    None => {
                        // Reseed from the smallest unassigned vertex
                        // (fresh shard, or a disconnected remainder).
                        while next_seed < n && shard_of[next_seed] != UNASSIGNED {
                            next_seed += 1;
                        }
                        VertexId(next_seed as u32)
                    }
                };
                if shard_of[v.index()] != UNASSIGNED {
                    continue;
                }
                shard_of[v.index()] = s as u32;
                size += 1;
                for u in g.neighbors(v) {
                    if shard_of[u.index()] == UNASSIGNED {
                        queue.push_back(u);
                    }
                }
            }
            // The next shard grows its own region from a fresh seed.
            queue.clear();
        }
        Self::from_assignment(k, shard_of)
    }

    /// Partitions the graph by linear deterministic greedy edge-cut
    /// minimization.
    ///
    /// Vertices are visited in index order; each goes to the shard
    /// holding most of its already-assigned neighbors (fewest new cut
    /// edges), subject to a hard balance cap of `ceil(n/k)` vertices
    /// per shard. Ties go to the smaller shard, then the smaller shard
    /// index — fully deterministic.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn greedy_edge_cut(g: &Graph, k: usize) -> Self {
        assert!(k > 0, "a partition needs at least one shard");
        let n = g.num_vertices();
        const UNASSIGNED: u32 = u32::MAX;
        let cap = n.div_ceil(k);
        let mut shard_of = vec![UNASSIGNED; n];
        let mut sizes = vec![0usize; k];
        // Per-candidate neighbor counts, reset sparsely between vertices.
        let mut gains = vec![0usize; k];
        let mut touched: Vec<usize> = Vec::new();
        for v in g.vertices() {
            for u in g.neighbors(v) {
                let s = shard_of[u.index()];
                if s != UNASSIGNED {
                    let s = s as usize;
                    if gains[s] == 0 {
                        touched.push(s);
                    }
                    gains[s] += 1;
                }
            }
            let mut best: Option<usize> = None;
            for s in 0..k {
                if sizes[s] >= cap {
                    continue;
                }
                let better = match best {
                    None => true,
                    // Highest gain, then smallest shard; strict
                    // comparisons let the first (smallest-index)
                    // candidate keep remaining ties.
                    Some(b) => gains[s] > gains[b] || (gains[s] == gains[b] && sizes[s] < sizes[b]),
                };
                if better {
                    best = Some(s);
                }
            }
            let s = best.expect("the balance cap leaves room for every vertex");
            shard_of[v.index()] = s as u32;
            sizes[s] += 1;
            for &t in &touched {
                gains[t] = 0;
            }
            touched.clear();
        }
        Self::from_assignment(k, shard_of)
    }

    /// Number of shards `K`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of vertices the partition covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// Whether the partition covers no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The shard owning vertex `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The per-vertex assignment, indexed by vertex.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }

    /// The vertices owned by shard `s`, in ascending index order.
    #[inline]
    pub fn members(&self, s: usize) -> &[VertexId] {
        let lo = self.member_offsets[s] as usize;
        let hi = self.member_offsets[s + 1] as usize;
        &self.members[lo..hi]
    }

    /// Iterator over the member slices of all shards, in shard order.
    pub fn shards(&self) -> impl ExactSizeIterator<Item = &[VertexId]> + '_ {
        (0..self.num_shards).map(move |s| self.members(s))
    }

    /// Whether edge `e` crosses a shard boundary.
    #[inline]
    pub fn is_cut(&self, g: &Graph, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.shard_of[u.index()] != self.shard_of[v.index()]
    }

    /// The edges crossing shard boundaries, in edge-id order.
    pub fn cut_edges<'a>(&'a self, g: &'a Graph) -> impl Iterator<Item = EdgeId> + 'a {
        g.edge_ids().filter(move |&e| self.is_cut(g, e))
    }

    /// Exact cut and balance statistics of this partition on `g`.
    ///
    /// # Panics
    /// Panics if the partition does not cover exactly `g`'s vertices.
    pub fn stats(&self, g: &Graph) -> PartitionStats {
        assert_eq!(
            self.len(),
            g.num_vertices(),
            "partition covers {} vertices, graph has {}",
            self.len(),
            g.num_vertices()
        );
        let shard_sizes: Vec<usize> = self.shards().map(<[VertexId]>::len).collect();
        let cut_size = self.cut_edges(g).count();
        let boundary_vertices = g
            .vertices()
            .filter(|&v| {
                let s = self.shard_of[v.index()];
                g.neighbors(v).any(|u| self.shard_of[u.index()] != s)
            })
            .count();
        let n = self.len();
        let ideal = n.div_ceil(self.num_shards).max(1);
        let max_size = shard_sizes.iter().copied().max().unwrap_or(0);
        PartitionStats {
            num_shards: self.num_shards,
            shard_sizes,
            cut_size,
            boundary_vertices,
            balance: max_size as f64 / ideal as f64,
        }
    }
}

/// Cut and balance statistics of a [`Partition`] on a graph.
#[derive(Clone, Debug, PartialEq)]
#[must_use = "partition statistics are only useful if inspected"]
pub struct PartitionStats {
    /// Number of shards `K`.
    pub num_shards: usize,
    /// Vertices owned by each shard, indexed by shard.
    pub shard_sizes: Vec<usize>,
    /// Edges whose endpoints live in different shards (parallel edges
    /// counted individually) — the quantity that bounds per-round
    /// boundary communication.
    pub cut_size: usize,
    /// Vertices with at least one neighbor in another shard.
    pub boundary_vertices: usize,
    /// Largest shard size divided by the ideal `ceil(n/K)`; `1.0` is
    /// perfectly balanced.
    pub balance: f64,
}

/// The deterministic partitioners, as a value — for sweeping in tests,
/// benches, and experiment binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Partitioner {
    /// [`Partition::contiguous`]: balanced contiguous index blocks.
    Contiguous,
    /// [`Partition::bfs`]: BFS-grown regions of near-equal size.
    Bfs,
    /// [`Partition::greedy_edge_cut`]: linear deterministic greedy
    /// cut minimization under a balance cap.
    GreedyEdgeCut,
}

impl Partitioner {
    /// Every partitioner, for exhaustive sweeps.
    pub const ALL: [Partitioner; 3] = [
        Partitioner::Contiguous,
        Partitioner::Bfs,
        Partitioner::GreedyEdgeCut,
    ];

    /// Human-readable name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Partitioner::Contiguous => "contiguous",
            Partitioner::Bfs => "bfs",
            Partitioner::GreedyEdgeCut => "greedy",
        }
    }

    /// Runs this partitioner on `g` with `k` shards.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn partition(self, g: &Graph, k: usize) -> Partition {
        match self {
            Partitioner::Contiguous => Partition::contiguous(g, k),
            Partitioner::Bfs => Partition::bfs(g, k),
            Partitioner::GreedyEdgeCut => Partition::greedy_edge_cut(g, k),
        }
    }
}

/// Canonical spec-string form — identical to [`Partitioner::name`] and
/// accepted back by the `FromStr` impl: `contiguous`, `bfs`,
/// `greedy`.
impl std::fmt::Display for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses the [`Partitioner::name`] form.
impl std::str::FromStr for Partitioner {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "contiguous" => Ok(Partitioner::Contiguous),
            "bfs" => Ok(Partitioner::Bfs),
            "greedy" => Ok(Partitioner::GreedyEdgeCut),
            other => Err(format!(
                "unknown partitioner {other:?} (expected contiguous | bfs | greedy)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Every partitioner must produce a valid, balanced cover.
    fn check_cover(g: &Graph, p: &Partition, k: usize) {
        assert_eq!(p.num_shards(), k);
        assert_eq!(p.len(), g.num_vertices());
        let total: usize = p.shards().map(<[VertexId]>::len).sum();
        assert_eq!(total, g.num_vertices(), "shards must cover every vertex");
        for s in 0..k {
            for &v in p.members(s) {
                assert_eq!(p.shard_of(v), s);
            }
        }
    }

    #[test]
    fn contiguous_blocks_are_balanced() {
        let g = generators::cycle(10);
        let p = Partition::contiguous(&g, 3);
        check_cover(&g, &p, 3);
        let sizes: Vec<usize> = p.shards().map(<[VertexId]>::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // A cycle cut into 3 contiguous arcs has exactly 3 cut edges.
        assert_eq!(p.stats(&g).cut_size, 3);
    }

    #[test]
    fn stats_exact_on_hand_built_graph() {
        // Two triangles joined by one bridge: {0,1,2} and {3,4,5}.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let p = Partition::from_assignment(2, vec![0, 0, 0, 1, 1, 1]);
        let stats = p.stats(&g);
        assert_eq!(stats.shard_sizes, vec![3, 3]);
        assert_eq!(stats.cut_size, 1, "only the bridge crosses");
        assert_eq!(stats.boundary_vertices, 2, "the bridge endpoints");
        assert_eq!(stats.balance, 1.0);
        assert_eq!(p.cut_edges(&g).collect::<Vec<_>>(), vec![EdgeId(6)]);
    }

    #[test]
    fn stats_count_parallel_cut_edges_individually() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        let p = Partition::from_assignment(2, vec![0, 1]);
        assert_eq!(p.stats(&g).cut_size, 2);
    }

    #[test]
    fn unbalanced_assignment_reports_balance() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = Partition::from_assignment(2, vec![0, 0, 0, 1]);
        let stats = p.stats(&g);
        // Ideal is ceil(4/2) = 2; the largest shard has 3.
        assert_eq!(stats.balance, 1.5);
        assert_eq!(stats.cut_size, 1);
    }

    #[test]
    fn bfs_regions_are_balanced_on_torus() {
        let g = generators::torus(6, 6);
        let p = Partition::bfs(&g, 4);
        check_cover(&g, &p, 4);
        let stats = p.stats(&g);
        assert_eq!(stats.shard_sizes, vec![9, 9, 9, 9], "quotas are exact");
        assert_eq!(stats.balance, 1.0);
        // Locality sanity: BFS regions cut far fewer edges than the
        // 2m/K expectation of a shard-oblivious assignment.
        assert!(
            stats.cut_size < g.num_edges() / 2,
            "cut {} of {} edges",
            stats.cut_size,
            g.num_edges()
        );
    }

    #[test]
    fn bfs_handles_disconnected_graphs() {
        // Two disjoint paths.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let p = Partition::bfs(&g, 4);
        check_cover(&g, &p, 4);
    }

    #[test]
    fn greedy_respects_balance_cap() {
        let g = generators::complete(9);
        let p = Partition::greedy_edge_cut(&g, 4);
        check_cover(&g, &p, 4);
        let stats = p.stats(&g);
        let cap = 9usize.div_ceil(4);
        assert!(stats.shard_sizes.iter().all(|&s| s <= cap));
    }

    #[test]
    fn greedy_keeps_cliques_together_when_it_can() {
        // Two 3-cliques and a bridge; with cap 3, greedy should place
        // each clique in its own shard, cutting only the bridge.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let p = Partition::greedy_edge_cut(&g, 2);
        let stats = p.stats(&g);
        assert_eq!(stats.cut_size, 1);
    }

    #[test]
    fn single_shard_has_empty_cut() {
        let g = generators::torus(4, 4);
        for part in Partitioner::ALL {
            let p = part.partition(&g, 1);
            let stats = p.stats(&g);
            assert_eq!(stats.cut_size, 0, "{}", part.name());
            assert_eq!(stats.boundary_vertices, 0);
        }
    }

    #[test]
    fn more_shards_than_vertices_leaves_empty_shards() {
        let g = generators::path(3);
        for part in Partitioner::ALL {
            let p = part.partition(&g, 5);
            check_cover(&g, &p, 5);
        }
    }

    #[test]
    fn empty_graph_partitions() {
        let g = Graph::from_edges(0, &[]);
        for part in Partitioner::ALL {
            let p = part.partition(&g, 2);
            assert!(p.is_empty());
            assert_eq!(p.stats(&g).cut_size, 0);
        }
    }

    #[test]
    #[should_panic(expected = "only 2 shards")]
    fn rejects_out_of_range_assignment() {
        Partition::from_assignment(2, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let g = generators::path(3);
        Partition::contiguous(&g, 0);
    }
}
