//! Random perfect matchings between vertex sets.
//!
//! The Section-5.1 gadget `G_n^k` is the union of Δ−1 uniform perfect
//! matchings between `V⁺` and `V⁻` and one uniform perfect matching between
//! `U⁺` and `U⁻`. This module samples such matchings as index pairings.

use rand::seq::SliceRandom;
use rand::Rng;

/// A perfect matching between two equal-size index sets, stored as the
/// permutation image: `pairs[i] = j` matches left `i` to right `j`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    pairs: Vec<u32>,
}

impl Matching {
    /// Samples a uniform perfect matching on `size` left/right items.
    ///
    /// # Example
    /// ```
    /// use rand::SeedableRng;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    /// let m = lsl_graph::matching::Matching::sample(5, &mut rng);
    /// assert_eq!(m.len(), 5);
    /// ```
    pub fn sample(size: usize, rng: &mut impl Rng) -> Self {
        let mut pairs: Vec<u32> = (0..size as u32).collect();
        pairs.shuffle(rng);
        Matching { pairs }
    }

    /// The identity matching (`i ↔ i`), useful in tests.
    pub fn identity(size: usize) -> Self {
        Matching {
            pairs: (0..size as u32).collect(),
        }
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Right partner of left item `i`.
    #[inline]
    pub fn partner(&self, i: usize) -> usize {
        self.pairs[i] as usize
    }

    /// Iterator over `(left, right)` index pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (usize, usize)> + '_ {
        self.pairs.iter().enumerate().map(|(i, &j)| (i, j as usize))
    }

    /// Checks the permutation property (each right index hit exactly once).
    pub fn is_valid(&self) -> bool {
        let mut seen = vec![false; self.pairs.len()];
        for &j in &self.pairs {
            let j = j as usize;
            if j >= seen.len() || seen[j] {
                return false;
            }
            seen[j] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_matchings_are_permutations() {
        let mut rng = StdRng::seed_from_u64(11);
        for size in [0usize, 1, 2, 7, 64] {
            let m = Matching::sample(size, &mut rng);
            assert_eq!(m.len(), size);
            assert!(m.is_valid());
        }
    }

    #[test]
    fn identity_is_valid() {
        let m = Matching::identity(4);
        assert!(m.is_valid());
        assert_eq!(m.partner(2), 2);
        assert!(!Matching::identity(0).is_valid() || Matching::identity(0).is_empty());
    }

    #[test]
    fn iter_covers_all_pairs() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matching::sample(6, &mut rng);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs.len(), 6);
        for (i, j) in pairs {
            assert_eq!(m.partner(i), j);
        }
    }

    #[test]
    fn uniformity_smoke_test() {
        // Over many draws of a 3-matching, all 6 permutations appear.
        let mut rng = StdRng::seed_from_u64(99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let m = Matching::sample(3, &mut rng);
            seen.insert((m.partner(0), m.partner(1), m.partner(2)));
        }
        assert_eq!(seen.len(), 6);
    }
}
