//! Generators for the graph families used by the paper and the experiments.
//!
//! All random generators take an explicit `&mut impl Rng` so experiments are
//! reproducible from a seed.

use crate::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Path `P_n` on `n` vertices (`n - 1` edges).
///
/// The substrate of the Theorem 5.1 lower bound.
///
/// # Example
/// ```
/// let g = lsl_graph::generators::path(5);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.max_degree(), 2);
/// ```
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as u32, i as u32);
    }
    b.build()
}

/// Cycle `C_n` on `n ≥ 3` vertices.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as u32, ((i + 1) % n) as u32);
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as u32, v as u32);
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}` with parts `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u as u32, (a + v) as u32);
        }
    }
    g.build()
}

/// Star `K_{1,n}`: vertex 0 joined to `1..=n`.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n + 1);
    for v in 1..=n {
        b.add_edge(0, v as u32);
    }
    b.build()
}

/// `rows × cols` grid graph (4-neighborhood, no wraparound).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// `rows × cols` torus (grid with wraparound); 4-regular when both sides ≥ 3.
///
/// # Panics
/// Panics if either side is < 3 (wraparound would create parallel edges or
/// self-loops).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus sides must be >= 3");
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build()
}

/// `d`-dimensional hypercube on `2^d` vertices.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v as u32, u as u32);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` pairs appears
/// independently with probability `p`.
///
/// # Panics
/// Panics unless `0.0 <= p <= 1.0`.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(u as u32, v as u32);
            }
        }
    }
    b.build()
}

/// Uniform random labeled tree on `n` vertices via a Prüfer sequence.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    if n <= 1 {
        return Graph::from_edges(n, &[]);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Standard Prüfer decoding with a pointer + leaf variable.
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in &prufer {
        b.add_edge(leaf as u32, x as u32);
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    // The last two remaining leaves: `leaf` and vertex n-1.
    b.add_edge(leaf as u32, (n - 1) as u32);
    b.build()
}

/// Random `d`-regular *simple* graph on `n` vertices via the configuration
/// model with double-edge-swap repair.
///
/// Half-edge stubs are paired uniformly; self-loops and parallel edges are
/// then removed by randomized double-edge swaps, which preserve all degrees.
/// The result is close to (though not exactly) uniform over simple
/// `d`-regular graphs — ample for the mixing-shape experiments, which only
/// need typical Δ-regular topologies.
///
/// # Panics
/// Panics if `n * d` is odd, `d >= n`, or the repair fails to converge
/// within an internal budget (pathological only for tiny `n` close to `d`).
pub fn random_regular(n: usize, d: usize, rng: &mut impl Rng) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even for a d-regular graph"
    );
    assert!(d < n, "need d < n for a simple d-regular graph");
    if d == 0 {
        return Graph::from_edges(n, &[]);
    }
    let m = n * d / 2;
    const RESTARTS: usize = 50;
    'restart: for _ in 0..RESTARTS {
        // Configuration model: pair up n*d half-edge stubs uniformly.
        let mut stubs: Vec<u32> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v as u32, d))
            .collect();
        stubs.shuffle(rng);
        let mut edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
        let norm = |u: u32, v: u32| (u.min(v), u.max(v));
        let mut counts: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::with_capacity(m);
        for &(u, v) in &edges {
            *counts.entry(norm(u, v)).or_insert(0) += 1;
        }
        let is_bad = |counts: &std::collections::HashMap<(u32, u32), u32>, u: u32, v: u32| {
            u == v || counts[&norm(u, v)] > 1
        };
        let budget = 200 * m + 1000;
        for _ in 0..budget {
            let bad: Vec<usize> = (0..m)
                .filter(|&i| is_bad(&counts, edges[i].0, edges[i].1))
                .collect();
            if bad.is_empty() {
                return Graph::from_edges(n, &edges);
            }
            let i = bad[rng.random_range(0..bad.len())];
            let j = rng.random_range(0..m);
            if i == j {
                continue;
            }
            let (u, v) = edges[i];
            let (x, y) = edges[j];
            // Swap to (u, x), (v, y) or (u, y), (v, x) at random.
            let ((a, b), (c, e)) = if rng.random_bool(0.5) {
                ((u, x), (v, y))
            } else {
                ((u, y), (v, x))
            };
            if a == b || c == e {
                continue;
            }
            // Remove the old pair from the counts, then require both new
            // edges to be absent (also catches the (a,b) == (c,e) case).
            *counts.get_mut(&norm(u, v)).expect("edge present") -= 1;
            *counts.get_mut(&norm(x, y)).expect("edge present") -= 1;
            let fresh = counts.get(&norm(a, b)).copied().unwrap_or(0) == 0
                && counts.get(&norm(c, e)).copied().unwrap_or(0) == 0
                && norm(a, b) != norm(c, e);
            if fresh {
                *counts.entry(norm(a, b)).or_insert(0) += 1;
                *counts.entry(norm(c, e)).or_insert(0) += 1;
                edges[i] = (a, b);
                edges[j] = (c, e);
            } else {
                *counts.get_mut(&norm(u, v)).expect("edge present") += 1;
                *counts.get_mut(&norm(x, y)).expect("edge present") += 1;
            }
        }
        continue 'restart;
    }
    panic!("failed to sample a simple {d}-regular graph on {n} vertices");
}

/// A "book" graph: `pages` triangles sharing the common edge `{0, 1}` —
/// small chromatic number but unbounded degree; a handy stress case for
/// LocalMetropolis' Δ-independence claim.
pub fn book(pages: usize) -> Graph {
    let mut b = GraphBuilder::new(pages + 2);
    b.add_edge(0, 1);
    for p in 0..pages {
        let v = (p + 2) as u32;
        b.add_edge(0, v);
        b.add_edge(1, v);
    }
    b.build()
}

/// Caterpillar: a path of `spine` vertices with `legs` pendant vertices on
/// each spine vertex. Maximum degree `legs + 2` with diameter `spine + 1`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b.add_edge((i - 1) as u32, i as u32);
    }
    for i in 0..spine {
        for l in 0..legs {
            b.add_edge(i as u32, (spine + i * legs + l) as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(traversal::diameter(&g), Some(5));
    }

    #[test]
    fn path_trivial_sizes() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(2).num_edges(), 1);
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(7);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2);
        assert_eq!(traversal::diameter(&g), Some(3));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.max_degree(), 3);
        // No edge inside parts.
        assert!(!g.has_edge(crate::VertexId(0), crate::VertexId(1)));
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(traversal::diameter(&g), Some(2));
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        let t = torus(4, 5);
        assert!(t.is_regular());
        assert_eq!(t.max_degree(), 4);
        assert_eq!(t.num_edges(), 2 * 20);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_vertices(), 16);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert_eq!(traversal::diameter(&g), Some(4));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = gnp(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = gnp(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 17, 64] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.num_edges(), n.saturating_sub(1));
            assert!(traversal::is_connected(&g));
        }
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, d) in [(10, 3), (20, 4), (16, 6), (9, 2)] {
            let g = random_regular(n, d, &mut rng);
            assert!(g.is_regular(), "not regular: n={n} d={d}");
            assert_eq!(g.max_degree(), d);
            // Simplicity: no duplicate edges.
            let mut seen = std::collections::HashSet::new();
            for (_, u, v) in g.edges() {
                let key = (u.0.min(v.0), u.0.max(v.0));
                assert!(seen.insert(key), "parallel edge in n={n} d={d}");
            }
        }
    }

    #[test]
    fn book_degree_unbounded() {
        let g = book(10);
        assert_eq!(g.max_degree(), 11);
        assert_eq!(g.num_vertices(), 12);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 3 + 12);
        assert_eq!(g.max_degree(), 5);
    }
}
