//! Breadth-first traversal, connectivity, distances, diameter, and balls.
//!
//! `diam(G)` is the yardstick of the paper's Theorem 1.3 lower bound, and
//! the `t`-ball `B_t(v)` is exactly the information horizon of a `t`-round
//! LOCAL protocol (property (27) of the paper).

use crate::{Graph, VertexId};
use std::collections::VecDeque;

/// Distance (in hops) used by BFS results; `u32::MAX` encodes "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src` to every vertex (`UNREACHABLE` if disconnected).
///
/// # Example
/// ```
/// use lsl_graph::{generators, traversal, VertexId};
/// let g = generators::path(4);
/// let d = traversal::bfs_distances(&g, VertexId(0));
/// assert_eq!(d, vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for u in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Shortest-path distance between two vertices, or `None` if disconnected.
pub fn distance(g: &Graph, u: VertexId, v: VertexId) -> Option<u32> {
    let d = bfs_distances(g, u)[v.index()];
    (d != UNREACHABLE).then_some(d)
}

/// Whether `g` is connected (vacuously true for the empty graph).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.num_vertices();
    if n == 0 {
        return true;
    }
    bfs_distances(g, VertexId(0))
        .iter()
        .all(|&d| d != UNREACHABLE)
}

/// Connected components as a vector of component ids (dense, 0-based).
pub fn components(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        let mut queue = VecDeque::from([VertexId(s as u32)]);
        while let Some(v) = queue.pop_front() {
            for u in g.neighbors(v) {
                if comp[u.index()] == u32::MAX {
                    comp[u.index()] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Eccentricity of `v`: the greatest distance from `v` to any vertex, or
/// `None` if the graph is disconnected.
pub fn eccentricity(g: &Graph, v: VertexId) -> Option<u32> {
    let d = bfs_distances(g, v);
    let mut ecc = 0;
    for &x in &d {
        if x == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(x);
    }
    Some(ecc)
}

/// Exact diameter via all-pairs BFS (`O(nm)`); `None` if disconnected,
/// `Some(0)` for graphs with ≤ 1 vertex.
pub fn diameter(g: &Graph) -> Option<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Some(0);
    }
    let mut diam = 0;
    for v in g.vertices() {
        diam = diam.max(eccentricity(g, v)?);
    }
    Some(diam)
}

/// Fast diameter *lower bound* via a double BFS sweep (exact on trees).
pub fn diameter_lower_bound(g: &Graph) -> Option<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Some(0);
    }
    let d0 = bfs_distances(g, VertexId(0));
    let (far, &dmax) = d0
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .expect("nonempty");
    if dmax == UNREACHABLE {
        return None;
    }
    eccentricity(g, VertexId(far as u32))
}

/// The radius-`r` ball `B_r(v) = { u : dist(u, v) <= r }`, in BFS order.
///
/// This is the set of vertices whose private randomness can influence the
/// output of `v` under an `r`-round LOCAL protocol.
pub fn ball(g: &Graph, v: VertexId, r: u32) -> Vec<VertexId> {
    let d = bfs_distances(g, v);
    let mut out: Vec<VertexId> = g
        .vertices()
        .filter(|u| d[u.index()] != UNREACHABLE && d[u.index()] <= r)
        .collect();
    out.sort_by_key(|u| (d[u.index()], u.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_cycle() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(distance(&g, VertexId(1), VertexId(4)), Some(3));
    }

    #[test]
    fn disconnected_detection() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(distance(&g, VertexId(0), VertexId(3)), None);
        let comp = components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn diameter_small_graphs() {
        assert_eq!(diameter(&generators::path(1)), Some(0));
        assert_eq!(diameter(&generators::path(10)), Some(9));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&generators::star(8)), Some(2));
        assert_eq!(diameter(&generators::cycle(9)), Some(4));
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        for n in [2usize, 5, 12, 33] {
            let g = generators::random_tree(n, &mut rng);
            assert_eq!(diameter_lower_bound(&g), diameter(&g), "n = {n}");
        }
    }

    #[test]
    fn ball_growth_on_path() {
        let g = generators::path(9);
        let b0 = ball(&g, VertexId(4), 0);
        assert_eq!(b0, vec![VertexId(4)]);
        let b2 = ball(&g, VertexId(4), 2);
        assert_eq!(b2.len(), 5);
        assert!(b2.contains(&VertexId(2)) && b2.contains(&VertexId(6)));
        let ball_all = ball(&g, VertexId(4), 100);
        assert_eq!(ball_all.len(), 9);
    }

    #[test]
    fn eccentricity_matches_diameter_extremes() {
        let g = generators::path(7);
        assert_eq!(eccentricity(&g, VertexId(0)), Some(6));
        assert_eq!(eccentricity(&g, VertexId(3)), Some(3));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::from_edges(0, &[]);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(0));
        assert_eq!(diameter_lower_bound(&g), Some(0));
        assert!(components(&g).is_empty());
    }
}
