//! Immutable CSR undirected (multi)graph.
//!
//! Vertices are dense indices `0..n`; edges have stable dense ids `0..m`.
//! Parallel edges and the distinction between *edge* incidences and
//! *neighbor vertices* matter here: the LocalMetropolis chain of the paper
//! flips an independent coin per **edge**, so a doubled edge filters twice.

use std::fmt;

/// Index of a vertex in a [`Graph`], dense in `0..n`.
///
/// A newtype so spins, colors, and counts cannot be confused with vertices.
///
/// # Example
/// ```
/// use lsl_graph::VertexId;
/// let v = VertexId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex index as a `usize`, for indexing into per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(i: u32) -> Self {
        VertexId(i)
    }
}

/// Index of an undirected edge in a [`Graph`], dense in `0..m`.
///
/// # Example
/// ```
/// use lsl_graph::EdgeId;
/// let e = EdgeId(0);
/// assert_eq!(e.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a `usize`, for indexing into per-edge arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable undirected (multi)graph in CSR form.
///
/// Self-loops are rejected at construction (an MRF edge activity between a
/// vertex and itself is never used by the paper and would make "independent
/// set" scheduling ill-defined). Parallel edges are allowed — the lifted
/// graphs `H^G` of Section 5.1 are explicitly multigraphs.
///
/// # Example
/// ```
/// use lsl_graph::{Graph, VertexId};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.degree(VertexId(1)), 2);
/// let nbrs: Vec<_> = g.neighbors(VertexId(1)).collect();
/// assert_eq!(nbrs, vec![VertexId(0), VertexId(2)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    num_vertices: u32,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// Flattened incidence lists: for each incidence, the neighbor vertex.
    adj_vertex: Vec<u32>,
    /// Flattened incidence lists: for each incidence, the edge id.
    adj_edge: Vec<u32>,
    /// Endpoints of each edge, `u <= v` is *not* guaranteed; stored as given.
    edges: Vec<(u32, u32)>,
    max_degree: u32,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_vertices)
            .field("m", &self.edges.len())
            .field("max_degree", &self.max_degree)
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range or any edge is a self-loop.
    ///
    /// # Example
    /// ```
    /// use lsl_graph::Graph;
    /// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    /// assert_eq!(g.num_edges(), 4);
    /// ```
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices as usize
    }

    /// Number of undirected edges `m = |E|` (parallel edges counted).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertices in index order.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.num_vertices).map(VertexId)
    }

    /// Iterator over all edge ids in index order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Endpoints `(u, v)` of edge `e`, in insertion order.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let (u, v) = self.edges[e.index()];
        (VertexId(u), VertexId(v))
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Neighbors of `v`, one entry per incident edge (so a parallel edge
    /// yields its endpoint twice).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        let i = v.index();
        self.adj_vertex[self.offsets[i] as usize..self.offsets[i + 1] as usize]
            .iter()
            .map(|&u| VertexId(u))
    }

    /// Incident `(EdgeId, neighbor)` pairs of `v`.
    #[inline]
    pub fn incident_edges(
        &self,
        v: VertexId,
    ) -> impl ExactSizeIterator<Item = (EdgeId, VertexId)> + '_ {
        let i = v.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        self.adj_edge[lo..hi]
            .iter()
            .zip(&self.adj_vertex[lo..hi])
            .map(|(&e, &u)| (EdgeId(e), VertexId(u)))
    }

    /// Whether `u` and `v` are adjacent (linear in `deg(u)`).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).any(|w| w == v)
    }

    /// Iterator over `(EdgeId, u, v)` triples.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i as u32), VertexId(u), VertexId(v)))
    }

    /// Whether `set` (given as a boolean mask over vertices) is an
    /// independent set: no edge has both endpoints in the set.
    ///
    /// # Panics
    /// Panics if `set.len() != n`.
    pub fn is_independent_set(&self, set: &[bool]) -> bool {
        assert_eq!(set.len(), self.num_vertices(), "mask length must be n");
        self.edges
            .iter()
            .all(|&(u, v)| !(set[u as usize] && set[v as usize]))
    }

    /// Whether the graph is Δ-regular for some Δ (true for the empty graph).
    pub fn is_regular(&self) -> bool {
        let n = self.num_vertices();
        if n == 0 {
            return true;
        }
        let d0 = self.degree(VertexId(0));
        self.vertices().all(|v| self.degree(v) == d0)
    }

    /// Sum of degrees (= 2m), useful for sanity checks.
    pub fn degree_sum(&self) -> usize {
        self.adj_vertex.len()
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
/// ```
/// use lsl_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(0, 1);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 range");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge `{u, v}`; parallel edges allowed.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, u: u32, v: u32) -> &mut Self {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        assert_ne!(u, v, "self-loops are not supported");
        self.edges.push((u, v));
        self
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut deg = vec![0u32; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let total = offsets[n] as usize;
        let mut adj_vertex = vec![0u32; total];
        let mut adj_edge = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let cu = cursor[u as usize] as usize;
            adj_vertex[cu] = v;
            adj_edge[cu] = e as u32;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adj_vertex[cv] = u;
            adj_edge[cv] = e as u32;
            cursor[v as usize] += 1;
        }
        let max_degree = deg.iter().copied().max().unwrap_or(0);
        Graph {
            num_vertices: n as u32,
            offsets,
            adj_vertex,
            adj_edge,
            edges: self.edges,
            max_degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_regular());
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(5, &[]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(VertexId(3)), 0);
        assert!(g.is_independent_set(&[true; 5]));
    }

    #[test]
    fn triangle_structure() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_regular());
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(!g.is_independent_set(&[true, true, false]));
        assert!(g.is_independent_set(&[true, false, false]));
    }

    #[test]
    fn parallel_edges_counted_twice() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(VertexId(0)), 2);
        let incident: Vec<_> = g.incident_edges(VertexId(0)).collect();
        assert_eq!(incident.len(), 2);
        assert_ne!(incident[0].0, incident[1].0);
        assert_eq!(incident[0].1, VertexId(1));
    }

    #[test]
    fn incident_edges_match_endpoints() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        for v in g.vertices() {
            for (e, u) in g.incident_edges(v) {
                let (a, b) = g.endpoints(e);
                assert!((a == v && b == u) || (a == u && b == v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        Graph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(g.degree_sum(), 2 * g.num_edges());
    }

    #[test]
    fn vertex_id_display() {
        assert_eq!(format!("{}", VertexId(7)), "v7");
        assert_eq!(format!("{:?}", EdgeId(2)), "e2");
    }
}
