//! Proper colorings as *schedules*.
//!
//! The chromatic-scheduler parallelization of Glauber dynamics (Gonzalez,
//! Low, Gretton, Guestrin, AISTATS 2011 — reference \[28\] of the paper)
//! partitions the vertices into color classes of a proper coloring and
//! updates one class per round. This module provides the greedy (Δ+1)
//! coloring used to build those classes, plus validation helpers.

use crate::{Graph, VertexId};

/// A proper vertex coloring: `colors[v]` is the class of vertex `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProperColoring {
    colors: Vec<u32>,
    num_classes: u32,
}

impl ProperColoring {
    /// Wraps an externally computed coloring after validating it.
    ///
    /// # Errors
    /// Returns `Err` with a description if lengths mismatch or some edge is
    /// monochromatic.
    pub fn new(g: &Graph, colors: Vec<u32>) -> Result<Self, String> {
        if colors.len() != g.num_vertices() {
            return Err(format!(
                "coloring has {} entries for {} vertices",
                colors.len(),
                g.num_vertices()
            ));
        }
        for (e, u, v) in g.edges() {
            if colors[u.index()] == colors[v.index()] {
                return Err(format!("edge {e:?} = ({u}, {v}) is monochromatic"));
            }
        }
        let num_classes = colors.iter().copied().max().map_or(0, |c| c + 1);
        Ok(ProperColoring {
            colors,
            num_classes,
        })
    }

    /// Class of vertex `v`.
    #[inline]
    pub fn color(&self, v: VertexId) -> u32 {
        self.colors[v.index()]
    }

    /// Number of classes used (`max color + 1`).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// The members of class `c`, in vertex order.
    pub fn class(&self, c: u32) -> Vec<VertexId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|&(_, &col)| col == c)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }

    /// Boolean mask of class `c` over all vertices.
    pub fn class_mask(&self, c: u32) -> Vec<bool> {
        self.colors.iter().map(|&col| col == c).collect()
    }

    /// Borrow the raw color array.
    pub fn as_slice(&self) -> &[u32] {
        &self.colors
    }
}

/// Greedy coloring in vertex order; uses at most Δ+1 classes.
///
/// # Example
/// ```
/// use lsl_graph::{coloring, generators};
/// let g = generators::cycle(6);
/// let col = coloring::greedy(&g);
/// assert!(col.num_classes() <= g.max_degree() + 1);
/// ```
pub fn greedy(g: &Graph) -> ProperColoring {
    let n = g.num_vertices();
    let mut colors = vec![u32::MAX; n];
    let mut used = vec![false; g.max_degree() + 1];
    for v in g.vertices() {
        for u in g.neighbors(v) {
            let c = colors[u.index()];
            if c != u32::MAX {
                used[c as usize] = true;
            }
        }
        let c = used.iter().position(|&b| !b).expect("Δ+1 colors suffice") as u32;
        colors[v.index()] = c;
        for u in g.neighbors(v) {
            let cu = colors[u.index()];
            if cu != u32::MAX {
                used[cu as usize] = false;
            }
        }
    }
    ProperColoring::new(g, colors).expect("greedy always yields a proper coloring")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_on_families() {
        for g in [
            generators::path(10),
            generators::cycle(9),
            generators::complete(5),
            generators::torus(4, 4),
            generators::star(7),
        ] {
            let col = greedy(&g);
            assert!(col.num_classes() <= g.max_degree() + 1);
            // Each class is an independent set.
            for c in 0..col.num_classes() as u32 {
                assert!(g.is_independent_set(&col.class_mask(c)));
            }
        }
    }

    #[test]
    fn classes_partition_vertices() {
        let g = generators::grid(3, 3);
        let col = greedy(&g);
        let total: usize = (0..col.num_classes() as u32)
            .map(|c| col.class(c).len())
            .sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn validation_rejects_monochromatic_edge() {
        let g = generators::path(3);
        assert!(ProperColoring::new(&g, vec![0, 0, 1]).is_err());
        assert!(ProperColoring::new(&g, vec![0, 1]).is_err());
        assert!(ProperColoring::new(&g, vec![0, 1, 0]).is_ok());
    }

    #[test]
    fn complete_graph_needs_n_classes() {
        let g = generators::complete(4);
        let col = greedy(&g);
        assert_eq!(col.num_classes(), 4);
    }

    #[test]
    fn bipartite_uses_two_classes() {
        let g = generators::cycle(8);
        let col = greedy(&g);
        assert_eq!(col.num_classes(), 2);
    }
}
