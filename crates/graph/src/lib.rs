//! Graph substrate for the `lsl` workspace.
//!
//! The paper "What can be sampled locally?" (Feng, Sun, Yin, PODC 2017)
//! defines every object — the communication network, the Markov random
//! field, and the lower-bound gadgets — on an undirected graph `G(V, E)`.
//! This crate provides that substrate:
//!
//! * [`Graph`]: an immutable, cache-friendly CSR representation of an
//!   undirected (multi)graph with stable edge identities (needed because the
//!   LocalMetropolis chain flips one shared coin *per edge*, including
//!   parallel edges of the lifted multigraphs of Section 5.1).
//! * [`generators`]: the graph families used throughout the paper's
//!   statements and our experiments (paths, cycles, tori, random Δ-regular
//!   graphs, ...).
//! * [`traversal`]: BFS, connectivity, distances and diameters — `diam(G)`
//!   is the yardstick of Theorem 1.3.
//! * [`coloring`]: greedy proper coloring, the substrate of the chromatic
//!   scheduler baseline (Gonzalez et al.).
//! * [`matching`]: random perfect matchings, the substrate of the
//!   Section 5.1 bipartite gadget.
//! * [`partition`]: owner-computes graph shards (contiguous / BFS /
//!   greedy edge-cut partitioners with cut and balance statistics), the
//!   substrate of the sharded execution backend.
//! * [`hypergraph`]: constraint-scope neighborhoods for the weighted local
//!   CSP extension of LubyGlauber.
//!
//! # Example
//!
//! ```
//! use lsl_graph::{generators, traversal};
//!
//! let g = generators::cycle(8);
//! assert_eq!(g.num_vertices(), 8);
//! assert_eq!(g.max_degree(), 2);
//! assert_eq!(traversal::diameter(&g), Some(4));
//! ```

#![warn(missing_docs)]

pub mod coloring;
pub mod generators;
mod graph;
pub mod hypergraph;
pub mod matching;
pub mod partition;
pub mod traversal;

pub use graph::{EdgeId, Graph, GraphBuilder, VertexId};
