//! Constraint-scope hypergraphs for weighted local CSPs.
//!
//! The paper's remark after Algorithm 1 extends LubyGlauber to weighted
//! CSPs by redefining the neighborhood as
//! `Γ(v) = { u ≠ v : ∃ constraint c with {u, v} ⊆ S_c }`, and the scheduled
//! set must be a *strongly independent set* of the hypergraph whose
//! hyperedges are the scopes `S_c`. This module materializes that derived
//! neighborhood structure.

use crate::{Graph, GraphBuilder, VertexId};

/// A hypergraph over vertices `0..n` given by its hyperedges (scopes).
#[derive(Clone, Debug)]
pub struct Hypergraph {
    n: usize,
    scopes: Vec<Vec<u32>>,
    /// For each vertex, the hyperedges containing it.
    incidence: Vec<Vec<u32>>,
}

impl Hypergraph {
    /// Builds a hypergraph on `n` vertices from scopes.
    ///
    /// # Panics
    /// Panics if any scope member is out of range or a scope repeats a
    /// vertex.
    pub fn new(n: usize, scopes: Vec<Vec<u32>>) -> Self {
        let mut incidence = vec![Vec::new(); n];
        for (ei, scope) in scopes.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &v in scope {
                assert!((v as usize) < n, "scope member {v} out of range");
                assert!(seen.insert(v), "scope repeats vertex {v}");
                incidence[v as usize].push(ei as u32);
            }
        }
        Hypergraph {
            n,
            scopes,
            incidence,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of hyperedges (scopes).
    pub fn num_scopes(&self) -> usize {
        self.scopes.len()
    }

    /// The members of scope `c`.
    pub fn scope(&self, c: usize) -> &[u32] {
        &self.scopes[c]
    }

    /// The scopes containing `v`.
    pub fn scopes_of(&self, v: VertexId) -> &[u32] {
        &self.incidence[v.index()]
    }

    /// The derived neighborhood `Γ(v) = { u ≠ v : share a scope with v }`,
    /// deduplicated and sorted.
    pub fn neighborhood(&self, v: VertexId) -> Vec<VertexId> {
        let mut out: Vec<u32> = self
            .scopes_of(v)
            .iter()
            .flat_map(|&c| self.scopes[c as usize].iter().copied())
            .filter(|&u| u != v.0)
            .collect();
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(VertexId).collect()
    }

    /// The *primal graph* (a.k.a. the square of the factor graph restricted
    /// to variables): an ordinary [`Graph`] with an edge `{u, v}` whenever
    /// `u` and `v` share a scope. LubyGlauber's strongly-independent-set
    /// scheduling is exactly independent-set scheduling on this graph.
    pub fn primal_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        let mut seen = std::collections::HashSet::new();
        for scope in &self.scopes {
            for i in 0..scope.len() {
                for j in (i + 1)..scope.len() {
                    let (u, v) = (scope[i].min(scope[j]), scope[i].max(scope[j]));
                    if seen.insert((u, v)) {
                        b.add_edge(u, v);
                    }
                }
            }
        }
        b.build()
    }

    /// Whether `set` (a vertex mask) is a strongly independent set: no two
    /// selected vertices share a scope.
    pub fn is_strongly_independent(&self, set: &[bool]) -> bool {
        assert_eq!(set.len(), self.n, "mask length must be n");
        self.scopes
            .iter()
            .all(|scope| scope.iter().filter(|&&v| set[v as usize]).count() <= 1)
    }

    /// Builds the hypergraph whose scopes are the closed neighborhoods
    /// `Γ⁺(v)` of a graph — the scope family of dominating-set constraints.
    pub fn closed_neighborhoods(g: &Graph) -> Self {
        let scopes = g
            .vertices()
            .map(|v| {
                let mut s: Vec<u32> = g.neighbors(v).map(|u| u.0).collect();
                s.push(v.0);
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        Hypergraph::new(g.num_vertices(), scopes)
    }

    /// Builds the hypergraph whose scopes are the edges of a graph; the
    /// strongly-independent-set condition then degenerates to the ordinary
    /// independent-set condition.
    pub fn from_graph_edges(g: &Graph) -> Self {
        let scopes = g.edges().map(|(_, u, v)| vec![u.0, v.0]).collect();
        Hypergraph::new(g.num_vertices(), scopes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_hypergraph_matches_graph() {
        let g = generators::cycle(5);
        let h = Hypergraph::from_graph_edges(&g);
        assert_eq!(h.num_scopes(), 5);
        for v in g.vertices() {
            let mut nbrs: Vec<_> = g.neighbors(v).collect();
            nbrs.sort();
            assert_eq!(h.neighborhood(v), nbrs);
        }
        // Strong independence == ordinary independence for edge scopes.
        let mask = [true, false, true, false, false];
        assert!(h.is_strongly_independent(&mask));
        assert!(g.is_independent_set(&mask));
    }

    #[test]
    fn closed_neighborhood_scopes() {
        let g = generators::star(3);
        let h = Hypergraph::closed_neighborhoods(&g);
        assert_eq!(h.num_scopes(), 4);
        // Scope of the hub contains everything.
        assert_eq!(h.scope(0).len(), 4);
        // Leaves all share the hub's scope, so Γ(leaf) includes all others.
        assert_eq!(h.neighborhood(VertexId(1)).len(), 3);
    }

    #[test]
    fn primal_graph_of_triangle_scope() {
        let h = Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3]]);
        let p = h.primal_graph();
        assert_eq!(p.num_edges(), 4); // 01 02 12 23
        assert!(p.has_edge(VertexId(0), VertexId(2)));
        assert!(!p.has_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn strong_independence_stricter_than_pairwise() {
        let h = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        assert!(!h.is_strongly_independent(&[true, true, false]));
        assert!(h.is_strongly_independent(&[true, false, false]));
        assert!(h.is_strongly_independent(&[false, false, false]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_scope() {
        Hypergraph::new(2, vec![vec![0, 5]]);
    }
}
