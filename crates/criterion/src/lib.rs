//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crate registry, so this crate provides
//! the small slice of the criterion API the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of criterion's statistical engine.
//!
//! Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a fixed measurement window; the mean ns/iter is
//! printed in a criterion-like one-line format. Set `LSL_BENCH_WINDOW_MS`
//! to change the per-benchmark measurement window (default 300 ms).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement window per benchmark.
fn window() -> Duration {
    let ms = std::env::var("LSL_BENCH_WINDOW_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Calibrates and measures `f`, recording mean time per call.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up and calibration: run until ~10% of the window elapses
        // to estimate per-iteration cost.
        let win = window();
        let calib_budget = win / 10;
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < calib_budget || calib_iters == 0 {
            std::hint::black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let target_iters =
            ((win.as_secs_f64() * 0.9 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target_iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / target_iters as f64;
        self.iters = target_iters;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{label:<48} {:>14.1} ns/iter ({} iterations)",
        b.ns_per_iter, b.iters
    );
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), f);
        self
    }
}

/// Re-export for `use criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("LSL_BENCH_WINDOW_MS", "10");
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
