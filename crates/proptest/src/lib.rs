//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`arbitrary::any`],
//! [`option::of`], the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]` header), the [`prop_oneof!`] and
//! [`prop_compose!`] strategy builders, and the `prop_assert*` macros.
//!
//! No shrinking: a failing case panics with the sampled inputs in the
//! message, which is enough to reproduce (sampling is deterministic in
//! the case index).

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The test-case generator abstraction: a recipe for sampling values.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every sampled value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// A strategy sampling an inner strategy built from the outer value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API compatibility).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy producing a constant.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                rng.random_range(lo..=hi)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        // Interpolate directly: degenerate ranges (`x..=x`) are legal
        // constant strategies, and adding an epsilon to the end would be
        // a no-op for |end| ≥ 2 anyway.
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let u: f64 = rng.random();
        lo + u * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{StdRng, Strategy};
    use rand::{RngExt, Standard};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        fn any() -> AnyStrategy<Self>;
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Standard> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random()
        }
    }

    impl<T: Standard> Arbitrary for T {
        fn any() -> AnyStrategy<T> {
            AnyStrategy(PhantomData)
        }
    }

    /// The canonical strategy for `T`: full-range integers, unit-interval
    /// floats, fair booleans.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::any()
    }
}

/// A strategy defined by a sampling closure — the building block of
/// [`prop_compose!`].
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// A uniform choice among boxed strategies — what [`prop_oneof!`]
/// builds. (The real crate supports weighted arms; the workspace only
/// uses uniform ones.)
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.random_range(0..self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// A uniform choice among the given strategies (all must share one
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        #[allow(unused_imports)]
        use $crate::Strategy as _;
        $crate::Union(vec![$( ($strat).boxed() ),+])
    }};
}

/// Defines a function returning a composite strategy: evaluate each
/// argument strategy, then map the sampled values through the body.
///
/// ```
/// use proptest::prelude::*;
///
/// prop_compose! {
///     fn arb_point()(x in 0i64..10, y in 0i64..10) -> (i64, i64) {
///         (x, y)
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
            ($($arg:ident in $strat:expr),* $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $out> {
            $(let $arg = $strat;)*
            $crate::FnStrategy(move |__rng: &mut $crate::__rt::StdRng| {
                #[allow(unused_imports)]
                use $crate::Strategy as _;
                $(let $arg = $arg.sample(__rng);)*
                $body
            })
        }
    };
}

/// `Option` strategies.
pub mod option {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    /// Samples `None` half the time, `Some` of the inner strategy
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random::<f64>() < 0.5 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{collection, option};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test, per-case seed.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Assertion macro for property bodies (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Defines `#[test]` functions that run their body over sampled inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // (under #[test] in a real test module)
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::proptest! {
                @one $config, $(#[$meta])* fn $name($($arg in $strat),*) $body
            }
        )*
    };

    // Without a config header.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $crate::proptest! {
                @one $crate::ProptestConfig::default(),
                $(#[$meta])* fn $name($($arg in $strat),*) $body
            }
        )*
    };

    (
        @one $config:expr,
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),*) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            use $crate::__rt::SeedableRng as _;
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let seed = $crate::__rt::case_seed(stringify!($name), case);
                let mut __proptest_rng = $crate::__rt::StdRng::seed_from_u64(seed);
                $(let $arg = ($strat).sample(&mut __proptest_rng);)*
                let __inputs: String =
                    [$(format!("{} = {:?}", stringify!($arg), &$arg)),*].join(", ");
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case} of {} failed with inputs: {__inputs}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    };
}
