//! Summary statistics for experiment harnesses.

/// Mean of a sample (0 for an empty sample).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (0 for fewer than two points).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean.
pub fn std_error(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// A compact summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
#[must_use = "a measurement summary is only useful if inspected"]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(xs: &[f64]) -> Self {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            std_error: std_error(xs),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} se={:.4} min={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.std_error, self.min, self.max
        )
    }
}

/// Lag-`k` autocorrelation of a series (biased estimator); 0 when the
/// series is too short or constant.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    if xs.len() <= k + 1 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = xs
        .iter()
        .zip(&xs[k..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    num / denom
}

/// Simple linear regression slope of `y` on `x` (least squares);
/// `None` if `x` is constant or lengths mismatch.
///
/// Used to fit scaling exponents: e.g. regressing rounds on `log n`
/// recovers the `O(log n)` shape of Theorem 1.2.
pub fn regression_slope(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let (mx, my) = (mean(x), mean(y));
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    Some(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_error(&xs) - (5.0f64 / 3.0).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(std_error(&[]), 0.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn autocorrelation_signs() {
        // Alternating series: strong negative lag-1 autocorrelation.
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&alt, 1) < -0.9);
        // Constant series: defined as 0.
        assert_eq!(autocorrelation(&[2.0; 50], 1), 0.0);
        // Lag 0 of a non-constant series is 1.
        let xs = [1.0, 2.0, 1.5, 3.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_recovers_slope() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|a| 3.0 * a + 1.0).collect();
        let slope = regression_slope(&x, &y).unwrap();
        assert!((slope - 3.0).abs() < 1e-12);
        assert!(regression_slope(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(regression_slope(&[1.0], &[2.0]).is_none());
    }
}
