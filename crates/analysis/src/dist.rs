//! Total variation distance and empirical distributions.
//!
//! The paper's success criterion (§2.3) is
//! `dTV(µ, ν) = ½ Σ_σ |µ(σ) − ν(σ)| ≤ ε`; everything here serves
//! measuring that quantity.

use std::collections::HashMap;

/// Total variation distance between two dense distributions.
///
/// # Panics
/// Panics if lengths differ.
///
/// # Example
/// ```
/// let a = [0.5, 0.5];
/// let b = [1.0, 0.0];
/// assert_eq!(lsl_analysis::tv_distance(&a, &b), 0.5);
/// ```
pub fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must share a support");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Normalizes `v` in place to sum to 1.
///
/// # Panics
/// Panics if the sum is not positive.
pub fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    assert!(sum > 0.0, "cannot normalize a zero vector");
    for x in v {
        *x /= sum;
    }
}

/// Whether `v` is a probability distribution up to tolerance `tol`.
pub fn is_distribution(v: &[f64], tol: f64) -> bool {
    v.iter().all(|&x| x >= -tol) && (v.iter().sum::<f64>() - 1.0).abs() <= tol
}

/// An empirical distribution over `usize`-indexed outcomes, built from
/// samples.
///
/// # Example
/// ```
/// use lsl_analysis::EmpiricalDistribution;
/// let mut e = EmpiricalDistribution::new();
/// e.record(0);
/// e.record(0);
/// e.record(1);
/// assert_eq!(e.total(), 3);
/// assert!((e.frequency(0) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EmpiricalDistribution {
    counts: HashMap<usize, u64>,
    total: u64,
}

impl EmpiricalDistribution {
    /// An empty empirical distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `outcome`.
    pub fn record(&mut self, outcome: usize) {
        *self.counts.entry(outcome).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct outcomes observed.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Empirical frequency of `outcome`.
    pub fn frequency(&self, outcome: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&outcome).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Raw count of `outcome`.
    pub fn count(&self, outcome: usize) -> u64 {
        *self.counts.get(&outcome).unwrap_or(&0)
    }

    /// Total variation distance to a dense reference distribution whose
    /// support is `0..reference.len()`.
    ///
    /// Outcomes outside the reference support contribute their full
    /// empirical mass.
    pub fn tv_against_dense(&self, reference: &[f64]) -> f64 {
        if self.total == 0 {
            return 0.5 * reference.iter().sum::<f64>();
        }
        let mut acc = 0.0;
        // |emp - ref| over the reference support.
        for (i, &p) in reference.iter().enumerate() {
            acc += (self.frequency(i) - p).abs();
        }
        // Empirical mass outside the reference support.
        for (&outcome, &c) in &self.counts {
            if outcome >= reference.len() {
                acc += c as f64 / self.total as f64;
            }
        }
        0.5 * acc
    }

    /// Total variation distance to another empirical distribution.
    pub fn tv_against(&self, other: &EmpiricalDistribution) -> f64 {
        let keys: std::collections::HashSet<usize> = self
            .counts
            .keys()
            .chain(other.counts.keys())
            .copied()
            .collect();
        0.5 * keys
            .into_iter()
            .map(|k| (self.frequency(k) - other.frequency(k)).abs())
            .sum::<f64>()
    }

    /// Iterator over `(outcome, count)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

impl Extend<usize> for EmpiricalDistribution {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<usize> for EmpiricalDistribution {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut e = EmpiricalDistribution::new();
        e.extend(iter);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_basic_identities() {
        let a = [0.25, 0.25, 0.5];
        assert_eq!(tv_distance(&a, &a), 0.0);
        let b = [0.5, 0.25, 0.25];
        assert!((tv_distance(&a, &b) - 0.25).abs() < 1e-12);
        // TV is symmetric.
        assert_eq!(tv_distance(&a, &b), tv_distance(&b, &a));
        // Disjoint supports: TV = 1.
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "share a support")]
    fn tv_length_mismatch() {
        tv_distance(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn normalize_works() {
        let mut v = [2.0, 2.0];
        normalize(&mut v);
        assert_eq!(v, [0.5, 0.5]);
        assert!(is_distribution(&v, 1e-12));
        assert!(!is_distribution(&[0.5, 0.6], 1e-12));
    }

    #[test]
    fn empirical_tv_converges() {
        // Empirical distribution of a fair coin approaches the truth.
        let mut e = EmpiricalDistribution::new();
        for i in 0..10_000 {
            e.record(i % 2);
        }
        assert!(e.tv_against_dense(&[0.5, 0.5]) < 1e-9);
    }

    #[test]
    fn empirical_mass_outside_support_counts() {
        let e: EmpiricalDistribution = [0usize, 5].into_iter().collect();
        // Reference support {0}: outcome 5 contributes half its mass.
        let tv = e.tv_against_dense(&[1.0]);
        assert!((tv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_vs_empirical() {
        let a: EmpiricalDistribution = [0usize, 0, 1, 1].into_iter().collect();
        let b: EmpiricalDistribution = [0usize, 0, 0, 0].into_iter().collect();
        assert!((a.tv_against(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.tv_against(&a), 0.0);
    }

    #[test]
    fn empty_empirical() {
        let e = EmpiricalDistribution::new();
        assert_eq!(e.total(), 0);
        assert_eq!(e.frequency(3), 0.0);
        assert!((e.tv_against_dense(&[1.0]) - 0.5).abs() < 1e-12);
    }
}
