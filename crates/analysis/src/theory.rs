//! The paper's closed-form bounds and thresholds, as executable code.
//!
//! These functions generate the "figure" series of experiment E4 and give
//! every mixing experiment its predicted round budget:
//!
//! * Theorem 3.2: `τ(ε) = O(1/((1−α)γ) · log(n/ε))` for LubyGlauber under
//!   Dobrushin's condition, with `γ = 1/(Δ+1)` for the Luby step;
//! * §4.2.2 inequality (13): the one-step contraction margin of the *local*
//!   LocalMetropolis coupling, positive for `q ≥ α∆ + 3` with
//!   `α > α* ≈ 3.634` (root of `α = 2e^{1/α} + 1`);
//! * §4.2.3 inequality (26): the margin of the *global* coupling, positive
//!   in the limit for `α > 2 + √2`;
//! * §4.2.1: the ideal-coupling expected disagreement on a Δ-regular tree,
//!   whose crossing also pins `2 + √2`.

/// Upper bound on the LubyGlauber mixing time from the proof of Theorem
/// 3.2: `T = T₁ + T₂` with `T₁ = ⌈ln(4n/ε)/γ⌉` and
/// `T₂ = ⌈ln(2n/ε)/((1−α)γ)⌉`, where `γ` lower-bounds `Pr[v ∈ I]`.
///
/// # Panics
/// Panics unless `0 < gamma <= 1`, `0 <= alpha < 1`, `eps > 0`, `n >= 1`.
pub fn luby_glauber_mixing_bound(n: usize, eps: f64, alpha: f64, gamma: f64) -> usize {
    assert!(n >= 1 && eps > 0.0, "need n >= 1 and eps > 0");
    assert!(
        (0.0..1.0).contains(&alpha),
        "Dobrushin alpha must be in [0,1)"
    );
    assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
    let n = n as f64;
    let t1 = ((4.0 * n / eps).ln() / gamma).ceil();
    let t2 = ((2.0 * n / eps).ln() / ((1.0 - alpha) * gamma)).ceil();
    (t1 + t2) as usize
}

/// The Luby-step scheduling probability lower bound `γ = 1/(Δ+1)`
/// (a vertex is a local maximum of iid uniforms among its inclusive
/// neighborhood with probability exactly `1/(deg(v)+1) ≥ 1/(Δ+1)`).
pub fn luby_gamma(delta: usize) -> f64 {
    1.0 / (delta as f64 + 1.0)
}

/// The one-step contraction margin of the *local* coupling, the LHS of the
/// paper's inequality (13):
/// `(1 − Δ/q)(1 − 3/q)^Δ − (2Δ/q)(1 − 2/q)^Δ`.
///
/// Positive margin ⇒ the path-coupling condition holds with δ = margin.
pub fn local_coupling_margin(q: f64, delta: f64) -> f64 {
    (1.0 - delta / q) * (1.0 - 3.0 / q).powf(delta)
        - (2.0 * delta / q) * (1.0 - 2.0 / q).powf(delta)
}

/// The Δ → ∞ limit of [`local_coupling_margin`] at `q = αΔ`:
/// `(1 − 1/α) e^{−3/α} − (2/α) e^{−2/α}`.
pub fn local_margin_limit(alpha: f64) -> f64 {
    (1.0 - 1.0 / alpha) * (-3.0 / alpha).exp() - (2.0 / alpha) * (-2.0 / alpha).exp()
}

/// The one-step contraction margin of the *global* coupling, the LHS of
/// the paper's inequality (26):
/// `(1 − Δ/q)(1 − 2/q)^Δ − Δ/(q − 2Δ + 2) · (1 − 2/q)^{Δ−1}`.
pub fn global_coupling_margin(q: f64, delta: f64) -> f64 {
    (1.0 - delta / q) * (1.0 - 2.0 / q).powf(delta)
        - delta / (q - 2.0 * delta + 2.0) * (1.0 - 2.0 / q).powf(delta - 1.0)
}

/// The Δ → ∞ limit of [`global_coupling_margin`] at `q = αΔ`:
/// `e^{−2/α} (1 − 1/α − 1/(α−2))`; zero exactly at `α = 2 + √2`.
pub fn global_margin_limit(alpha: f64) -> f64 {
    (-2.0 / alpha).exp() * (1.0 - 1.0 / alpha - 1.0 / (alpha - 2.0))
}

/// The §4.2.1 ideal-coupling expected number of disagreeing vertices after
/// one step on the Δ-regular tree:
/// `1 − (1 − Δ/q)(1 − 2/q)^Δ + Δ/(q − 2Δ) · (1 − 2/q)^{Δ−1}`.
///
/// Path coupling contracts when this is `< 1`.
///
/// # Panics
/// Panics if `q <= 2Δ` (the geometric series diverges).
pub fn ideal_coupling_disagreement(q: f64, delta: f64) -> f64 {
    assert!(q > 2.0 * delta, "ideal coupling needs q > 2Δ");
    1.0 - (1.0 - delta / q) * (1.0 - 2.0 / q).powf(delta)
        + delta / (q - 2.0 * delta) * (1.0 - 2.0 / q).powf(delta - 1.0)
}

/// The Δ → ∞ limit of `1 −` [`ideal_coupling_disagreement`] at `q = αΔ`:
/// `e^{−2/α} (1 − 1/α − 1/(α−2))` — the same expression as
/// [`global_margin_limit`], vanishing at `2 + √2`.
pub fn ideal_margin_limit(alpha: f64) -> f64 {
    global_margin_limit(alpha)
}

/// The threshold `2 + √2 ≈ 3.414` of Theorems 1.2/4.2.
pub fn ideal_threshold() -> f64 {
    2.0 + std::f64::consts::SQRT_2
}

/// The threshold `α* ≈ 3.6344`, the positive root of `α = 2e^{1/α} + 1`
/// (Lemma 4.4), computed by bisection to ~1e-12.
pub fn alpha_star() -> f64 {
    bisect(|a| a - 2.0 * (1.0 / a).exp() - 1.0, 3.0, 4.0, 1e-13)
}

/// Bisection root finder on `[lo, hi]`; requires a sign change.
///
/// # Panics
/// Panics if `f(lo)` and `f(hi)` have the same sign.
pub fn bisect(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    let (flo, fhi) = (f(lo), f(hi));
    assert!(
        flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
        "bisection requires a sign change"
    );
    let neg_at_lo = flo < 0.0;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if (fm < 0.0) == neg_at_lo {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Glauber dynamics mixing bound under Dobrushin's condition
/// (`τ(ε) = O(n/(1−α) · log(n/ε))`, the sequential baseline the paper's
/// Theorem 3.2 speeds up by Θ(n/Δ)).
pub fn glauber_mixing_bound(n: usize, eps: f64, alpha: f64) -> usize {
    luby_glauber_mixing_bound(n, eps, alpha, 1.0 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_star_is_the_fixed_point() {
        let a = alpha_star();
        assert!((a - (2.0 * (1.0 / a).exp() + 1.0)).abs() < 1e-10);
        assert!((a - 3.6344).abs() < 1e-3, "alpha* = {a}");
        // And it is exactly where the local-margin limit vanishes.
        assert!(local_margin_limit(a).abs() < 1e-10);
    }

    #[test]
    fn ideal_threshold_is_2_plus_sqrt2() {
        let t = ideal_threshold();
        assert!(global_margin_limit(t).abs() < 1e-12);
        // Margin positive above, negative below.
        assert!(global_margin_limit(t + 0.05) > 0.0);
        assert!(global_margin_limit(t - 0.05) < 0.0);
    }

    #[test]
    fn local_margin_positive_above_alpha_star() {
        // For q = αΔ + 3 with α > α*, the margin is positive for all Δ
        // (paper Lemma 4.4 proof). Spot-check a grid.
        let a_star = alpha_star();
        for delta in [1.0, 5.0, 9.0, 50.0, 500.0] {
            let q = (a_star + 0.1) * delta + 3.0;
            assert!(
                local_coupling_margin(q, delta) > 0.0,
                "margin not positive at Δ = {delta}"
            );
        }
    }

    #[test]
    fn global_margin_positive_above_threshold_large_delta() {
        for delta in [9.0, 20.0, 100.0, 1000.0] {
            let q = 3.6 * delta; // between 2+√2 and 3.7
            assert!(
                global_coupling_margin(q, delta) > 0.0,
                "margin not positive at Δ = {delta}"
            );
        }
    }

    #[test]
    fn ideal_disagreement_crosses_one_near_threshold() {
        // For large Δ, the one-step expected disagreement < 1 iff
        // α > 2+√2.
        let delta = 2000.0;
        let above = ideal_coupling_disagreement((ideal_threshold() + 0.1) * delta, delta);
        let below = ideal_coupling_disagreement((ideal_threshold() - 0.1) * delta, delta);
        assert!(above < 1.0, "above = {above}");
        assert!(below > 1.0, "below = {below}");
    }

    #[test]
    fn mixing_bounds_scale_as_expected() {
        // Theorem 3.2: linear in Δ via γ = 1/(Δ+1); logarithmic in n.
        let t_d10 = luby_glauber_mixing_bound(1000, 0.01, 0.5, luby_gamma(10));
        let t_d20 = luby_glauber_mixing_bound(1000, 0.01, 0.5, luby_gamma(20));
        let ratio = t_d20 as f64 / t_d10 as f64;
        assert!((ratio - 21.0 / 11.0).abs() < 0.05, "ratio = {ratio}");
        let t_n = luby_glauber_mixing_bound(1000, 0.01, 0.5, 0.1);
        let t_n2 = luby_glauber_mixing_bound(1_000_000, 0.01, 0.5, 0.1);
        // log(n²)/log(n) ≈ 2 scaled toward additive constants.
        assert!(t_n2 < 2 * t_n, "log growth violated: {t_n} -> {t_n2}");
        // Glauber baseline is Θ(n/Δ) slower.
        let glauber = glauber_mixing_bound(1000, 0.01, 0.5);
        assert!(glauber > 50 * t_d10 / (10 + 1), "glauber = {glauber}");
    }

    #[test]
    fn luby_gamma_values() {
        assert_eq!(luby_gamma(0), 1.0);
        assert_eq!(luby_gamma(3), 0.25);
    }

    #[test]
    fn bisect_finds_sqrt() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "sign change")]
    fn bisect_requires_bracket() {
        bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "q > 2Δ")]
    fn ideal_coupling_domain() {
        ideal_coupling_disagreement(10.0, 5.0);
    }
}
