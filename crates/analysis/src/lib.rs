//! Distributional analysis for the `lsl` sampling experiments.
//!
//! Three jobs:
//!
//! * [`dist`] — total variation distance (the paper's correctness metric,
//!   §2.3) between dense, sparse, and empirical distributions;
//! * [`kernelops`] — operations on explicit Markov transition kernels:
//!   stationarity, detailed-balance residuals (the paper's Proposition 3.1
//!   and Theorem 4.1 claims, checked *exactly*), worst-start mixing curves
//!   `d(t)`, and spectral gaps of reversible chains;
//! * [`theory`] — the paper's closed-form quantities as code: Dobrushin
//!   mixing bounds (Theorem 3.2), the LocalMetropolis one-step contraction
//!   margins (inequalities (13) and (26)), the ideal-coupling expectation
//!   of §4.2.1, and the thresholds `α* ≈ 3.634` and `2 + √2` they induce;
//! * [`stats`] — summary statistics for experiment harnesses.
//!
//! # Example
//!
//! ```
//! use lsl_analysis::theory;
//!
//! // The local-coupling margin (13) changes sign at α* = root of
//! // α = 2e^{1/α} + 1 ≈ 3.6344.
//! let a = theory::alpha_star();
//! assert!((theory::local_margin_limit(a)).abs() < 1e-9);
//! assert!((a - 3.634).abs() < 1e-3);
//! ```

pub mod dist;
pub mod kernelops;
pub mod stats;
pub mod theory;

pub use dist::{tv_distance, EmpiricalDistribution};
pub use kernelops::Kernel;
