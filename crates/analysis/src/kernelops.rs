//! Operations on explicit Markov transition kernels.
//!
//! The paper's Proposition 3.1 and Theorem 4.1 assert that LubyGlauber and
//! LocalMetropolis are reversible with stationary distribution µ. On small
//! instances we *construct the kernels exactly* (see `lsl-core::kernel`)
//! and verify those claims with the tools here: detailed-balance
//! residuals, stationarity residuals, worst-start mixing curves `d(t)`,
//! and spectral gaps.

use crate::dist::tv_distance;

/// A row-stochastic transition kernel in sparse row form.
///
/// `rows[i]` lists `(j, P(i → j))` with positive probabilities.
#[derive(Clone, Debug)]
pub struct Kernel {
    rows: Vec<Vec<(usize, f64)>>,
}

impl Kernel {
    /// Builds a kernel from sparse rows.
    ///
    /// # Errors
    /// Returns a message if some row does not sum to 1 (tolerance `1e-9`)
    /// or an entry is negative or out of range.
    pub fn new(rows: Vec<Vec<(usize, f64)>>) -> Result<Self, String> {
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            let mut sum = 0.0;
            for &(j, p) in row {
                if j >= n {
                    return Err(format!("row {i}: column {j} out of range"));
                }
                if !(p >= 0.0) || !p.is_finite() {
                    return Err(format!("row {i}: invalid probability {p}"));
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(format!("row {i} sums to {sum}, not 1"));
            }
        }
        Ok(Kernel { rows })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Probability `P(i → j)` (linear scan of row `i`).
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.rows[i]
            .iter()
            .find(|&&(k, _)| k == j)
            .map_or(0.0, |&(_, p)| p)
    }

    /// Sparse row `i`.
    pub fn row(&self, i: usize) -> &[(usize, f64)] {
        &self.rows[i]
    }

    /// One step of distribution evolution: `out = dist · P`.
    ///
    /// # Panics
    /// Panics if `dist.len()` differs from the state count.
    pub fn apply(&self, dist: &[f64]) -> Vec<f64> {
        assert_eq!(dist.len(), self.rows.len());
        let mut out = vec![0.0; dist.len()];
        for (i, row) in self.rows.iter().enumerate() {
            let p_i = dist[i];
            if p_i == 0.0 {
                continue;
            }
            for &(j, p) in row {
                out[j] += p_i * p;
            }
        }
        out
    }

    /// Evolves a point mass at `start` for `t` steps.
    pub fn evolve_from(&self, start: usize, t: usize) -> Vec<f64> {
        let mut dist = vec![0.0; self.num_states()];
        dist[start] = 1.0;
        for _ in 0..t {
            dist = self.apply(&dist);
        }
        dist
    }

    /// Stationary distribution by power iteration from the uniform
    /// distribution, restricted to reachable mass.
    ///
    /// Suitable for aperiodic chains (all our samplers have self-loops).
    pub fn stationary_power(&self, max_iters: usize, tol: f64) -> Vec<f64> {
        let n = self.num_states();
        let mut dist = vec![1.0 / n as f64; n];
        for _ in 0..max_iters {
            let next = self.apply(&dist);
            let delta = tv_distance(&next, &dist);
            dist = next;
            if delta < tol {
                break;
            }
        }
        dist
    }

    /// Largest stationarity residual `|π P − π|_∞` for a candidate `π`.
    pub fn stationarity_residual(&self, pi: &[f64]) -> f64 {
        let image = self.apply(pi);
        image
            .iter()
            .zip(pi)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Largest detailed-balance residual
    /// `max_{i,j} |π_i P(i,j) − π_j P(j,i)|` over the sparse support —
    /// zero iff the chain is reversible w.r.t. `π`.
    pub fn detailed_balance_residual(&self, pi: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, p) in row {
                let forward = pi[i] * p;
                let backward = pi[j] * self.prob(j, i);
                worst = worst.max((forward - backward).abs());
            }
        }
        worst
    }

    /// Worst-start total variation distance to `pi` after `t` steps:
    /// `d(t) = max_i dTV(P^t(i, ·), π)`, optionally restricted to starting
    /// states listed in `starts` (e.g. feasible states only).
    pub fn worst_start_tv(&self, pi: &[f64], t: usize, starts: Option<&[usize]>) -> f64 {
        let all: Vec<usize>;
        let starts = match starts {
            Some(s) => s,
            None => {
                all = (0..self.num_states()).collect();
                &all
            }
        };
        starts
            .iter()
            .map(|&s| tv_distance(&self.evolve_from(s, t), pi))
            .fold(0.0, f64::max)
    }

    /// Exact mixing time `τ(ε) = min { t : d(t) ≤ ε }` by stepping the
    /// worst-start TV curve, up to `max_t`. Returns `None` if not mixed
    /// within the horizon.
    pub fn mixing_time(
        &self,
        pi: &[f64],
        eps: f64,
        max_t: usize,
        starts: Option<&[usize]>,
    ) -> Option<usize> {
        let all: Vec<usize>;
        let starts_slice = match starts {
            Some(s) => s,
            None => {
                all = (0..self.num_states()).collect();
                &all
            }
        };
        // Evolve all starts in lockstep to reuse work.
        let mut dists: Vec<Vec<f64>> = starts_slice
            .iter()
            .map(|&s| {
                let mut d = vec![0.0; self.num_states()];
                d[s] = 1.0;
                d
            })
            .collect();
        for t in 0..=max_t {
            let worst = dists.iter().map(|d| tv_distance(d, pi)).fold(0.0, f64::max);
            if worst <= eps {
                return Some(t);
            }
            if t == max_t {
                break;
            }
            for d in &mut dists {
                *d = self.apply(d);
            }
        }
        None
    }

    /// Spectral gap `1 − |λ₂|` of a chain *reversible* w.r.t. `pi`,
    /// restricted to the support of `pi`, via power iteration on the
    /// symmetrized kernel with deflation of the top eigenvector.
    ///
    /// Returns `None` if the support is trivial or iteration fails to
    /// produce a finite estimate.
    pub fn spectral_gap(&self, pi: &[f64], iters: usize) -> Option<f64> {
        let support: Vec<usize> = (0..self.num_states()).filter(|&i| pi[i] > 0.0).collect();
        let k = support.len();
        if k < 2 {
            return None;
        }
        let index_of: std::collections::HashMap<usize, usize> = support
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local))
            .collect();
        // Symmetrized operator S = D^{1/2} P D^{-1/2} on the support;
        // top eigenvector is sqrt(pi).
        let sqrt_pi: Vec<f64> = support.iter().map(|&i| pi[i].sqrt()).collect();
        let apply_s = |x: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; k];
            for (li, &gi) in support.iter().enumerate() {
                for &(gj, p) in &self.rows[gi] {
                    if let Some(&lj) = index_of.get(&gj) {
                        // S[li][lj] = sqrt(pi_i) P(i,j) / sqrt(pi_j)
                        out[lj] += x[li] * sqrt_pi[li] * p / sqrt_pi[lj];
                    }
                }
            }
            out
        };
        // Deterministic pseudo-random start orthogonal to sqrt(pi).
        let mut x: Vec<f64> = (0..k)
            .map(|i| {
                let mut s = i as u64 + 12345;
                // splitmix-style hash to floats in [-0.5, 0.5].
                s ^= s >> 33;
                s = s.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                s ^= s >> 33;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let mut lambda = 0.0;
        for _ in 0..iters {
            // Deflate sqrt(pi).
            let dot: f64 = x.iter().zip(&sqrt_pi).map(|(a, b)| a * b).sum();
            let norm_pi: f64 = sqrt_pi.iter().map(|a| a * a).sum();
            for (xi, pi_i) in x.iter_mut().zip(&sqrt_pi) {
                *xi -= dot / norm_pi * pi_i;
            }
            let y = apply_s(&x);
            let norm: f64 = y.iter().map(|a| a * a).sum::<f64>().sqrt();
            if norm == 0.0 {
                // The orthogonal complement is annihilated: λ₂ = 0.
                lambda = 0.0;
                break;
            }
            if !norm.is_finite() {
                return None;
            }
            let x_norm: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
            lambda = norm / x_norm;
            x = y.iter().map(|a| a / norm).collect();
        }
        lambda.is_finite().then_some(1.0 - lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(p: f64, q: f64) -> Kernel {
        Kernel::new(vec![vec![(0, 1.0 - p), (1, p)], vec![(0, q), (1, 1.0 - q)]]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Kernel::new(vec![vec![(0, 0.5)]]).is_err()); // row sum 0.5
        assert!(Kernel::new(vec![vec![(1, 1.0)]]).is_err()); // out of range
        assert!(Kernel::new(vec![vec![(0, 1.0)]]).is_ok());
    }

    #[test]
    fn two_state_stationary() {
        // Stationary of (p, q) flip chain is (q, p)/(p+q).
        let k = two_state(0.3, 0.1);
        let pi = k.stationary_power(10_000, 1e-14);
        assert!((pi[0] - 0.25).abs() < 1e-9, "pi = {pi:?}");
        assert!((pi[1] - 0.75).abs() < 1e-9);
        assert!(k.stationarity_residual(&pi) < 1e-9);
        // Any two-state chain is reversible.
        assert!(k.detailed_balance_residual(&pi) < 1e-9);
    }

    #[test]
    fn detailed_balance_detects_irreversibility() {
        // A directed 3-cycle with slight laziness: stationary uniform but
        // not reversible.
        let k = Kernel::new(vec![
            vec![(0, 0.1), (1, 0.9)],
            vec![(1, 0.1), (2, 0.9)],
            vec![(2, 0.1), (0, 0.9)],
        ])
        .unwrap();
        let pi = vec![1.0 / 3.0; 3];
        assert!(k.stationarity_residual(&pi) < 1e-12);
        assert!(k.detailed_balance_residual(&pi) > 0.1);
    }

    #[test]
    fn mixing_time_of_lazy_flip() {
        // Lazy fair flip: d(t) = (1/2)(1-2p)^t ... for p = 0.5 the chain
        // mixes in one step.
        let k = two_state(0.5, 0.5);
        let pi = vec![0.5, 0.5];
        assert_eq!(k.mixing_time(&pi, 1e-9, 10, None), Some(1));
        // Slow chain takes longer.
        let slow = two_state(0.05, 0.05);
        let t = slow.mixing_time(&pi, 0.01, 1000, None).unwrap();
        assert!(t > 10, "t = {t}");
    }

    #[test]
    fn worst_start_tv_monotone() {
        let k = two_state(0.2, 0.4);
        let pi = k.stationary_power(10_000, 1e-14);
        let mut last = f64::INFINITY;
        for t in 0..10 {
            let d = k.worst_start_tv(&pi, t, None);
            assert!(d <= last + 1e-12, "d(t) increased at t = {t}");
            last = d;
        }
    }

    #[test]
    fn spectral_gap_of_flip_chain() {
        // Eigenvalues of the (p, q) chain: 1 and 1-p-q.
        let k = two_state(0.3, 0.2);
        let pi = k.stationary_power(10_000, 1e-14);
        let gap = k.spectral_gap(&pi, 500).unwrap();
        assert!((gap - 0.5).abs() < 1e-6, "gap = {gap}");
    }

    #[test]
    fn spectral_gap_respects_support() {
        // State 2 is unreachable/null: restrict to {0, 1}.
        let k = Kernel::new(vec![
            vec![(0, 0.5), (1, 0.5)],
            vec![(0, 0.5), (1, 0.5)],
            vec![(0, 1.0)],
        ])
        .unwrap();
        let pi = vec![0.5, 0.5, 0.0];
        let gap = k.spectral_gap(&pi, 300).unwrap();
        assert!((gap - 1.0).abs() < 1e-6, "gap = {gap}");
    }

    #[test]
    fn evolve_from_point_mass() {
        let k = two_state(1.0, 1.0); // deterministic swap
        let d1 = k.evolve_from(0, 1);
        assert_eq!(d1, vec![0.0, 1.0]);
        let d2 = k.evolve_from(0, 2);
        assert_eq!(d2, vec![1.0, 0.0]);
    }
}
