//! Heat-bath updates engineered for grand couplings.
//!
//! A heat-bath resample is distributionally just "sample from the
//! conditional marginal", but *how* the randomness maps to the outcome
//! decides how well a shared-randomness (grand) coupling contracts:
//!
//! * inverse-CDF sampling is generic but shift-sensitive — for colorings,
//!   two chains whose available-color sets differ by one element pick
//!   different colors almost always, and coalescence stalls;
//! * the **permutation scheme** — walk a shared uniformly random
//!   permutation of `[q]` and take the first *available* spin — is the
//!   classic coupling-friendly equivalent for models whose positive
//!   marginal weights are all equal (proper/list colorings and every
//!   other hard-constraint CSP with indicator vertex activities): chains
//!   agree whenever their available sets agree, and disagreement spreads
//!   only with probability O(disagreeing neighbors / available colors).
//!
//! [`Resampler`] picks the scheme *per model* (never per state, so
//! coupled copies always take the same branch), and consumes exactly one
//! 64-bit draw from the step stream per update (the draw seeds a private
//! subgenerator), keeping coupled streams aligned regardless of internal
//! rejection sampling.

use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::{Mrf, Spin};

/// A coupling-friendly heat-bath resampler bound to a model.
#[derive(Clone, Debug)]
pub struct Resampler {
    uniform_marginals: bool,
    perm: Vec<u32>,
}

impl Resampler {
    /// Builds a resampler, detecting whether the model has uniform
    /// positive marginal weights (hard edge constraints + indicator-like
    /// vertex activities).
    pub fn new(mrf: &Mrf) -> Self {
        Resampler {
            uniform_marginals: has_uniform_marginals(mrf),
            perm: (0..mrf.q() as u32).collect(),
        }
    }

    /// Whether the permutation scheme is active.
    pub fn uses_permutation_scheme(&self) -> bool {
        self.uniform_marginals
    }

    /// Samples a spin from the (unnormalized) marginal `weights`,
    /// consuming exactly one 64-bit draw from `rng`. Returns `None` if
    /// all weights vanish.
    pub fn resample(&mut self, weights: &[f64], rng: &mut Xoshiro256pp) -> Option<Spin> {
        let sub_seed = rng.next();
        let mut sub = Xoshiro256pp::seed_from(sub_seed);
        if self.uniform_marginals {
            // Fisher–Yates with the shared subgenerator; the first
            // available spin in the permutation is uniform over the
            // available set.
            let q = self.perm.len();
            for (i, slot) in self.perm.iter_mut().enumerate() {
                *slot = i as u32;
            }
            for i in (1..q).rev() {
                let j = (sub.next() % (i as u64 + 1)) as usize;
                self.perm.swap(i, j);
            }
            self.perm
                .iter()
                .copied()
                .find(|&c| weights[c as usize] > 0.0)
        } else {
            lsl_mrf::model::sample_weighted(weights, &mut sub)
        }
    }
}

/// Whether every positive marginal weight of `mrf` is equal whatever the
/// boundary: hard edge constraints and indicator-like vertex activities.
pub fn has_uniform_marginals(mrf: &Mrf) -> bool {
    if !mrf.all_hard_constraints() {
        return false;
    }
    mrf.graph().vertices().all(|v| {
        let b = mrf.vertex_activity(v);
        let max = (0..mrf.q() as Spin).map(|c| b.get(c)).fold(0.0, f64::max);
        (0..mrf.q() as Spin).all(|c| {
            let x = b.get(c);
            x == 0.0 || x == max
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_graph::generators;
    use lsl_mrf::models;

    #[test]
    fn scheme_detection() {
        assert!(has_uniform_marginals(&models::proper_coloring(
            generators::path(3),
            4
        )));
        assert!(has_uniform_marginals(&models::list_coloring(
            generators::path(2),
            4,
            &[vec![0, 1], vec![2, 3]]
        )));
        // Hardcore has b = (1, λ): not indicator-like unless λ = 1.
        assert!(!has_uniform_marginals(&models::hardcore(
            generators::path(3),
            2.0
        )));
        assert!(has_uniform_marginals(&models::uniform_independent_set(
            generators::path(3)
        )));
        // Soft activities: never.
        assert!(!has_uniform_marginals(&models::ising(
            generators::path(2),
            0.5
        )));
    }

    #[test]
    fn permutation_scheme_uniform_over_available() {
        let mrf = models::proper_coloring(generators::path(2), 4);
        let mut rs = Resampler::new(&mrf);
        assert!(rs.uses_permutation_scheme());
        let weights = [0.0, 1.0, 1.0, 0.0];
        let mut rng = Xoshiro256pp::seed_from(3);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            let c = rs.resample(&weights, &mut rng).unwrap() as usize;
            counts[c] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 0);
        let frac = counts[1] as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn cdf_scheme_proportional() {
        let mrf = models::hardcore(generators::path(2), 3.0);
        let mut rs = Resampler::new(&mrf);
        assert!(!rs.uses_permutation_scheme());
        let weights = [1.0, 3.0];
        let mut rng = Xoshiro256pp::seed_from(5);
        let mut ones = 0usize;
        for _ in 0..40_000 {
            ones += rs.resample(&weights, &mut rng).unwrap() as usize;
        }
        let frac = ones as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn one_draw_per_update() {
        // Two identically seeded streams stay aligned across resamples
        // with different weight patterns.
        let mrf = models::proper_coloring(generators::path(2), 5);
        let mut rs_a = Resampler::new(&mrf);
        let mut rs_b = Resampler::new(&mrf);
        let mut rng_a = Xoshiro256pp::seed_from(7);
        let mut rng_b = Xoshiro256pp::seed_from(7);
        let wa = [1.0, 1.0, 0.0, 1.0, 0.0];
        let wb = [0.0, 1.0, 1.0, 1.0, 1.0];
        for _ in 0..50 {
            rs_a.resample(&wa, &mut rng_a);
            rs_b.resample(&wb, &mut rng_b);
            assert_eq!(rng_a.next(), rng_b.next());
            // (consume the same extra draw on both sides)
        }
    }

    #[test]
    fn coupled_resamples_agree_when_available_sets_agree() {
        let mrf = models::proper_coloring(generators::path(2), 6);
        let mut rs_a = Resampler::new(&mrf);
        let mut rs_b = Resampler::new(&mrf);
        let w = [0.0, 1.0, 1.0, 0.0, 1.0, 1.0];
        for seed in 0..100 {
            let mut rng_a = Xoshiro256pp::seed_from(seed);
            let mut rng_b = Xoshiro256pp::seed_from(seed);
            assert_eq!(rs_a.resample(&w, &mut rng_a), rs_b.resample(&w, &mut rng_b));
        }
    }

    #[test]
    fn returns_none_on_zero_weights() {
        let mrf = models::proper_coloring(generators::path(2), 3);
        let mut rs = Resampler::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(1);
        assert_eq!(rs.resample(&[0.0, 0.0, 0.0], &mut rng), None);
    }
}
