//! LCL *construction* protocols — the foil for the sampling lower bounds.
//!
//! Theorem 1.3's discussion: "In the LOCAL model it is trivial to
//! construct an independent set (because ∅ is an independent set). In
//! contrast ... sampling a uniform independent set is very much a global
//! task." And the classic Luby algorithm *constructs* a maximal
//! independent set in O(log n) rounds w.h.p. — while sampling a uniform
//! one needs Ω(diam). This module provides Luby's MIS as a
//! [`VertexProgram`] so the separation can be measured on the very same
//! lower-bound networks (experiment E13).

use lsl_local::program::{Outbox, VertexContext, VertexProgram};
use lsl_local::rng::VertexRng;

/// A vertex's status in Luby's MIS algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisStatus {
    /// Still competing.
    Undecided,
    /// Joined the independent set.
    In,
    /// Dominated by an `In` neighbor.
    Out,
}

/// One round's message: `(β, status)` with status encoded as
/// `0 = undecided, 1 = in, 2 = out`.
pub type MisMessage = (f64, u32);

/// Luby's maximal-independent-set algorithm as a vertex program.
///
/// Each round every undecided vertex draws `β_v`; local maxima among
/// undecided inclusive neighborhoods join the MIS; their neighbors drop
/// out. Terminates (all vertices decided) in `O(log n)` rounds w.h.p.
#[derive(Clone, Debug)]
pub struct LubyMisProgram {
    status: MisStatus,
    beta: f64,
}

impl VertexProgram for LubyMisProgram {
    type Message = MisMessage;
    type Output = MisStatus;
    type Config = ();

    fn init(_config: &(), _ctx: &VertexContext<'_>, _rng: &mut VertexRng) -> Self {
        LubyMisProgram {
            status: MisStatus::Undecided,
            beta: 0.0,
        }
    }

    fn send(
        &mut self,
        _config: &(),
        _ctx: &VertexContext<'_>,
        rng: &mut VertexRng,
    ) -> Outbox<MisMessage> {
        self.beta = rng.uniform_f64();
        let code = match self.status {
            MisStatus::Undecided => 0,
            MisStatus::In => 1,
            MisStatus::Out => 2,
        };
        Outbox::broadcast((self.beta, code))
    }

    fn receive(
        &mut self,
        _config: &(),
        ctx: &VertexContext<'_>,
        inbox: &[Option<MisMessage>],
        _rng: &mut VertexRng,
    ) {
        if self.status != MisStatus::Undecided {
            return;
        }
        let me = (self.beta, ctx.vertex().0);
        let mut local_max = true;
        let mut neighbor_in = false;
        for ((_, u), msg) in ctx.ports().zip(inbox.iter()) {
            let &(beta_u, code_u) = msg.as_ref().expect("everyone broadcasts");
            match code_u {
                1 => neighbor_in = true,
                0 if (beta_u, u.0) > me => {
                    local_max = false;
                }
                _ => {}
            }
        }
        if neighbor_in {
            self.status = MisStatus::Out;
        } else if local_max {
            self.status = MisStatus::In;
        }
    }

    fn output(&self) -> MisStatus {
        self.status
    }
}

/// Runs [`LubyMisProgram`] until all vertices are decided (or
/// `max_rounds`); returns the membership mask and the number of rounds
/// used, or `None` on timeout.
///
/// The returned set is always a *maximal* independent set.
pub fn run_luby_mis(
    graph: std::sync::Arc<lsl_graph::Graph>,
    seed: u64,
    max_rounds: usize,
) -> Option<(Vec<bool>, usize)> {
    let sim = lsl_local::runtime::Simulator::new(graph, seed);
    for rounds in 1..=max_rounds {
        let run = sim.run::<LubyMisProgram>(rounds);
        if run.outputs.iter().all(|&s| s != MisStatus::Undecided) {
            let mask = run.outputs.iter().map(|&s| s == MisStatus::In).collect();
            return Some((mask, rounds));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn is_maximal_independent(g: &lsl_graph::Graph, mask: &[bool]) -> bool {
        if !g.is_independent_set(mask) {
            return false;
        }
        // Maximality: every non-member has a member neighbor.
        g.vertices()
            .all(|v| mask[v.index()] || g.neighbors(v).any(|u| mask[u.index()]))
    }

    #[test]
    fn produces_maximal_independent_sets() {
        for (name, g) in [
            ("cycle9", generators::cycle(9)),
            ("torus5x5", generators::torus(5, 5)),
            ("star6", generators::star(6)),
            ("complete6", generators::complete(6)),
        ] {
            let g = Arc::new(g);
            for seed in 0..5 {
                let (mask, _) = run_luby_mis(Arc::clone(&g), seed, 200).expect("should terminate");
                assert!(is_maximal_independent(&g, &mask), "{name} seed {seed}");
            }
        }
    }

    #[test]
    fn terminates_in_logarithmic_rounds() {
        // O(log n) w.h.p.: for n = 512 random 6-regular, ≤ ~40 rounds is
        // very safe.
        let mut rng = StdRng::seed_from_u64(4);
        let g = Arc::new(generators::random_regular(512, 6, &mut rng));
        for seed in 0..3 {
            let (_, rounds) = run_luby_mis(Arc::clone(&g), seed, 200).expect("terminates");
            assert!(rounds <= 40, "rounds = {rounds}");
        }
    }

    #[test]
    fn isolated_vertices_join_immediately() {
        let g = Arc::new(lsl_graph::Graph::from_edges(3, &[]));
        let (mask, rounds) = run_luby_mis(g, 0, 10).unwrap();
        assert_eq!(mask, vec![true, true, true]);
        assert_eq!(rounds, 1);
    }
}
