//! Grand couplings and coalescence-time measurement.
//!
//! The paper's mixing upper bounds (Theorems 3.2 and 4.2) are proved by
//! coupling: if coupled copies of a chain started from any two states
//! coincide by time `T` with probability ≥ 1 − ε, then `τ(ε) ≤ T`. The
//! experimental counterpart is the *grand coupling*: run several copies
//! from different starts, feeding every copy the *same* randomness each
//! step, and record the round at which they all coincide.
//!
//! Our chains consume a fresh PRNG per step, seeded from a per-step key,
//! so the shared-randomness coupling is exact regardless of how many
//! draws each copy makes. For LocalMetropolis this realizes the identity
//! coupling of §4.2.2 (same proposals and coins); for heat-bath chains it
//! is the standard inverse-CDF grand coupling.

use crate::engine::replicas::ReplicaSet;
use crate::engine::SyncRule;
use crate::Chain;
use lsl_local::rng::{derive_seed, Xoshiro256pp};
use lsl_mrf::{Mrf, Spin};
use rand::RngExt;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Label for per-step coupling seeds.
const STEP_LABEL: u64 = 0x4350_4c53_5445_5000; // "CPLSTEP\0"

/// Result of a coalescence run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coalescence {
    /// All copies coincided at this step (1-based count of executed steps).
    At(usize),
    /// Copies still disagreed after the step budget.
    TimedOut,
}

impl Coalescence {
    /// The coalescence step, if any.
    pub fn step(self) -> Option<usize> {
        match self {
            Coalescence::At(t) => Some(t),
            Coalescence::TimedOut => None,
        }
    }
}

/// Runs the grand coupling on `copies` until all states coincide or
/// `max_steps` elapse. Every copy receives an identically seeded PRNG in
/// every step (derived from `master_seed` and the step index).
pub fn coalesce<C: Chain>(copies: &mut [C], master_seed: u64, max_steps: usize) -> Coalescence {
    assert!(!copies.is_empty(), "need at least one copy");
    if all_equal(copies) {
        return Coalescence::At(0);
    }
    for t in 0..max_steps {
        let step_seed = derive_seed(master_seed, STEP_LABEL, t as u64);
        for chain in copies.iter_mut() {
            let mut rng = Xoshiro256pp::seed_from(step_seed);
            chain.step(&mut rng);
        }
        if all_equal(copies) {
            return Coalescence::At(t + 1);
        }
    }
    Coalescence::TimedOut
}

fn all_equal<C: Chain>(copies: &[C]) -> bool {
    let first = copies[0].state();
    copies[1..].iter().all(|c| c.state() == first)
}

/// Standard adversarial start set for an MRF: the deterministic default
/// start, the "reversed" start (largest feasible spin per vertex), and
/// `extra` random starts drawn from the vertex activities.
pub fn adversarial_starts(mrf: &Mrf, extra: usize, seed: u64) -> Vec<Vec<Spin>> {
    let mut starts = Vec::with_capacity(extra + 2);
    starts.push(crate::single_site::default_start(mrf));
    let high: Vec<Spin> = mrf
        .graph()
        .vertices()
        .map(|v| {
            let b = mrf.vertex_activity(v);
            (0..mrf.q() as Spin)
                .rev()
                .find(|&c| b.get(c) > 0.0)
                .expect("positive entry exists")
        })
        .collect();
    starts.push(high);
    let mut rng = Xoshiro256pp::seed_from(derive_seed(seed, 0x53_54_41_52_54, 0)); // "START"
    for _ in 0..extra {
        starts.push(crate::single_site::arbitrary_start(mrf, &mut rng));
    }
    starts.dedup();
    starts
}

/// Runs the grand coupling of an engine rule as a coupled
/// [`ReplicaSet`] — all copies share one master seed, and the batch
/// computes each round's shared randomness once — until all states
/// coincide or `max_steps` elapse.
pub fn coalesce_batched<R: SyncRule>(
    mrf: &Arc<Mrf>,
    rule: R,
    starts: &[Vec<Spin>],
    master_seed: u64,
    max_steps: usize,
) -> Coalescence {
    coalesce_batched_observed(mrf, rule, starts, master_seed, max_steps, &mut |_| {
        ControlFlow::Continue(())
    })
}

/// [`coalesce_batched`] calling `observe` with the 1-based round count
/// after every executed round — the per-round hook the progress
/// reporting plugs into. Observation never perturbs the coupling; an
/// `observe` that returns [`ControlFlow::Break`] preempts the loop
/// (cancellation), reported as [`Coalescence::TimedOut`] — callers
/// that preempt discard the value anyway.
pub fn coalesce_batched_observed<R: SyncRule>(
    mrf: &Arc<Mrf>,
    rule: R,
    starts: &[Vec<Spin>],
    master_seed: u64,
    max_steps: usize,
    observe: &mut dyn FnMut(u64) -> ControlFlow<()>,
) -> Coalescence {
    let mut set = ReplicaSet::coupled(Arc::clone(mrf), rule, starts, master_seed);
    // Copies shard over all cores; the coupling is execution-independent.
    set.set_backend(crate::engine::Backend::Parallel { threads: 0 });
    if set.coalesced() {
        return Coalescence::At(0);
    }
    for t in 0..max_steps {
        set.step_all();
        let stop = observe(t as u64 + 1).is_break();
        if set.coalesced() {
            return Coalescence::At(t + 1);
        }
        if stop {
            return Coalescence::TimedOut;
        }
    }
    Coalescence::TimedOut
}

/// Batched counterpart of [`coalescence_times`]: `trials` independent
/// grand couplings of an engine rule, each a coupled replica set.
pub fn coalescence_times_batched<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    starts: &[Vec<Spin>],
    trials: usize,
    max_steps: usize,
    seed: u64,
) -> (Vec<usize>, usize) {
    coalescence_times_batched_observed(mrf, rule, starts, trials, max_steps, seed, &mut |_, _| {
        ControlFlow::Continue(())
    })
}

/// [`coalescence_times_batched`] reporting progress through `progress`
/// with `(rounds done, trials × max_steps)` — ticked every few round
/// slices inside each (potentially multi-million-round) coupling, and
/// snapped to the trial boundary when a trial coalesces early. The
/// sink observes the loop; it never changes the coupling.
#[allow(clippy::too_many_arguments)]
pub fn coalescence_times_batched_observed<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    starts: &[Vec<Spin>],
    trials: usize,
    max_steps: usize,
    seed: u64,
    progress: crate::mixing::ProgressSink<'_>,
) -> (Vec<usize>, usize) {
    let mut times = Vec::with_capacity(trials);
    let mut timeouts = 0;
    let total = (trials as u64) * (max_steps as u64);
    // Tick roughly every 1/8th of a trial budget, but never rarer than
    // every 1<<16 rounds: a 2M-round coupling must report while it runs.
    let tick = (max_steps / 8).clamp(1, 1 << 16) as u64;
    for trial in 0..trials {
        let base = (trial as u64) * (max_steps as u64);
        let master = derive_seed(seed, 0x545249414c, trial as u64); // "TRIAL"
        let mut stopped = false;
        let mut observe = |t: u64| {
            if t % tick == 0 {
                let flow = progress(base + t, total);
                stopped |= flow.is_break();
                return flow;
            }
            ControlFlow::Continue(())
        };
        match coalesce_batched_observed(mrf, rule.clone(), starts, master, max_steps, &mut observe)
        {
            Coalescence::At(t) => times.push(t),
            Coalescence::TimedOut => timeouts += 1,
        }
        if stopped || progress(base + max_steps as u64, total.max(1)).is_break() {
            // Preempted (cancellation): the caller discards the partial
            // tally, so skip the remaining trials.
            return (times, timeouts);
        }
    }
    if trials == 0 || max_steps == 0 {
        let _ = progress(1, 1);
    }
    (times, timeouts)
}

/// Measures coalescence times over `trials` independent grand couplings;
/// returns the observed times (timed-out runs are omitted) and the number
/// of timeouts.
pub fn coalescence_times<C: Chain>(
    mut make: impl FnMut(&[Spin]) -> C,
    starts: &[Vec<Spin>],
    trials: usize,
    max_steps: usize,
    seed: u64,
) -> (Vec<usize>, usize) {
    let mut times = Vec::with_capacity(trials);
    let mut timeouts = 0;
    for trial in 0..trials {
        let mut copies: Vec<C> = starts.iter().map(|s| make(s)).collect();
        match coalesce(
            &mut copies,
            derive_seed(seed, 0x545249414c, trial as u64),
            max_steps,
        ) {
            Coalescence::At(t) => times.push(t),
            Coalescence::TimedOut => timeouts += 1,
        }
    }
    (times, timeouts)
}

/// One-step path-coupling contraction estimate for a chain on colorings:
/// starting from a feasible pair `(X, Y)` differing at one uniformly
/// random vertex, couples one step with shared randomness and reports the
/// average change in Hamming distance. Negative drift corroborates the
/// path-coupling contractions of Lemmas 4.4/4.5.
pub fn one_step_drift<C: Chain>(
    mut make: impl FnMut(&[Spin]) -> C,
    base: &[Spin],
    disagree_at: usize,
    alternative: Spin,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    let mut other = base.to_vec();
    other[disagree_at] = alternative;
    for trial in 0..trials {
        let mut a = make(base);
        let mut b = make(&other);
        let step_seed = derive_seed(seed, STEP_LABEL ^ 0xABCD, trial as u64);
        let mut rng_a = Xoshiro256pp::seed_from(step_seed);
        let mut rng_b = Xoshiro256pp::seed_from(step_seed);
        a.step(&mut rng_a);
        b.step(&mut rng_b);
        let after = hamming(a.state(), b.state());
        total += after as f64 - 1.0;
    }
    total / trials as f64
}

/// Hamming distance between two configurations.
pub fn hamming(a: &[Spin], b: &[Spin]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Draws a uniformly random *proper* coloring pair differing at exactly
/// one vertex, by rejection from Glauber-equilibrated states; used to
/// seed [`one_step_drift`]. Returns `(base, vertex, alternative_spin)`.
pub fn random_disagreeing_pair(
    mrf: &Mrf,
    burn_in: usize,
    seed: u64,
) -> Option<(Vec<Spin>, usize, Spin)> {
    let mut rng = Xoshiro256pp::seed_from(seed);
    let mut chain = crate::engine::SyncChain::new(mrf, crate::engine::rules::GlauberRule, seed);
    chain.run(burn_in);
    let base = chain.state().to_vec();
    let n = base.len();
    for _ in 0..200 {
        let v = rng.random_range(0..n);
        let c = rng.random_range(0..mrf.q() as Spin);
        if c == base[v] {
            continue;
        }
        let mut alt = base.clone();
        alt[v] = c;
        if mrf.is_feasible(&alt) {
            return Some((base, v, c));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    // Grand couplings through the deprecated legacy constructors are
    // deliberately kept covered (the facade shims onto them).
    #![allow(deprecated)]

    use super::*;
    use crate::local_metropolis::LocalMetropolis;
    use crate::luby_glauber::LubyGlauber;
    use crate::single_site::GlauberChain;
    use lsl_graph::generators;
    use lsl_mrf::models;

    #[test]
    fn coalescence_detects_equal_starts() {
        let mrf = models::proper_coloring(generators::cycle(5), 6);
        let mut copies = vec![
            GlauberChain::with_state(&mrf, vec![0; 5]),
            GlauberChain::with_state(&mrf, vec![0; 5]),
        ];
        assert_eq!(coalesce(&mut copies, 1, 10), Coalescence::At(0));
    }

    #[test]
    fn glauber_grand_coupling_coalesces() {
        // Ample colors: the grand coupling coalesces quickly on a cycle.
        let mrf = models::proper_coloring(generators::cycle(6), 8);
        let starts = adversarial_starts(&mrf, 2, 7);
        let (times, timeouts) = coalescence_times(
            |s| GlauberChain::with_state(&mrf, s.to_vec()),
            &starts,
            5,
            20_000,
            11,
        );
        assert_eq!(timeouts, 0, "couplings timed out");
        assert!(!times.is_empty());
    }

    #[test]
    fn local_metropolis_identity_coupling_coalesces_fast() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 24);
        let starts = adversarial_starts(&mrf, 2, 3);
        let (times, timeouts) = coalescence_times(
            |s| LocalMetropolis::with_state(&mrf, s.to_vec()),
            &starts,
            5,
            5_000,
            13,
        );
        assert_eq!(timeouts, 0);
        let max = *times.iter().max().unwrap();
        assert!(max < 500, "coalescence too slow: {max}");
    }

    #[test]
    fn luby_glauber_coalesces() {
        let mrf = models::proper_coloring(generators::cycle(8), 6);
        let starts = adversarial_starts(&mrf, 1, 3);
        let (times, timeouts) = coalescence_times(
            |s| {
                let mut c = LubyGlauber::new(&mrf);
                c.set_state(s);
                c
            },
            &starts,
            5,
            20_000,
            17,
        );
        assert_eq!(timeouts, 0);
        assert!(!times.is_empty());
    }

    #[test]
    fn coupled_chains_share_randomness() {
        // Two copies from the SAME start must track each other exactly.
        let mrf = models::proper_coloring(generators::cycle(6), 5);
        let mut copies = [
            LocalMetropolis::with_state(&mrf, vec![0, 1, 0, 1, 0, 1]),
            LocalMetropolis::with_state(&mrf, vec![0, 1, 0, 1, 0, 1]),
        ];
        for t in 0..50 {
            let seed = derive_seed(5, STEP_LABEL, t);
            for c in copies.iter_mut() {
                let mut rng = Xoshiro256pp::seed_from(seed);
                c.step(&mut rng);
            }
            assert_eq!(copies[0].state(), copies[1].state(), "diverged at {t}");
        }
    }

    #[test]
    fn batched_grand_coupling_coalesces() {
        use crate::engine::rules::LocalMetropolisRule;
        let mrf = Arc::new(models::proper_coloring(generators::torus(4, 4), 24));
        let starts = adversarial_starts(&mrf, 2, 3);
        let (times, timeouts) =
            coalescence_times_batched(&mrf, &LocalMetropolisRule::new(), &starts, 5, 5_000, 13);
        assert_eq!(timeouts, 0);
        let max = *times.iter().max().unwrap();
        assert!(max < 500, "coalescence too slow: {max}");
    }

    #[test]
    fn batched_coalesce_detects_equal_starts() {
        use crate::engine::rules::GlauberRule;
        let mrf = Arc::new(models::proper_coloring(generators::cycle(5), 6));
        let starts = vec![vec![0; 5], vec![0; 5]];
        assert_eq!(
            coalesce_batched(&mrf, GlauberRule, &starts, 1, 10),
            Coalescence::At(0)
        );
    }

    #[test]
    fn batched_luby_glauber_coalesces() {
        use crate::engine::rules::LubyGlauberRule;
        let mrf = Arc::new(models::proper_coloring(generators::cycle(8), 6));
        let starts = adversarial_starts(&mrf, 1, 3);
        let (times, timeouts) =
            coalescence_times_batched(&mrf, &LubyGlauberRule::luby(), &starts, 5, 20_000, 17);
        assert_eq!(timeouts, 0);
        assert!(!times.is_empty());
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(&[0, 1, 2], &[0, 1, 2]), 0);
        assert_eq!(hamming(&[0, 1, 2], &[1, 1, 0]), 2);
    }

    #[test]
    fn adversarial_starts_shape() {
        let mrf = models::proper_coloring(generators::path(4), 3);
        let starts = adversarial_starts(&mrf, 3, 0);
        assert!(starts.len() >= 2);
        assert_eq!(starts[0], vec![0, 0, 0, 0]);
        assert_eq!(starts[1], vec![2, 2, 2, 2]);
    }

    #[test]
    fn drift_is_negative_with_ample_colors() {
        // Path coupling contraction: for q well above 2+√2 Δ, the
        // one-step drift of LocalMetropolis from a disagreeing pair is
        // negative.
        let mrf = models::proper_coloring(generators::cycle(8), 12);
        let (base, v, c) = random_disagreeing_pair(&mrf, 400, 3).expect("pair exists");
        let drift = one_step_drift(
            |s| LocalMetropolis::with_state(&mrf, s.to_vec()),
            &base,
            v,
            c,
            4000,
            21,
        );
        assert!(drift < 0.0, "drift = {drift}");
    }
}
