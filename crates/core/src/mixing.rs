//! Mixing measurement: empirical total variation against exact ground
//! truth, and round-budget estimation via coalescence.
//!
//! The batched entry points (`*_batched`) are the production path: they
//! advance all replicas through the step engine's
//! [`ReplicaSet`] in one
//! cache-friendly pass instead of constructing one chain per replica,
//! and they are what the sampler facade's job verbs
//! ([`SamplerBuilder::tv_curve`](crate::sampler::SamplerBuilder::tv_curve),
//! [`SamplerBuilder::coalescence`](crate::sampler::SamplerBuilder::coalescence))
//! run. The deprecated closure-based entry points remain for chains that
//! are not expressed as engine rules.

use crate::coupling::{adversarial_starts, coalescence_times};
use crate::engine::replicas::ReplicaSet;
use crate::engine::SyncRule;
use crate::Chain;
use lsl_analysis::stats::Summary;
use lsl_analysis::EmpiricalDistribution;
use lsl_local::rng::{derive_seed, Xoshiro256pp};
use lsl_mrf::gibbs::{encode_config, Enumeration};
use lsl_mrf::{Mrf, Spin};
use std::ops::ControlFlow;
use std::sync::Arc;

/// Cap on the spins held in memory at once by the batched runners;
/// replica batches are chunked to stay under it.
const BATCH_SPIN_BUDGET: usize = 1 << 22;

/// Round-slices per replica batch at which the observed entry points
/// report progress. Slicing only changes *when* the sink is called,
/// never the trajectory: engine rounds are keyed by the round counter,
/// so `run(a); run(b)` is bit-identical to `run(a + b)`.
const PROGRESS_SLICES: usize = 8;

/// A progress sink: called with `(work done, total work)` in abstract
/// work units that are monotone over the run and end at `total`.
/// The unit is entry-point-specific (replica-rounds for distribution
/// jobs, trial-rounds for coalescence); consumers should only rely on
/// monotonicity and the final `done == total` call.
///
/// The return value is the *preemption channel*:
/// [`ControlFlow::Continue`] keeps running,
/// [`ControlFlow::Break`] asks the loop to stop at the sink point —
/// the runner returns promptly with a partial value that the caller
/// (the service worker, on cancellation) discards. Because the sink is
/// only consulted *between* round slices and the engine's randomness
/// is counter-keyed, neither observing nor breaking can perturb the
/// trajectory of any replica that keeps running.
pub type ProgressSink<'a> = &'a mut dyn FnMut(u64, u64) -> ControlFlow<()>;

/// Runs `replicas` iid copies of an engine rule for `steps` rounds each
/// (in memory-bounded batches) and returns the empirical distribution of
/// final configurations. All replicas start from the deterministic
/// default start; see [`empirical_distribution_batched_from`] for models
/// whose default start is unsafe (e.g. list colorings, where a conflicted
/// start can empty a heat-bath marginal).
#[must_use]
pub fn empirical_distribution_batched<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    steps: usize,
    replicas: usize,
    seed: u64,
) -> EmpiricalDistribution {
    let start = crate::single_site::default_start(mrf);
    empirical_distribution_batched_from(mrf, rule, &start, steps, replicas, seed)
}

/// [`empirical_distribution_batched`] from an explicit common start.
///
/// # Panics
/// Panics if the start has the wrong length.
#[must_use]
pub fn empirical_distribution_batched_from<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    start: &[Spin],
    steps: usize,
    replicas: usize,
    seed: u64,
) -> EmpiricalDistribution {
    empirical_distribution_batched_observed(mrf, rule, start, steps, replicas, seed, &mut |_, _| {
        ControlFlow::Continue(())
    })
}

/// [`empirical_distribution_batched_from`] reporting progress through
/// `progress` — the long-running loop behind the service's
/// `Progress` events. Work units are replica-batch rounds: `total =
/// batches × steps`, ticked every few round-slices per batch.
///
/// The sink never changes the answer: batching and per-batch seeds are
/// identical to the unobserved entry point, and round-slicing is
/// invisible to the engine's counter-keyed randomness.
///
/// # Panics
/// Panics if the start has the wrong length.
pub fn empirical_distribution_batched_observed<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    start: &[Spin],
    steps: usize,
    replicas: usize,
    seed: u64,
    progress: ProgressSink<'_>,
) -> EmpiricalDistribution {
    let n = mrf.num_vertices().max(1);
    let chunk = (BATCH_SPIN_BUDGET / n).clamp(1, replicas.max(1));
    let batches = replicas.div_ceil(chunk).max(1) as u64;
    let total = batches * steps as u64;
    let slice = (steps / PROGRESS_SLICES).max(1);
    let mut emp = EmpiricalDistribution::new();
    let mut done = 0usize;
    let mut batch = 0u64;
    while done < replicas {
        let count = chunk.min(replicas - done);
        let starts: Vec<&[Spin]> = (0..count).map(|_| start).collect();
        let mut set = ReplicaSet::independent_from(
            Arc::clone(mrf),
            rule.clone(),
            &starts,
            derive_seed(seed, 0x4241_5443_48, batch), // "BATCH"
        );
        // Replicas shard over all cores; trajectories are unaffected
        // (engine determinism contract).
        set.set_backend(crate::engine::Backend::Parallel { threads: 0 });
        let mut ran = 0usize;
        while ran < steps {
            let now = slice.min(steps - ran);
            set.run(now);
            ran += now;
            if progress(batch * steps as u64 + ran as u64, total).is_break() {
                // Preempted (cancellation): the partial distribution is
                // discarded by the caller, so stop where we stand.
                return emp;
            }
        }
        for state in set.states() {
            emp.record(encode_config(state, mrf.q()));
        }
        done += count;
        batch += 1;
    }
    if steps == 0 || replicas == 0 {
        // The round loop never ticked; still promise `done == total`.
        let _ = progress(1, 1);
    }
    emp
}

/// Batched empirical total variation distance between a rule's
/// time-`steps` distribution and the exact Gibbs distribution.
#[must_use]
pub fn empirical_tv_batched<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    exact: &Enumeration,
    steps: usize,
    replicas: usize,
    seed: u64,
) -> f64 {
    let emp = empirical_distribution_batched(mrf, rule, steps, replicas, seed);
    emp.tv_against_dense(&exact.distribution())
}

/// Batched empirical TV curve at a ladder of step counts (fresh replicas
/// per rung, so points are independent).
#[must_use]
pub fn empirical_tv_curve_batched<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    exact: &Enumeration,
    step_ladder: &[usize],
    replicas: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    step_ladder
        .iter()
        .map(|&steps| {
            let tv = empirical_tv_batched(mrf, rule, exact, steps, replicas, seed ^ steps as u64);
            (steps, tv)
        })
        .collect()
}

/// Closure-based implementation shared by the deprecated entry points
/// (they must not call each other, or the deprecation lint fires inside
/// this crate).
fn empirical_distribution_impl<C: Chain>(
    make: &mut impl FnMut() -> C,
    q: usize,
    steps: usize,
    replicas: usize,
    seed: u64,
) -> EmpiricalDistribution {
    let mut emp = EmpiricalDistribution::new();
    for rep in 0..replicas {
        let mut chain = make();
        let mut rng = Xoshiro256pp::seed_from(derive_seed(seed, 0x454d50, rep as u64)); // "EMP"
        chain.run(steps, &mut rng);
        emp.record(encode_config(chain.state(), q));
    }
    emp
}

/// Runs `replicas` independent copies of a chain for `steps` steps each
/// and returns the empirical distribution of final configurations
/// (encoded as base-`q` indices).
#[deprecated(note = "use the sampler facade's job verb: \
            `Sampler::for_mrf(&mrf).algorithm(alg).seed(seed).distribution(steps, replicas)`")]
pub fn empirical_distribution<C: Chain>(
    mut make: impl FnMut() -> C,
    q: usize,
    steps: usize,
    replicas: usize,
    seed: u64,
) -> EmpiricalDistribution {
    empirical_distribution_impl(&mut make, q, steps, replicas, seed)
}

/// Empirical total variation distance between a chain's time-`steps`
/// distribution and the exact Gibbs distribution.
#[deprecated(note = "use the sampler facade's job verb: \
            `Sampler::for_mrf(&mrf).algorithm(alg).seed(seed).tv(&exact, steps, replicas)`")]
pub fn empirical_tv<C: Chain>(
    mut make: impl FnMut() -> C,
    exact: &Enumeration,
    steps: usize,
    replicas: usize,
    seed: u64,
) -> f64 {
    let emp = empirical_distribution_impl(&mut make, exact.q(), steps, replicas, seed);
    emp.tv_against_dense(&exact.distribution())
}

/// The empirical TV curve at a ladder of step counts (fresh replicas per
/// rung, so points are independent).
#[deprecated(note = "use the sampler facade's job verb: \
            `Sampler::for_mrf(&mrf).algorithm(alg).seed(seed).tv_curve(&exact, step_ladder, \
            replicas)`")]
pub fn empirical_tv_curve<C: Chain>(
    mut make: impl FnMut() -> C,
    exact: &Enumeration,
    step_ladder: &[usize],
    replicas: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    step_ladder
        .iter()
        .map(|&steps| {
            let emp = empirical_distribution_impl(
                &mut make,
                exact.q(),
                steps,
                replicas,
                seed ^ steps as u64,
            );
            (steps, emp.tv_against_dense(&exact.distribution()))
        })
        .collect()
}

/// Coalescence-round summary for a chain on an MRF from adversarial
/// starts: the experimental surrogate for τ(ε) in the scaling experiments
/// (by the coupling lemma, `Pr[not coalesced by t] ≥ d(t)` bounds mixing).
#[deprecated(note = "use the sampler facade's job verb: \
            `Sampler::for_mrf(&mrf).algorithm(alg).seed(seed).coalescence(trials, max_steps)`")]
pub fn coalescence_summary<C: Chain>(
    make: impl FnMut(&[Spin]) -> C,
    mrf: &Mrf,
    trials: usize,
    max_steps: usize,
    seed: u64,
) -> (Summary, usize) {
    let starts = adversarial_starts(mrf, 2, seed);
    let (times, timeouts) = coalescence_times(make, &starts, trials, max_steps, seed);
    let xs: Vec<f64> = times.iter().map(|&t| t as f64).collect();
    (Summary::of(&xs), timeouts)
}

/// Batched coalescence-round summary: grand couplings run as coupled
/// replica sets (shared randomness computed once per round).
pub fn coalescence_summary_batched<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    trials: usize,
    max_steps: usize,
    seed: u64,
) -> (Summary, usize) {
    coalescence_summary_batched_observed(mrf, rule, trials, max_steps, seed, &mut |_, _| {
        ControlFlow::Continue(())
    })
}

/// [`coalescence_summary_batched`] reporting progress through
/// `progress` — work units are trial-rounds (`total = trials ×
/// max_steps`; a trial that coalesces early skips ahead to its trial
/// boundary). The sink never changes the answer.
pub fn coalescence_summary_batched_observed<R: SyncRule + Clone>(
    mrf: &Arc<Mrf>,
    rule: &R,
    trials: usize,
    max_steps: usize,
    seed: u64,
    progress: ProgressSink<'_>,
) -> (Summary, usize) {
    let starts = adversarial_starts(mrf, 2, seed);
    let (times, timeouts) = crate::coupling::coalescence_times_batched_observed(
        mrf, rule, &starts, trials, max_steps, seed, progress,
    );
    let xs: Vec<f64> = times.iter().map(|&t| t as f64).collect();
    (Summary::of(&xs), timeouts)
}

#[cfg(test)]
mod tests {
    // The deprecated closure-based entry points are kept covered here.
    #![allow(deprecated)]

    use super::*;
    use crate::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule};
    use crate::local_metropolis::LocalMetropolis;
    use crate::luby_glauber::LubyGlauber;
    use lsl_graph::generators;
    use lsl_mrf::models;

    #[test]
    fn batched_tv_curve_decreases() {
        let mrf = Arc::new(models::proper_coloring(generators::cycle(4), 3));
        let exact = Enumeration::new(&mrf).unwrap();
        let curve = empirical_tv_curve_batched(
            &mrf,
            &LubyGlauberRule::luby(),
            &exact,
            &[0, 5, 40, 120],
            4000,
            99,
        );
        assert!(curve[0].1 > 0.5, "curve = {curve:?}");
        let last = curve.last().unwrap().1;
        assert!(last < 0.08, "final tv = {last}");
    }

    #[test]
    fn batched_tv_local_metropolis_converges() {
        let mrf = Arc::new(models::proper_coloring(generators::cycle(4), 4));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = empirical_tv_batched(&mrf, &LocalMetropolisRule::new(), &exact, 80, 8000, 7);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn batched_tv_single_site_converges() {
        // The single-site fast path through the batched backend still
        // targets the Gibbs distribution.
        let mrf = Arc::new(models::uniform_independent_set(generators::path(3)));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = empirical_tv_batched(&mrf, &GlauberRule, &exact, 80, 6000, 3);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn batched_chunking_covers_all_replicas() {
        // Chunk boundary: more replicas than one batch holds for this n
        // still yields exactly `replicas` recordings.
        let mrf = Arc::new(models::proper_coloring(generators::cycle(4), 3));
        let emp = empirical_distribution_batched(&mrf, &LubyGlauberRule::luby(), 3, 2500, 1);
        assert_eq!(emp.total(), 2500);
    }

    #[test]
    fn batched_coalescence_summary_reports() {
        let mrf = Arc::new(models::proper_coloring(generators::cycle(6), 9));
        let (summary, timeouts) =
            coalescence_summary_batched(&mrf, &LocalMetropolisRule::new(), 4, 50_000, 5);
        assert_eq!(timeouts, 0);
        assert!(summary.n > 0);
        assert!(summary.mean >= 1.0);
    }

    #[test]
    fn tv_curve_decreases_roughly() {
        let mrf = models::proper_coloring(generators::cycle(4), 3);
        let exact = Enumeration::new(&mrf).unwrap();
        let curve = empirical_tv_curve(
            || LubyGlauber::new(&mrf),
            &exact,
            &[0, 5, 40, 120],
            4000,
            99,
        );
        // Start is deterministic: TV(δ_x, µ) is near 1; by 120 rounds the
        // chain is close.
        assert!(curve[0].1 > 0.5, "curve = {curve:?}");
        let last = curve.last().unwrap().1;
        assert!(last < 0.08, "final tv = {last}");
    }

    #[test]
    fn coalescence_summary_reports() {
        let mrf = models::proper_coloring(generators::cycle(6), 9);
        let (summary, timeouts) = coalescence_summary(
            |s| LocalMetropolis::with_state(&mrf, s.to_vec()),
            &mrf,
            4,
            50_000,
            5,
        );
        assert_eq!(timeouts, 0);
        assert!(summary.n > 0);
        assert!(summary.mean >= 1.0);
    }
}
