//! Independent-set schedulers for parallel Glauber updates.
//!
//! The paper's generic parallelization (§3) updates, each round, a random
//! independent set `I`. Its Remark after Theorem 3.2 notes the analysis
//! holds for *any* subroutine that independently samples `I` with
//! `Pr[v ∈ I] ≥ γ > 0`, with mixing rate `O(1/((1−α)γ) · log(n/ε))`.
//! This module provides that abstraction and four instances:
//!
//! * [`LubyScheduler`] — the paper's "Luby step": iid `β_v ∈ [0, 1]`,
//!   select local maxima of the inclusive neighborhood. `Pr[v ∈ I] =
//!   1/(deg(v)+1) ≥ 1/(Δ+1)`.
//! * [`SingletonScheduler`] — one uniform vertex (`γ = 1/n`): recovers the
//!   sequential Glauber dynamics, used to cross-validate kernels.
//! * [`BernoulliFilterScheduler`] — each vertex volunteers with probability
//!   `p`, conflicts are dropped (both endpoints of a volunteering edge
//!   withdraw): `Pr[v ∈ I] = p(1−p)^deg(v)`, an ablation knob for γ.
//! * [`ChromaticScheduler`] — the chromatic scheduler of Gonzalez et al.
//!   \[28\]: cycles deterministically through the classes of a proper
//!   coloring. *Not* an independent sampler (it is a systematic scan), so
//!   Proposition 3.1's proof does not apply round-by-round — it is here as
//!   the baseline the paper contrasts with.

use crate::engine::RoundCtx;
use lsl_graph::coloring::ProperColoring;
use lsl_graph::{Graph, VertexId};
use lsl_local::rng::Xoshiro256pp;
use rand::RngExt;

/// A strategy for picking the set of vertices to update this round,
/// expressed as one sequential draw (the legacy formulation; the CSP
/// chains and the exact-kernel machinery still consume it).
pub trait Scheduler {
    /// Fills `out` (length `n`) with the membership mask of this round's
    /// update set. The set must be independent in `g`.
    fn sample(&mut self, g: &Graph, rng: &mut Xoshiro256pp, out: &mut [bool]);

    /// Scheduler name for experiment output.
    fn name(&self) -> &'static str;

    /// A lower bound on `Pr[v ∈ I]` (the γ of Theorem 3.2's remark), if
    /// the scheduler samples independently each round.
    fn gamma(&self, g: &Graph) -> Option<f64>;
}

/// The same selection logic in the step engine's per-vertex form: a
/// **mark** drawn from each vertex's private round stream, then a pure
/// **selection** predicate over the neighborhood's marks (plus the
/// round-shared stream for global draws). This is what lets LubyGlauber
/// rounds execute in parallel — or batched across replicas — without
/// changing the scheduled set's distribution. Schedulers are
/// `Send + Sync` so the rules that embed them make `Send` chains, and
/// `Clone + 'static` so the hot-path kernels can own a copy.
pub trait VertexScheduler: Send + Sync + Clone + 'static {
    /// The per-vertex mark published by the propose phase.
    type Mark: Copy + Send + Sync + Default;

    /// Draws vertex `v`'s mark from its private stream.
    fn mark(&self, v: VertexId, rng: &mut Xoshiro256pp) -> Self::Mark;

    /// Whether `v` is in this round's update set, as a pure function of
    /// the marks and the round context. Must yield an independent set.
    fn selected(&self, ctx: &RoundCtx, v: VertexId, marks: &[Self::Mark]) -> bool;

    /// For schedulers that select exactly one, mark-independent vertex
    /// per round: the engine then takes its single-site fast path (no
    /// propose sweep, no double-buffering) instead of resolving every
    /// vertex. Must agree with [`VertexScheduler::selected`].
    fn single_vertex(&self, ctx: &RoundCtx) -> Option<VertexId> {
        let _ = ctx;
        None
    }
}

/// The paper's Luby step (Algorithm 1, lines 3–4).
///
/// Every vertex draws an iid uniform `β_v`; `v` joins `I` iff
/// `β_v > max{β_u : u ∈ Γ(v)}`. Ties (probability ~2⁻⁵³ per pair) are
/// broken by vertex id, preserving independence.
#[derive(Clone, Debug, Default)]
pub struct LubyScheduler {
    betas: Vec<f64>,
}

impl LubyScheduler {
    /// Creates a Luby scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LubyScheduler {
    fn sample(&mut self, g: &Graph, rng: &mut Xoshiro256pp, out: &mut [bool]) {
        let n = g.num_vertices();
        self.betas.resize(n, 0.0);
        for slot in self.betas.iter_mut() {
            *slot = rng.uniform_f64();
        }
        for v in g.vertices() {
            let key = (self.betas[v.index()], v.0);
            out[v.index()] = g.neighbors(v).all(|u| key > (self.betas[u.index()], u.0));
        }
    }

    fn name(&self) -> &'static str {
        "Luby"
    }

    fn gamma(&self, g: &Graph) -> Option<f64> {
        Some(1.0 / (g.max_degree() as f64 + 1.0))
    }
}

impl VertexScheduler for LubyScheduler {
    type Mark = f64;

    fn mark(&self, _v: VertexId, rng: &mut Xoshiro256pp) -> f64 {
        rng.uniform_f64()
    }

    fn selected(&self, ctx: &RoundCtx, v: VertexId, marks: &[f64]) -> bool {
        let g = ctx.mrf().graph();
        let key = (marks[v.index()], v.0);
        g.neighbors(v).all(|u| key > (marks[u.index()], u.0))
    }
}

/// One uniform vertex per round: the sequential Glauber dynamics as a
/// degenerate scheduler (`γ = 1/n`).
#[derive(Clone, Debug, Default)]
pub struct SingletonScheduler;

impl Scheduler for SingletonScheduler {
    fn sample(&mut self, g: &Graph, rng: &mut Xoshiro256pp, out: &mut [bool]) {
        out.fill(false);
        let n = g.num_vertices();
        if n > 0 {
            out[rng.random_range(0..n)] = true;
        }
    }

    fn name(&self) -> &'static str {
        "Singleton"
    }

    fn gamma(&self, g: &Graph) -> Option<f64> {
        Some(1.0 / g.num_vertices().max(1) as f64)
    }
}

impl VertexScheduler for SingletonScheduler {
    type Mark = ();

    fn mark(&self, _v: VertexId, _rng: &mut Xoshiro256pp) {}

    fn selected(&self, ctx: &RoundCtx, v: VertexId, _marks: &[()]) -> bool {
        // Every vertex evaluates the same shared draw, so exactly one is
        // selected per round.
        ctx.mrf().num_vertices() > 0 && v == ctx.shared_vertex()
    }

    fn single_vertex(&self, ctx: &RoundCtx) -> Option<VertexId> {
        if ctx.mrf().num_vertices() == 0 {
            return None;
        }
        Some(ctx.shared_vertex())
    }
}

/// Bernoulli volunteering with conflict withdrawal: `v` volunteers with
/// probability `p` and stays in `I` iff no neighbor volunteered.
#[derive(Clone, Debug)]
pub struct BernoulliFilterScheduler {
    p: f64,
    volunteered: Vec<bool>,
}

impl BernoulliFilterScheduler {
    /// Creates the scheduler with volunteering probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "volunteering probability must be in (0, 1]"
        );
        BernoulliFilterScheduler {
            p,
            volunteered: Vec::new(),
        }
    }
}

impl Scheduler for BernoulliFilterScheduler {
    fn sample(&mut self, g: &Graph, rng: &mut Xoshiro256pp, out: &mut [bool]) {
        let n = g.num_vertices();
        self.volunteered.resize(n, false);
        for slot in self.volunteered.iter_mut() {
            *slot = rng.uniform_f64() < self.p;
        }
        for v in g.vertices() {
            out[v.index()] =
                self.volunteered[v.index()] && g.neighbors(v).all(|u| !self.volunteered[u.index()]);
        }
    }

    fn name(&self) -> &'static str {
        "BernoulliFilter"
    }

    fn gamma(&self, g: &Graph) -> Option<f64> {
        Some(self.p * (1.0 - self.p).powi(g.max_degree() as i32))
    }
}

impl VertexScheduler for BernoulliFilterScheduler {
    type Mark = bool;

    fn mark(&self, _v: VertexId, rng: &mut Xoshiro256pp) -> bool {
        rng.uniform_f64() < self.p
    }

    fn selected(&self, ctx: &RoundCtx, v: VertexId, marks: &[bool]) -> bool {
        marks[v.index()] && ctx.mrf().graph().neighbors(v).all(|u| !marks[u.index()])
    }
}

/// The chromatic scheduler of Gonzalez et al.: cycles through the classes
/// of a proper coloring deterministically.
#[derive(Clone, Debug)]
pub struct ChromaticScheduler {
    coloring: ProperColoring,
    next_class: u32,
}

impl ChromaticScheduler {
    /// Builds the scheduler from a proper coloring of the network.
    pub fn new(coloring: ProperColoring) -> Self {
        ChromaticScheduler {
            coloring,
            next_class: 0,
        }
    }

    /// Builds the scheduler from the greedy (Δ+1)-coloring of `g`.
    pub fn greedy(g: &Graph) -> Self {
        Self::new(lsl_graph::coloring::greedy(g))
    }

    /// Number of classes (rounds per full sweep).
    pub fn num_classes(&self) -> usize {
        self.coloring.num_classes()
    }
}

impl Scheduler for ChromaticScheduler {
    fn sample(&mut self, _g: &Graph, _rng: &mut Xoshiro256pp, out: &mut [bool]) {
        let class = self.next_class;
        self.next_class = (self.next_class + 1) % self.coloring.num_classes().max(1) as u32;
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.coloring.color(VertexId(i as u32)) == class;
        }
    }

    fn name(&self) -> &'static str {
        "Chromatic"
    }

    fn gamma(&self, _g: &Graph) -> Option<f64> {
        // Deterministic schedule: not an independent per-round sampler.
        None
    }
}

impl VertexScheduler for ChromaticScheduler {
    type Mark = ();

    fn mark(&self, _v: VertexId, _rng: &mut Xoshiro256pp) {}

    fn selected(&self, ctx: &RoundCtx, v: VertexId, _marks: &[()]) -> bool {
        // Engine form: the class is a function of the round index (the
        // legacy form keeps a cursor instead).
        let classes = self.coloring.num_classes().max(1) as u64;
        self.coloring.color(v) == (ctx.round() % classes) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_graph::generators;

    fn check_independent(g: &Graph, s: &mut impl Scheduler, seeds: u64) {
        let mut out = vec![false; g.num_vertices()];
        for seed in 0..seeds {
            let mut rng = Xoshiro256pp::seed_from(seed);
            s.sample(g, &mut rng, &mut out);
            assert!(
                g.is_independent_set(&out),
                "{} produced a dependent set",
                s.name()
            );
        }
    }

    #[test]
    fn all_schedulers_produce_independent_sets() {
        let g = generators::torus(4, 4);
        check_independent(&g, &mut LubyScheduler::new(), 50);
        check_independent(&g, &mut SingletonScheduler, 50);
        check_independent(&g, &mut BernoulliFilterScheduler::new(0.4), 50);
        check_independent(&g, &mut ChromaticScheduler::greedy(&g), 50);
    }

    #[test]
    fn luby_inclusion_probability_matches_theory() {
        // Pr[v ∈ I] = 1/(deg(v)+1) exactly: on a star, hub has 1/(n+1),
        // leaves 1/2.
        let g = generators::star(4);
        let mut sched = LubyScheduler::new();
        let mut out = vec![false; g.num_vertices()];
        let trials = 60_000;
        let mut hub = 0usize;
        let mut leaf = 0usize;
        for seed in 0..trials {
            let mut rng = Xoshiro256pp::seed_from(seed as u64);
            sched.sample(&g, &mut rng, &mut out);
            hub += out[0] as usize;
            leaf += out[1] as usize;
        }
        let hub_freq = hub as f64 / trials as f64;
        let leaf_freq = leaf as f64 / trials as f64;
        assert!((hub_freq - 0.2).abs() < 0.01, "hub = {hub_freq}");
        assert!((leaf_freq - 0.5).abs() < 0.01, "leaf = {leaf_freq}");
    }

    #[test]
    fn luby_gamma_lower_bound_holds() {
        // Empirical Pr[v ∈ I] ≥ γ = 1/(Δ+1) for every vertex on an
        // irregular graph.
        let g = generators::caterpillar(4, 2);
        let mut sched = LubyScheduler::new();
        let gamma = sched.gamma(&g).unwrap();
        let mut out = vec![false; g.num_vertices()];
        let trials = 40_000;
        let mut counts = vec![0usize; g.num_vertices()];
        for seed in 0..trials {
            let mut rng = Xoshiro256pp::seed_from(seed as u64);
            sched.sample(&g, &mut rng, &mut out);
            for (c, &b) in counts.iter_mut().zip(out.iter()) {
                *c += b as usize;
            }
        }
        for (v, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                freq >= gamma - 0.01,
                "vertex {v}: freq {freq} < gamma {gamma}"
            );
        }
    }

    #[test]
    fn chromatic_covers_everyone_per_sweep() {
        let g = generators::cycle(6);
        let mut sched = ChromaticScheduler::greedy(&g);
        let classes = sched.num_classes();
        let mut covered = [false; 6];
        let mut out = vec![false; 6];
        let mut rng = Xoshiro256pp::seed_from(0);
        for _ in 0..classes {
            sched.sample(&g, &mut rng, &mut out);
            for (c, &b) in covered.iter_mut().zip(out.iter()) {
                *c |= b;
            }
        }
        assert!(
            covered.iter().all(|&b| b),
            "a sweep must cover all vertices"
        );
    }

    #[test]
    fn singleton_picks_exactly_one() {
        let g = generators::complete(5);
        let mut out = vec![false; 5];
        let mut sched = SingletonScheduler;
        let mut rng = Xoshiro256pp::seed_from(8);
        for _ in 0..20 {
            sched.sample(&g, &mut rng, &mut out);
            assert_eq!(out.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn bernoulli_gamma_formula() {
        let g = generators::cycle(5);
        let s = BernoulliFilterScheduler::new(0.25);
        let gamma = s.gamma(&g).unwrap();
        assert!((gamma - 0.25 * 0.75 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn luby_empty_graph_selects_all() {
        // With no neighbors everyone is a local maximum.
        let g = lsl_graph::Graph::from_edges(3, &[]);
        let mut out = vec![false; 3];
        let mut sched = LubyScheduler::new();
        let mut rng = Xoshiro256pp::seed_from(0);
        sched.sample(&g, &mut rng, &mut out);
        assert!(out.iter().all(|&b| b));
    }
}
