//! Algorithm 2: the LocalMetropolis chain.
//!
//! Each step (paper §4):
//!
//! 1. **Propose** — every vertex independently proposes `σ_v ∈ [q]` with
//!    probability proportional to `b_v(σ_v)`;
//! 2. **Local filter** — every edge `e = uv` flips one shared coin that
//!    comes up HEADS with probability
//!    `Ã_e(σ_u, σ_v) · Ã_e(X_u, σ_v) · Ã_e(σ_u, X_v)`;
//! 3. a vertex accepts its proposal iff *all* incident edges passed.
//!
//! For proper colorings the filter degenerates to three hard rules
//! (reject if `σ_v = X_u`, `σ_v = σ_u`, or `X_v = σ_u` for some neighbor
//! `u`). The paper remarks that the third rule "looks redundant" but is
//! required for reversibility — [`LocalMetropolis::without_rule3`] exposes
//! that ablation, and the exact-kernel experiment E9 shows dropping it
//! yields a *wrong* stationary distribution.
//!
//! Theorem 4.2: for proper `q`-colorings with `q ≥ α∆`, `α > 2+√2`,
//! `∆ ≥ 9`, the chain mixes in `O(log(n/ε))` rounds — independent of Δ.

use crate::engine::rules::LocalMetropolisRule;
use crate::engine::{Backend, SyncChain, SyncRule};
use crate::Chain;
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// The LocalMetropolis chain (Algorithm 2), running on the step engine:
/// the chain logic lives in
/// [`LocalMetropolisRule`],
/// and this wrapper adapts it to the [`Chain`] interface (each step's
/// randomness is keyed by one draw from the caller's generator, so
/// identically seeded generators still realize the grand coupling).
///
/// # Example (preferred construction: the sampler facade)
/// ```
/// use lsl_core::prelude::*;
/// use lsl_graph::generators;
/// use lsl_mrf::models;
///
/// let mrf = models::proper_coloring(generators::complete_bipartite(6, 6), 24);
/// let mut sampler = Sampler::for_mrf(&mrf)
///     .algorithm(Algorithm::LocalMetropolis)
///     .seed(2)
///     .build()
///     .unwrap();
/// sampler.run(50);
/// assert!(mrf.is_feasible(sampler.state()));
/// ```
#[derive(Debug)]
pub struct LocalMetropolis {
    inner: SyncChain<LocalMetropolisRule>,
}

impl LocalMetropolis {
    /// Creates the chain with the deterministic default start.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::LocalMetropolis).build()`")]
    pub fn new(mrf: impl Into<Arc<Mrf>>) -> Self {
        LocalMetropolis {
            inner: crate::sampler::wire(
                mrf,
                LocalMetropolisRule::new(),
                0,
                None,
                Backend::Sequential,
            ),
        }
    }

    /// Creates the chain from an explicit start.
    ///
    /// # Panics
    /// Panics if the configuration has the wrong length.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::LocalMetropolis).start(state).build()`")]
    pub fn with_state(mrf: impl Into<Arc<Mrf>>, state: Vec<Spin>) -> Self {
        LocalMetropolis {
            inner: crate::sampler::wire(
                mrf,
                LocalMetropolisRule::new(),
                0,
                Some(state),
                Backend::Sequential,
            ),
        }
    }

    /// The ablated chain that *omits* the third filter factor
    /// `Ã_e(σ_u, X_v)` ("the neighbor proposed v's current color").
    ///
    /// The paper warns this rule is "necessary to guarantee the
    /// reversibility of the chain as well as the uniform stationary
    /// distribution"; experiment E9 verifies the failure exactly.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::LocalMetropolisNoRule3).build()`")]
    pub fn without_rule3(mrf: impl Into<Arc<Mrf>>) -> Self {
        LocalMetropolis {
            inner: crate::sampler::wire(
                mrf,
                LocalMetropolisRule::without_rule3(),
                0,
                None,
                Backend::Sequential,
            ),
        }
    }

    /// Whether the full (correct) filter is active.
    pub fn rule3_enabled(&self) -> bool {
        self.inner.rule().rule3_enabled()
    }

    /// The model this chain samples from.
    pub fn mrf(&self) -> &Mrf {
        self.inner.mrf()
    }

    /// Switches the execution backend (trajectories are unaffected — see
    /// the engine's determinism contract).
    pub fn set_backend(&mut self, backend: Backend) {
        self.inner.set_backend(backend);
    }

    /// The pass probability of edge `e` for current spins `(xu, xv)` and
    /// proposals `(su, sv)` under this chain's filter configuration.
    #[inline]
    pub fn pass_probability(
        &self,
        e: lsl_graph::EdgeId,
        xu: Spin,
        xv: Spin,
        su: Spin,
        sv: Spin,
    ) -> f64 {
        let a = self.inner.mrf().edge_activity(e);
        let p = a.normalized(su, sv) * a.normalized(xu, sv);
        if self.rule3_enabled() {
            p * a.normalized(su, xv)
        } else {
            p
        }
    }
}

impl Chain for LocalMetropolis {
    fn state(&self) -> &[Spin] {
        self.inner.state()
    }

    fn set_state(&mut self, state: &[Spin]) {
        self.inner.set_state(state);
    }

    fn step(&mut self, rng: &mut Xoshiro256pp) {
        // One draw keys the whole round; coupled callers hand identical
        // generators and thus identical round keys.
        self.inner.step_keyed(rng.next());
    }

    fn name(&self) -> &'static str {
        self.inner.rule().name()
    }
}

#[cfg(test)]
mod tests {
    // The legacy constructors are the surface under test here.
    #![allow(deprecated)]

    use super::*;
    use lsl_analysis::EmpiricalDistribution;
    use lsl_graph::generators;
    use lsl_mrf::gibbs::{encode_config, Enumeration};
    use lsl_mrf::models;

    fn chain_tv(
        mut make: impl FnMut() -> LocalMetropolis,
        q: usize,
        steps: usize,
        replicas: u64,
        exact: &Enumeration,
    ) -> f64 {
        let mut emp = EmpiricalDistribution::new();
        for rep in 0..replicas {
            let mut chain = make();
            let mut rng = Xoshiro256pp::seed_from(77 + rep);
            chain.run(steps, &mut rng);
            emp.record(encode_config(chain.state(), q));
        }
        emp.tv_against_dense(&exact.distribution())
    }

    #[test]
    fn never_moves_to_less_proper() {
        // Once feasible, stays feasible (absorption, Thm 4.1 proof).
        let mrf = models::proper_coloring(generators::torus(4, 4), 8);
        let mut chain = LocalMetropolis::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(4);
        chain.run(30, &mut rng);
        assert!(mrf.is_feasible(chain.state()));
        for _ in 0..50 {
            chain.step(&mut rng);
            assert!(mrf.is_feasible(chain.state()));
        }
    }

    #[test]
    fn absorbs_from_infeasible_start() {
        // Start all-same-color (maximally infeasible); with q ≥ Δ+2 the
        // chain must become proper quickly.
        let mrf = models::proper_coloring(generators::cycle(8), 5);
        let mut chain = LocalMetropolis::with_state(&mrf, vec![0; 8]);
        let mut rng = Xoshiro256pp::seed_from(6);
        let mut feasible_at = None;
        for t in 0..200 {
            if mrf.is_feasible(chain.state()) {
                feasible_at = Some(t);
                break;
            }
            chain.step(&mut rng);
        }
        assert!(feasible_at.is_some(), "never became proper");
    }

    #[test]
    fn samples_gibbs_colorings_small() {
        let mrf = std::sync::Arc::new(models::proper_coloring(generators::cycle(4), 4));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(
            || LocalMetropolis::new(std::sync::Arc::clone(&mrf)),
            4,
            80,
            8000,
            &exact,
        );
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn samples_soft_constraint_models() {
        // Ising (soft activities exercise the fractional coin path).
        let mrf = std::sync::Arc::new(models::ising(generators::path(3), 0.6));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(
            || LocalMetropolis::new(std::sync::Arc::clone(&mrf)),
            2,
            80,
            8000,
            &exact,
        );
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn samples_hardcore() {
        let mrf = std::sync::Arc::new(models::hardcore(generators::path(3), 1.0));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(
            || LocalMetropolis::new(std::sync::Arc::clone(&mrf)),
            2,
            60,
            8000,
            &exact,
        );
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn rule3_chain_correct_where_ablation_differs() {
        // The full chain stays correct on instances where the rule-3
        // ablation changes the transition structure (the exact-kernel
        // tests in `kernel` quantify the ablation's failure).
        let mrf = std::sync::Arc::new(models::proper_coloring(generators::path(3), 3));
        let exact = Enumeration::new(&mrf).unwrap();
        let good = chain_tv(
            || LocalMetropolis::new(std::sync::Arc::clone(&mrf)),
            3,
            400,
            8000,
            &exact,
        );
        assert!(good < 0.05, "good = {good}");
    }

    #[test]
    fn coloring_filter_rules_truth_table() {
        let mrf = models::proper_coloring(generators::path(2), 4);
        let chain = LocalMetropolis::new(&mrf);
        let e = lsl_graph::EdgeId(0);
        // (xu, xv, su, sv) → pass?
        // No conflicts: pass with certainty.
        assert_eq!(chain.pass_probability(e, 0, 1, 2, 3), 1.0);
        // Rule 1 at v: v proposed u's current color (sv = xu).
        assert_eq!(chain.pass_probability(e, 0, 1, 2, 0), 0.0);
        // Rule 2: identical proposals.
        assert_eq!(chain.pass_probability(e, 0, 1, 3, 3), 0.0);
        // Rule 3: u proposed v's current color (su = xv).
        assert_eq!(chain.pass_probability(e, 0, 1, 1, 3), 0.0);
        // Ablated chain ignores rule 3 only.
        let ablated = LocalMetropolis::without_rule3(&mrf);
        assert_eq!(ablated.pass_probability(e, 0, 1, 1, 3), 1.0);
        assert_eq!(ablated.pass_probability(e, 0, 1, 2, 0), 0.0);
    }

    #[test]
    fn large_degree_still_correct() {
        // Star with q = 2Δ? LocalMetropolis correctness (not mixing speed)
        // only needs the chain rules; test on a star with ample colors.
        let mrf = std::sync::Arc::new(models::proper_coloring(generators::star(3), 4));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(
            || LocalMetropolis::new(std::sync::Arc::clone(&mrf)),
            4,
            300,
            20_000,
            &exact,
        );
        assert!(tv < 0.06, "tv = {tv}");
    }
}
