//! Algorithm 1: the LubyGlauber chain.
//!
//! Each round: sample a random independent set `I` (by default the Luby
//! step), then resample every `v ∈ I` in parallel from its conditional
//! marginal µ_v(·|X_Γ(v)) (paper eq. 2). Because `I` is independent and
//! marginals read only neighbors (which are not in `I`), the "parallel"
//! resampling is implemented as an in-place sweep over `I` with identical
//! semantics.
//!
//! Theorem 3.2: under Dobrushin's condition (total influence `α < 1`) the
//! chain mixes in `O(Δ/(1−α) · log(n/ε))` rounds — and more generally
//! `O(1/((1−α)γ) · log(n/ε))` for any scheduler with `Pr[v ∈ I] ≥ γ`.

use crate::engine::rules::{scheduled_mask, LubyGlauberRule};
use crate::engine::{Backend, RoundCtx, SyncChain};
use crate::schedule::{LubyScheduler, Scheduler, VertexScheduler};
use crate::Chain;
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::csp::Csp;
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// The LubyGlauber chain (Algorithm 1), generic over the independent-set
/// scheduler and running on the step engine: the chain logic lives in
/// [`LubyGlauberRule`], and this
/// wrapper adapts it to the [`Chain`] interface (each step's randomness
/// is keyed by one draw from the caller's generator, preserving grand
/// couplings through the legacy interface).
///
/// # Example (preferred construction: the sampler facade)
/// ```
/// use lsl_core::prelude::*;
/// use lsl_graph::generators;
/// use lsl_mrf::models;
///
/// let mrf = models::proper_coloring(generators::torus(4, 4), 10);
/// let mut sampler = Sampler::for_mrf(&mrf)
///     .algorithm(Algorithm::LubyGlauber)
///     .scheduler(Sched::Luby)
///     .seed(5)
///     .build()
///     .unwrap();
/// sampler.run(80);
/// assert!(mrf.is_feasible(sampler.state()));
/// ```
#[derive(Debug)]
pub struct LubyGlauber<S: VertexScheduler = LubyScheduler> {
    inner: SyncChain<LubyGlauberRule<S>>,
    mask: Vec<bool>,
}

impl LubyGlauber<LubyScheduler> {
    /// Creates the chain with the paper's Luby-step scheduler and the
    /// deterministic default start.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::LubyGlauber).build()`")]
    pub fn new(mrf: impl Into<Arc<Mrf>>) -> Self {
        Self::wire(mrf, LubyScheduler::new())
    }
}

impl<S: VertexScheduler> LubyGlauber<S> {
    /// Creates the chain with a custom scheduler.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::LubyGlauber).scheduler(sched)\
                .build()` with the matching `Sched` variant")]
    pub fn with_scheduler(mrf: impl Into<Arc<Mrf>>, scheduler: S) -> Self {
        Self::wire(mrf, scheduler)
    }

    /// The shared wiring behind both deprecated constructors.
    fn wire(mrf: impl Into<Arc<Mrf>>, scheduler: S) -> Self {
        let mrf = mrf.into();
        let n = mrf.num_vertices();
        LubyGlauber {
            inner: crate::sampler::wire(
                mrf,
                LubyGlauberRule::with_scheduler(scheduler),
                0,
                None,
                Backend::Sequential,
            ),
            mask: vec![false; n],
        }
    }

    /// The model this chain samples from.
    pub fn mrf(&self) -> &Mrf {
        self.inner.mrf()
    }

    /// The scheduler in use.
    pub fn scheduler(&self) -> &S {
        self.inner.rule().scheduler()
    }

    /// Switches the execution backend (trajectories are unaffected — see
    /// the engine's determinism contract).
    pub fn set_backend(&mut self, backend: Backend) {
        self.inner.set_backend(backend);
    }

    /// The update mask of the most recent step (for instrumentation),
    /// recovered lazily from the round's published marks — steps that
    /// nobody inspects don't pay for a second selection pass.
    pub fn last_mask(&mut self) -> &[bool] {
        if let Some((master, round)) = self.inner.last_round_key() {
            let ctx = RoundCtx::new(self.inner.mrf(), master, round);
            scheduled_mask(
                self.inner.rule().scheduler(),
                &ctx,
                self.inner.locals(),
                &mut self.mask,
            );
        }
        &self.mask
    }
}

impl<S: VertexScheduler> Chain for LubyGlauber<S> {
    fn state(&self) -> &[Spin] {
        self.inner.state()
    }

    fn set_state(&mut self, state: &[Spin]) {
        self.inner.set_state(state);
    }

    fn step(&mut self, rng: &mut Xoshiro256pp) {
        self.inner.step_keyed(rng.next());
        #[cfg(debug_assertions)]
        {
            let mask = self.last_mask().to_vec();
            debug_assert!(
                self.mrf().graph().is_independent_set(&mask),
                "scheduler violated independence"
            );
        }
    }

    fn name(&self) -> &'static str {
        "LubyGlauber"
    }
}

/// The weighted-CSP variant of LubyGlauber (paper remark after Algorithm
/// 1): neighborhoods are redefined through shared constraint scopes, so
/// the scheduled set must be *strongly* independent. Implemented by
/// running the scheduler on the primal graph of the scope hypergraph.
#[derive(Clone, Debug)]
pub struct CspLubyGlauber<S: Scheduler = LubyScheduler> {
    csp: Arc<Csp>,
    primal: lsl_graph::Graph,
    scheduler: S,
    state: Vec<Spin>,
    mask: Vec<bool>,
    scratch: lsl_mrf::csp::MarginalScratch,
}

impl CspLubyGlauber<LubyScheduler> {
    /// Creates the chain with the Luby scheduler, starting from the given
    /// configuration (CSPs often have constrained feasible spaces, so the
    /// caller provides a sensible start — e.g. any maximal independent
    /// set for the MIS distribution).
    ///
    /// # Panics
    /// Panics if the start has the wrong length.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_csp(&csp).start(start).build()`")]
    pub fn new(csp: impl Into<Arc<Csp>>, start: Vec<Spin>) -> Self {
        #[allow(deprecated)] // one shim delegating to the other
        Self::with_scheduler(csp, start, LubyScheduler::new())
    }
}

impl<S: Scheduler> CspLubyGlauber<S> {
    /// Creates the chain with a custom scheduler.
    ///
    /// # Panics
    /// Panics if the start has the wrong length.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_csp(&csp).scheduler(sched).start(start).build()` \
                with the matching `Sched` variant")]
    pub fn with_scheduler(csp: impl Into<Arc<Csp>>, start: Vec<Spin>, scheduler: S) -> Self {
        let csp = csp.into();
        assert_eq!(start.len(), csp.graph().num_vertices());
        let primal = csp.scope_hypergraph().primal_graph();
        let n = csp.graph().num_vertices();
        let scratch = lsl_mrf::csp::MarginalScratch::new(&csp);
        CspLubyGlauber {
            csp,
            primal,
            scheduler,
            state: start,
            mask: vec![false; n],
            scratch,
        }
    }

    /// The CSP this chain samples from.
    pub fn csp(&self) -> &Csp {
        &self.csp
    }
}

impl<S: Scheduler> Chain for CspLubyGlauber<S> {
    fn state(&self) -> &[Spin] {
        &self.state
    }

    fn set_state(&mut self, state: &[Spin]) {
        assert_eq!(state.len(), self.state.len());
        self.state.copy_from_slice(state);
    }

    fn step(&mut self, rng: &mut Xoshiro256pp) {
        // Schedule on the primal graph: an independent set there is a
        // strongly independent set of the scope hypergraph.
        self.scheduler.sample(&self.primal, rng, &mut self.mask);
        for v in self.primal.vertices() {
            if !self.mask[v.index()] {
                continue;
            }
            if let Some(pick) =
                self.csp
                    .sample_marginal_with(v, &self.state, rng, &mut self.scratch)
            {
                self.state[v.index()] = pick;
            }
            // An ill-defined marginal (all-zero weights) can only occur
            // from infeasible starts; keeping the old spin preserves
            // correctness on the feasible space.
        }
    }

    fn name(&self) -> &'static str {
        "CspLubyGlauber"
    }
}

#[cfg(test)]
mod tests {
    // The legacy constructors are the surface under test here.
    #![allow(deprecated)]

    use super::*;
    use crate::schedule::{BernoulliFilterScheduler, ChromaticScheduler, SingletonScheduler};
    use lsl_analysis::EmpiricalDistribution;
    use lsl_graph::generators;
    use lsl_mrf::gibbs::{encode_config, Enumeration};
    use lsl_mrf::models;
    use std::sync::Arc;

    fn chain_tv<C: Chain>(
        mut make: impl FnMut() -> C,
        q: usize,
        steps: usize,
        replicas: u64,
        exact: &Enumeration,
    ) -> f64 {
        let mut emp = EmpiricalDistribution::new();
        for rep in 0..replicas {
            let mut chain = make();
            let mut rng = Xoshiro256pp::seed_from(31 + rep);
            chain.run(steps, &mut rng);
            emp.record(encode_config(chain.state(), q));
        }
        emp.tv_against_dense(&exact.distribution())
    }

    #[test]
    fn luby_glauber_updates_are_independent_sets() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let mut chain = LubyGlauber::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(1);
        for _ in 0..30 {
            chain.step(&mut rng);
            assert!(mrf.graph().is_independent_set(chain.last_mask()));
        }
        assert!(mrf.is_feasible(chain.state()));
    }

    #[test]
    fn luby_glauber_samples_gibbs_small() {
        // Colorings of C4 with q = 3: TV to exact must vanish.
        let mrf = models::proper_coloring(generators::cycle(4), 3);
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(|| LubyGlauber::new(&mrf), 3, 120, 6000, &exact);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn luby_glauber_hardcore_small() {
        let mrf = models::hardcore(generators::path(4), 1.5);
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(|| LubyGlauber::new(&mrf), 2, 100, 6000, &exact);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn singleton_scheduler_equals_glauber_distribution() {
        let mrf = models::uniform_independent_set(generators::path(3));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(
            || LubyGlauber::with_scheduler(&mrf, SingletonScheduler),
            2,
            80,
            6000,
            &exact,
        );
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn bernoulli_scheduler_also_converges() {
        let mrf = models::proper_coloring(generators::path(3), 3);
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(
            || LubyGlauber::with_scheduler(&mrf, BernoulliFilterScheduler::new(0.3)),
            3,
            100,
            6000,
            &exact,
        );
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn chromatic_scheduler_converges_over_sweeps() {
        // The chromatic scheduler is a systematic scan; after whole sweeps
        // it still targets the Gibbs distribution.
        let mrf = models::proper_coloring(generators::cycle(4), 3);
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = chain_tv(
            || LubyGlauber::with_scheduler(&mrf, ChromaticScheduler::greedy(mrf.graph())),
            3,
            121, // odd number of rounds? classes=2, 121 rounds ≈ 60.5 sweeps
            6000,
            &exact,
        );
        assert!(tv < 0.06, "tv = {tv}");
    }

    #[test]
    fn csp_luby_glauber_samples_uniform_mis() {
        // MIS of the star K_{1,3}: exactly 2 solutions — hub or all leaves.
        // Single-site dynamics cannot move between them (they differ in
        // ≥ 2 coordinates through infeasible intermediates)… in fact for
        // MIS the single-site chain is NOT irreducible in general. Use C5,
        // whose MIS space is connected under single-site moves? C5's MISs
        // are the 5 pairs of non-adjacent vertices; moving between them
        // one flip at a time passes through non-maximal sets — also
        // infeasible. So instead validate *invariance*: starting from a
        // uniform random MIS, the chain keeps the uniform distribution.
        let g = Arc::new(generators::cycle(5));
        let csp = Csp::maximal_independent_set(Arc::clone(&g));
        let sols = csp.enumerate();
        assert_eq!(sols.len(), 5);
        let mut emp = EmpiricalDistribution::new();
        let reps = 8000u64;
        for rep in 0..reps {
            let mut rng = Xoshiro256pp::seed_from(900 + rep);
            // Exact-uniform start over solutions.
            let pick = (rand::RngExt::random_range(&mut rng, 0..sols.len() as u64)) as usize;
            let mut chain = CspLubyGlauber::new(&csp, sols[pick].0.clone());
            chain.run(20, &mut rng);
            assert!(csp.is_feasible(chain.state()), "left the MIS space");
            emp.record(encode_config(chain.state(), 2));
        }
        // Uniformity preserved.
        for (sol, _) in &sols {
            let f = emp.frequency(encode_config(sol, 2));
            assert!((f - 0.2).abs() < 0.02, "sol {sol:?}: freq {f}");
        }
    }

    #[test]
    fn csp_luby_glauber_dominating_sets_mix() {
        // Dominating sets of P3 are connected under single-site moves:
        // {1} ↔ {0,1} ↔ {0,1,2} etc. The chain should reach uniform.
        let g = Arc::new(generators::path(3));
        let csp = Csp::dominating_set(Arc::clone(&g));
        let sols = csp.enumerate();
        assert_eq!(sols.len(), 5);
        let mut emp = EmpiricalDistribution::new();
        let reps = 10_000u64;
        for rep in 0..reps {
            let mut rng = Xoshiro256pp::seed_from(1700 + rep);
            let mut chain = CspLubyGlauber::new(&csp, vec![1, 1, 1]);
            chain.run(60, &mut rng);
            emp.record(encode_config(chain.state(), 2));
        }
        for (sol, _) in &sols {
            let f = emp.frequency(encode_config(sol, 2));
            assert!((f - 0.2).abs() < 0.025, "sol {sol:?}: freq {f}");
        }
    }
}
