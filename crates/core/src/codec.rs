//! The binary wire codec: length-prefixed frames, tagged encodings,
//! and bit-packed full-state delivery.
//!
//! The line codec ([`proto`]) is the canonical,
//! human-readable form — it remains the debug/compat path and the
//! on-disk store format. This module adds the second wire format a
//! session can negotiate (`hello codec=binary`): every
//! [`ClientFrame`]/[`ServerFrame`] as a tagged binary record inside a
//! `u32`-length-prefixed frame, capped at [`MAX_FRAME`] so a corrupt
//! prefix cannot make a session allocate unboundedly.
//!
//! The payload that motivates the codec is [`StateBlob`]: a full
//! configuration packed at the width its domain needs, reusing the
//! engine's [`Packing`] rules — two-spin models (Ising, hardcore) ship
//! one **bit** per vertex, `q ≤ 256` colorings one **byte**, and only
//! `q > 256` falls back to full `u32` lanes. A 256×256 torus state is
//! thus 8 KB (Ising) to 64 KB (colorings) instead of 256 KB. Blobs ride
//! in `sample` job results and `stream` job events
//! ([`JobEvent::State`]); on the text
//! codec they fall back to a base64url token so text sessions stay
//! fully functional.
//!
//! Both codecs answer bit-identical results — property-tested in
//! `tests/codec_identity.rs` the same way remote-vs-local identity is.

use crate::engine::{Packing, StateSlab};
use crate::proto::{self, ClientFrame, ServerFrame};
use crate::service::JobEvent;
use crate::spec::{CommSummary, JobOutput, JobResult};
use lsl_mrf::Spin;
use std::fmt;
use std::io::{self, Write};
use std::str::FromStr;

/// Upper bound on one binary frame's payload, enforced on both encode
/// and decode. A length prefix above this answers a typed error and the
/// session resynchronizes after the 4 header bytes.
pub const MAX_FRAME: usize = 16 << 20;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a binary frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize {
        /// The claimed payload length.
        len: u64,
    },
    /// The payload ended before the record it promised.
    Truncated,
    /// The payload is structurally wrong (bad tag, trailing bytes,
    /// invalid blob, out-of-range spin, …).
    Malformed(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Oversize { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME}")
            }
            CodecError::Truncated => write!(f, "truncated binary frame"),
            CodecError::Malformed(m) => write!(f, "malformed binary frame: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn malformed(m: impl Into<String>) -> CodecError {
    CodecError::Malformed(m.into())
}

// ---------------------------------------------------------------------
// Codec selection
// ---------------------------------------------------------------------

/// Which wire format a session speaks. Sessions start in [`Codec::Text`]
/// and may switch once via the `hello` handshake.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Codec {
    /// The line-delimited text protocol ([`proto`]) —
    /// canonical, debuggable, and the store format.
    #[default]
    Text,
    /// Length-prefixed tagged binary frames — compact, and the only
    /// format that ships [`StateBlob`]s without base64 overhead.
    Binary,
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Codec::Text => write!(f, "text"),
            Codec::Binary => write!(f, "binary"),
        }
    }
}

impl FromStr for Codec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Codec::Text),
            "binary" => Ok(Codec::Binary),
            other => Err(format!("unknown codec {other:?} (expected text | binary)")),
        }
    }
}

// ---------------------------------------------------------------------
// StateBlob: bit-packed configurations on the wire
// ---------------------------------------------------------------------

/// A full configuration packed for the wire at the width its domain
/// needs — the engine's [`Packing::auto_for`] rule applied to transport.
///
/// The packing is a function of `q`, so it is never stored: `q ≤ 2` is
/// one bit per vertex (LSB-first), `q ≤ 256` one byte, larger `q` a
/// `u32` little-endian lane each. Construction validates every spin
/// against `q`, so an unpacked blob is always a legal configuration.
///
/// # Example
/// ```
/// use lsl_core::codec::StateBlob;
/// let blob = StateBlob::pack(&[1, 0, 1, 1], 2);
/// assert_eq!(blob.byte_len(), 1); // four Ising spins in one byte
/// assert_eq!(blob.unpack(), vec![1, 0, 1, 1]);
/// let text = blob.to_token(); // base64url fallback for text sessions
/// assert_eq!(text.parse::<StateBlob>().unwrap(), blob);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateBlob {
    n: usize,
    q: usize,
    bytes: Vec<u8>,
}

impl StateBlob {
    /// Packs a configuration over domain `[0, q)`.
    ///
    /// # Panics
    /// Panics if a spin is `≥ q` (debug builds assert inside the slab;
    /// release builds catch it in the explicit check here).
    pub fn pack(state: &[Spin], q: usize) -> StateBlob {
        let q = q.max(1);
        assert!(
            state.iter().all(|&s| (s as usize) < q),
            "spin out of domain [0, {q})"
        );
        let packing = Packing::auto_for(q);
        let slab = StateSlab::from_spins(packing, state);
        let bytes = match &slab {
            StateSlab::Wide(v) => v.iter().flat_map(|s| s.to_le_bytes()).collect(),
            StateSlab::Byte(v) => v.clone(),
            StateSlab::Bit { words, len } => {
                let mut out = Vec::with_capacity(len.div_ceil(8));
                for word in words {
                    out.extend_from_slice(&word.to_le_bytes());
                }
                out.truncate(len.div_ceil(8));
                out
            }
        };
        StateBlob {
            n: state.len(),
            q,
            bytes,
        }
    }

    /// Rebuilds a blob from wire parts, validating the byte length and
    /// every spin against `q` — a malformed blob is a [`CodecError`],
    /// never a bad configuration.
    pub fn from_parts(n: usize, q: usize, bytes: Vec<u8>) -> Result<StateBlob, CodecError> {
        if q == 0 {
            return Err(malformed("state blob with q=0"));
        }
        let packing = Packing::auto_for(q);
        let expect = match packing {
            Packing::Wide => n.checked_mul(4).ok_or_else(|| malformed("blob overflow"))?,
            Packing::Byte => n,
            Packing::Bit => n.div_ceil(8),
        };
        if bytes.len() != expect {
            return Err(malformed(format!(
                "state blob for n={n} q={q} needs {expect} bytes, got {}",
                bytes.len()
            )));
        }
        let blob = StateBlob { n, q, bytes };
        match packing {
            Packing::Wide | Packing::Byte => {
                for i in 0..n {
                    let s = blob.spin(i);
                    if s as usize >= q {
                        return Err(malformed(format!("spin {s} out of domain [0, {q})")));
                    }
                }
            }
            Packing::Bit => {
                // Spare bits past `n` in the last byte must be zero so
                // blob equality is byte equality.
                let spare = blob.bytes.len() * 8 - n;
                if spare > 0 {
                    let last = blob.bytes[blob.bytes.len() - 1];
                    if last >> (8 - spare) != 0 {
                        return Err(malformed("nonzero spare bits in state blob"));
                    }
                }
                if q == 1 && blob.bytes.iter().any(|&b| b != 0) {
                    return Err(malformed("spin out of domain [0, 1)"));
                }
            }
        }
        Ok(blob)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Domain size the blob was packed against.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The packing width in use (derived from `q`, never stored).
    pub fn packing(&self) -> Packing {
        Packing::auto_for(self.q)
    }

    /// Packed payload size in bytes — what the binary codec ships.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw packed bytes (for `--out` files and size accounting).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The spin at vertex `i`.
    #[inline]
    fn spin(&self, i: usize) -> Spin {
        match self.packing() {
            Packing::Wide => {
                let b = &self.bytes[i * 4..i * 4 + 4];
                u32::from_le_bytes([b[0], b[1], b[2], b[3]])
            }
            Packing::Byte => self.bytes[i] as Spin,
            Packing::Bit => ((self.bytes[i >> 3] >> (i & 7)) & 1) as Spin,
        }
    }

    /// Unpacks back to the flat configuration the sampler produced.
    /// Bit-identical to the packed input (round-trip tested).
    pub fn unpack(&self) -> Vec<Spin> {
        (0..self.n).map(|i| self.spin(i)).collect()
    }
}

/// The text-codec fallback form: `n/q/<base64url>` (no padding). Also
/// what `lsl run --out` writes one-per-line in text mode.
impl fmt::Display for StateBlob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.n, self.q, b64_encode(&self.bytes))
    }
}

impl FromStr for StateBlob {
    type Err = CodecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.splitn(3, '/');
        let (n, q, b64) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(q), Some(b)) => (n, q, b),
            _ => return Err(malformed(format!("state blob token {s:?}"))),
        };
        let n: usize = n
            .parse()
            .map_err(|_| malformed(format!("blob vertex count {n:?}")))?;
        let q: usize = q
            .parse()
            .map_err(|_| malformed(format!("blob domain size {q:?}")))?;
        StateBlob::from_parts(n, q, b64_decode(b64)?)
    }
}

impl StateBlob {
    /// The `n/q/<base64url>` token — alias for the `Display` form,
    /// spelled out at call sites that embed blobs in text frames.
    pub fn to_token(&self) -> String {
        self.to_string()
    }
}

// ---------------------------------------------------------------------
// base64url (no padding) — the text-codec fallback for blob bytes
// ---------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let chars = [
            B64[(v >> 18) as usize & 63],
            B64[(v >> 12) as usize & 63],
            B64[(v >> 6) as usize & 63],
            B64[v as usize & 63],
        ];
        let keep = 1 + chunk.len(); // 2, 3, or 4 output chars
        for &c in &chars[..keep.min(4)] {
            out.push(c as char);
        }
    }
    out
}

fn b64_val(c: u8) -> Result<u32, CodecError> {
    match c {
        b'A'..=b'Z' => Ok(u32::from(c - b'A')),
        b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
        b'-' => Ok(62),
        b'_' => Ok(63),
        other => Err(malformed(format!("base64url byte 0x{other:02x}"))),
    }
}

fn b64_decode(s: &str) -> Result<Vec<u8>, CodecError> {
    let bytes = s.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(malformed("base64url length ≡ 1 (mod 4)"));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3 + 2);
    for chunk in bytes.chunks(4) {
        let mut v = 0u32;
        for &c in chunk {
            v = (v << 6) | b64_val(c)?;
        }
        v <<= 6 * (4 - chunk.len());
        out.push((v >> 16) as u8);
        if chunk.len() >= 3 {
            out.push((v >> 8) as u8);
        }
        if chunk.len() == 4 {
            out.push(v as u8);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Binary primitives
// ---------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new() -> Self {
        Enc(Vec::new())
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("payload under 4 GiB"));
        self.0.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    fn blob(&mut self, b: &StateBlob) {
        self.u64(b.n as u64);
        self.u64(b.q as u64);
        self.bytes(&b.bytes);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| malformed("count overflows usize"))
    }

    fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| malformed("non-UTF-8 string"))
    }

    fn blob(&mut self) -> Result<StateBlob, CodecError> {
        let n = self.usize()?;
        let q = self.usize()?;
        let bytes = self.bytes()?.to_vec();
        StateBlob::from_parts(n, q, bytes)
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Tagged records
// ---------------------------------------------------------------------

// Client frame tags.
const C_SUBMIT: u8 = 0x01;
const C_CANCEL: u8 = 0x02;
const C_SHUTDOWN: u8 = 0x03;
const C_HELLO: u8 = 0x04;
const C_PING: u8 = 0x05;
const C_SHARD_INIT: u8 = 0x06;
const C_SHARD_SYNC: u8 = 0x07;

// Server frame tags.
const S_SUBMITTED: u8 = 0x81;
const S_EVENT: u8 = 0x82;
const S_ERROR: u8 = 0x83;
const S_HELLO: u8 = 0x84;
const S_PONG: u8 = 0x85;
const S_SHARD_SYNC: u8 = 0x86;
const S_SHARD_DONE: u8 = 0x87;

// Job event tags.
const E_ACCEPTED: u8 = 1;
const E_REJECTED: u8 = 2;
const E_STARTED: u8 = 3;
const E_PROGRESS: u8 = 4;
const E_FINISHED: u8 = 5;
const E_FAILED: u8 = 6;
const E_CANCELLED: u8 = 7;
const E_STATE: u8 = 8;

// Job output tags.
const O_RUN: u8 = 1;
const O_DISTRIBUTION: u8 = 2;
const O_TV: u8 = 3;
const O_COALESCENCE: u8 = 4;
const O_SAMPLE: u8 = 5;
const O_STREAM: u8 = 6;

fn codec_byte(c: Codec) -> u8 {
    match c {
        Codec::Text => 0,
        Codec::Binary => 1,
    }
}

fn codec_from_byte(b: u8) -> Result<Codec, CodecError> {
    match b {
        0 => Ok(Codec::Text),
        1 => Ok(Codec::Binary),
        other => Err(malformed(format!("codec byte 0x{other:02x}"))),
    }
}

/// Encodes a client frame as one tagged binary record (no length
/// prefix — pair with [`write_frame`]).
pub fn encode_client(frame: &ClientFrame) -> Vec<u8> {
    let mut e = Enc::new();
    match frame {
        ClientFrame::Submit { id, spec } => {
            e.u8(C_SUBMIT);
            e.u64(*id);
            e.str(spec);
        }
        ClientFrame::Cancel { id } => {
            e.u8(C_CANCEL);
            e.u64(*id);
        }
        ClientFrame::Shutdown => e.u8(C_SHUTDOWN),
        ClientFrame::Hello { codec } => {
            e.u8(C_HELLO);
            e.u8(codec_byte(*codec));
        }
        ClientFrame::Ping { nonce } => {
            e.u8(C_PING);
            e.u64(*nonce);
        }
        ClientFrame::ShardInit {
            id,
            shard,
            of,
            spec,
        } => {
            e.u8(C_SHARD_INIT);
            e.u64(*id);
            e.u32(*shard);
            e.u32(*of);
            e.str(spec);
        }
        ClientFrame::ShardSync { id, round, blob } => {
            e.u8(C_SHARD_SYNC);
            e.u64(*id);
            e.u64(*round);
            e.blob(blob);
        }
    }
    e.0
}

/// Decodes one client frame record, rejecting trailing bytes.
pub fn decode_client(bytes: &[u8]) -> Result<ClientFrame, CodecError> {
    let mut d = Dec::new(bytes);
    let frame = match d.u8()? {
        C_SUBMIT => ClientFrame::Submit {
            id: d.u64()?,
            spec: d.str()?.to_string(),
        },
        C_CANCEL => ClientFrame::Cancel { id: d.u64()? },
        C_SHUTDOWN => ClientFrame::Shutdown,
        C_HELLO => ClientFrame::Hello {
            codec: codec_from_byte(d.u8()?)?,
        },
        C_PING => ClientFrame::Ping { nonce: d.u64()? },
        C_SHARD_INIT => ClientFrame::ShardInit {
            id: d.u64()?,
            shard: d.u32()?,
            of: d.u32()?,
            spec: d.str()?.to_string(),
        },
        C_SHARD_SYNC => ClientFrame::ShardSync {
            id: d.u64()?,
            round: d.u64()?,
            blob: d.blob()?,
        },
        tag => return Err(malformed(format!("client frame tag 0x{tag:02x}"))),
    };
    d.done()?;
    Ok(frame)
}

/// Encodes a server frame as one tagged binary record.
pub fn encode_server(frame: &ServerFrame) -> Vec<u8> {
    let mut e = Enc::new();
    match frame {
        ServerFrame::Submitted { id, jobs } => {
            e.u8(S_SUBMITTED);
            e.u64(*id);
            e.u64(*jobs);
        }
        ServerFrame::Event { id, index, event } => {
            e.u8(S_EVENT);
            e.u64(*id);
            e.u64(*index);
            encode_event(&mut e, event);
        }
        ServerFrame::Error { id, message } => {
            e.u8(S_ERROR);
            match id {
                Some(id) => {
                    e.u8(1);
                    e.u64(*id);
                }
                None => e.u8(0),
            }
            e.str(message);
        }
        ServerFrame::Hello { codec } => {
            e.u8(S_HELLO);
            e.u8(codec_byte(*codec));
        }
        ServerFrame::Pong { nonce } => {
            e.u8(S_PONG);
            e.u64(*nonce);
        }
        ServerFrame::ShardSync { id, round, blob } => {
            e.u8(S_SHARD_SYNC);
            e.u64(*id);
            e.u64(*round);
            e.blob(blob);
        }
        ServerFrame::ShardDone { id, rounds, blob } => {
            e.u8(S_SHARD_DONE);
            e.u64(*id);
            e.u64(*rounds);
            e.blob(blob);
        }
    }
    e.0
}

/// Decodes one server frame record, rejecting trailing bytes.
pub fn decode_server(bytes: &[u8]) -> Result<ServerFrame, CodecError> {
    let mut d = Dec::new(bytes);
    let frame = match d.u8()? {
        S_SUBMITTED => ServerFrame::Submitted {
            id: d.u64()?,
            jobs: d.u64()?,
        },
        S_EVENT => ServerFrame::Event {
            id: d.u64()?,
            index: d.u64()?,
            event: decode_event(&mut d)?,
        },
        S_ERROR => {
            let id = match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                other => return Err(malformed(format!("error id flag 0x{other:02x}"))),
            };
            ServerFrame::Error {
                id,
                message: d.str()?.to_string(),
            }
        }
        S_HELLO => ServerFrame::Hello {
            codec: codec_from_byte(d.u8()?)?,
        },
        S_PONG => ServerFrame::Pong { nonce: d.u64()? },
        S_SHARD_SYNC => ServerFrame::ShardSync {
            id: d.u64()?,
            round: d.u64()?,
            blob: d.blob()?,
        },
        S_SHARD_DONE => ServerFrame::ShardDone {
            id: d.u64()?,
            rounds: d.u64()?,
            blob: d.blob()?,
        },
        tag => return Err(malformed(format!("server frame tag 0x{tag:02x}"))),
    };
    d.done()?;
    Ok(frame)
}

fn encode_event(e: &mut Enc, event: &JobEvent) {
    match event {
        JobEvent::Accepted => e.u8(E_ACCEPTED),
        JobEvent::Rejected { reason } => {
            e.u8(E_REJECTED);
            // Reject reasons and spec errors cross the binary wire as
            // their proto tokens: the token grammar is already proven
            // invertible, so the binary codec inherits the proof.
            e.str(&proto::encode_reject_reason(reason));
        }
        JobEvent::Started => e.u8(E_STARTED),
        JobEvent::Progress { round, of } => {
            e.u8(E_PROGRESS);
            e.u64(*round);
            e.u64(*of);
        }
        JobEvent::Finished(result) => {
            e.u8(E_FINISHED);
            encode_result(e, result);
        }
        JobEvent::Failed(err) => {
            e.u8(E_FAILED);
            e.str(&proto::encode_spec_error(err));
        }
        JobEvent::Cancelled => e.u8(E_CANCELLED),
        JobEvent::State { round, blob } => {
            e.u8(E_STATE);
            e.u64(*round);
            e.blob(blob);
        }
    }
}

fn decode_event(d: &mut Dec<'_>) -> Result<JobEvent, CodecError> {
    Ok(match d.u8()? {
        E_ACCEPTED => JobEvent::Accepted,
        E_REJECTED => JobEvent::Rejected {
            reason: proto::decode_reject_reason(d.str()?).map_err(|e| malformed(e.to_string()))?,
        },
        E_STARTED => JobEvent::Started,
        E_PROGRESS => JobEvent::Progress {
            round: d.u64()?,
            of: d.u64()?,
        },
        E_FINISHED => JobEvent::Finished(decode_result(d)?),
        E_FAILED => JobEvent::Failed(
            proto::decode_spec_error(d.str()?).map_err(|e| malformed(e.to_string()))?,
        ),
        E_CANCELLED => JobEvent::Cancelled,
        E_STATE => JobEvent::State {
            round: d.u64()?,
            blob: d.blob()?,
        },
        tag => return Err(malformed(format!("job event tag 0x{tag:02x}"))),
    })
}

fn encode_result(e: &mut Enc, result: &JobResult) {
    e.str(&result.spec);
    e.f64(result.elapsed_secs);
    match &result.output {
        JobOutput::Run {
            rounds,
            n,
            feasible,
            fingerprint,
            comm,
        } => {
            e.u8(O_RUN);
            e.u64(*rounds);
            e.u64(*n as u64);
            e.u8(u8::from(*feasible));
            e.u64(*fingerprint);
            match comm {
                Some(c) => {
                    e.u8(1);
                    e.u64(c.rounds_seen);
                    e.u64(c.total_messages);
                    e.u64(c.total_bytes);
                    e.u64(c.total_changed);
                }
                None => e.u8(0),
            }
        }
        JobOutput::Distribution { replicas, support } => {
            e.u8(O_DISTRIBUTION);
            e.u64(*replicas);
            e.u64(*support as u64);
        }
        JobOutput::Tv {
            rounds,
            replicas,
            tv,
        } => {
            e.u8(O_TV);
            e.u64(*rounds as u64);
            e.u64(*replicas as u64);
            e.f64(*tv);
        }
        JobOutput::Coalescence {
            trials,
            mean_rounds,
            std_error,
            timeouts,
        } => {
            e.u8(O_COALESCENCE);
            e.u64(*trials as u64);
            e.f64(*mean_rounds);
            e.f64(*std_error);
            e.u64(*timeouts as u64);
        }
        JobOutput::Sample { rounds, states } => {
            e.u8(O_SAMPLE);
            e.u64(*rounds);
            e.u32(u32::try_from(states.len()).expect("replica count fits u32"));
            for blob in states {
                e.blob(blob);
            }
        }
        JobOutput::Stream {
            rounds,
            every,
            n,
            states,
            fingerprint,
        } => {
            e.u8(O_STREAM);
            e.u64(*rounds);
            e.u64(*every as u64);
            e.u64(*n as u64);
            e.u64(*states);
            e.u64(*fingerprint);
        }
    }
}

fn decode_result(d: &mut Dec<'_>) -> Result<JobResult, CodecError> {
    let spec = d.str()?.to_string();
    let elapsed_secs = d.f64()?;
    let output = match d.u8()? {
        O_RUN => {
            let rounds = d.u64()?;
            let n = d.usize()?;
            let feasible = match d.u8()? {
                0 => false,
                1 => true,
                other => return Err(malformed(format!("feasible byte 0x{other:02x}"))),
            };
            let fingerprint = d.u64()?;
            let comm = match d.u8()? {
                0 => None,
                1 => Some(CommSummary {
                    rounds_seen: d.u64()?,
                    total_messages: d.u64()?,
                    total_bytes: d.u64()?,
                    total_changed: d.u64()?,
                }),
                other => return Err(malformed(format!("comm flag 0x{other:02x}"))),
            };
            JobOutput::Run {
                rounds,
                n,
                feasible,
                fingerprint,
                comm,
            }
        }
        O_DISTRIBUTION => JobOutput::Distribution {
            replicas: d.u64()?,
            support: d.usize()?,
        },
        O_TV => JobOutput::Tv {
            rounds: d.usize()?,
            replicas: d.usize()?,
            tv: d.f64()?,
        },
        O_COALESCENCE => JobOutput::Coalescence {
            trials: d.usize()?,
            mean_rounds: d.f64()?,
            std_error: d.f64()?,
            timeouts: d.usize()?,
        },
        O_SAMPLE => {
            let rounds = d.u64()?;
            let count = d.u32()? as usize;
            let mut states = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                states.push(d.blob()?);
            }
            JobOutput::Sample { rounds, states }
        }
        O_STREAM => JobOutput::Stream {
            rounds: d.u64()?,
            every: d.usize()?,
            n: d.usize()?,
            states: d.u64()?,
            fingerprint: d.u64()?,
        },
        tag => return Err(malformed(format!("job output tag 0x{tag:02x}"))),
    };
    Ok(JobResult {
        spec,
        output,
        elapsed_secs,
    })
}

// ---------------------------------------------------------------------
// The frame layer
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame: a little-endian `u32` payload
/// length, then the payload — as a **single** `write_all`, so an
/// unbuffered socket sees one packet, not a 4-byte runt that Nagle +
/// delayed-ACK would stall on. Errors if the payload exceeds
/// [`MAX_FRAME`] — encode-side enforcement of the same cap decoding
/// applies.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            CodecError::Oversize {
                len: payload.len() as u64,
            }
            .to_string(),
        ));
    }
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(payload);
    w.write_all(&framed)
}

/// Incremental frame reassembly for a non-blocking read loop: feed
/// whatever bytes arrive with [`FrameBuffer::extend`], pull complete
/// payloads with [`FrameBuffer::next_frame`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete frames not yet pulled plus
    /// any partial tail).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pops the next complete frame payload, `Ok(None)` if more bytes
    /// are needed. An over-cap length prefix returns
    /// [`CodecError::Oversize`] after consuming only the 4 header
    /// bytes, so the session can answer a typed error and resume
    /// parsing at the next byte.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            self.buf.drain(..4);
            return Err(CodecError::Oversize { len: len as u64 });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_packs_at_domain_width() {
        // Ising: bits.
        let ising = StateBlob::pack(&[1, 0, 1, 1, 0, 0, 0, 1, 1], 2);
        assert_eq!(ising.packing(), Packing::Bit);
        assert_eq!(ising.byte_len(), 2);
        assert_eq!(ising.unpack(), vec![1, 0, 1, 1, 0, 0, 0, 1, 1]);
        // Colorings: bytes.
        let col = StateBlob::pack(&[4, 0, 255], 256);
        assert_eq!(col.packing(), Packing::Byte);
        assert_eq!(col.byte_len(), 3);
        assert_eq!(col.unpack(), vec![4, 0, 255]);
        // Huge domains: u32 lanes.
        let wide = StateBlob::pack(&[300, 0], 1000);
        assert_eq!(wide.packing(), Packing::Wide);
        assert_eq!(wide.byte_len(), 8);
        assert_eq!(wide.unpack(), vec![300, 0]);
    }

    #[test]
    fn blob_token_round_trips() {
        for (state, q) in [
            (vec![], 2),
            (vec![0], 1),
            (vec![1, 0, 1], 2),
            (vec![9, 3, 0, 7], 10),
            (vec![70000, 5], 100_000),
        ] {
            let blob = StateBlob::pack(&state, q);
            let token = blob.to_token();
            let back: StateBlob = token.parse().expect("token parses");
            assert_eq!(back, blob, "token {token}");
            assert_eq!(back.unpack(), state);
        }
    }

    #[test]
    fn blob_rejects_bad_parts() {
        assert!(StateBlob::from_parts(4, 0, vec![]).is_err(), "q=0");
        assert!(StateBlob::from_parts(4, 3, vec![1, 2]).is_err(), "short");
        assert!(
            StateBlob::from_parts(2, 3, vec![1, 3]).is_err(),
            "spin ≥ q in byte lanes"
        );
        assert!(
            StateBlob::from_parts(3, 2, vec![0b1111]).is_err(),
            "nonzero spare bits"
        );
        assert!(
            StateBlob::from_parts(8, 1, vec![1]).is_err(),
            "spin ≥ q in bit lanes"
        );
        assert!("2/2".parse::<StateBlob>().is_err(), "missing payload");
        assert!("x/2/AA".parse::<StateBlob>().is_err(), "bad count");
        assert!("8/2/A%".parse::<StateBlob>().is_err(), "bad base64url");
    }

    #[test]
    fn base64url_round_trips() {
        for len in 0..40usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let enc = b64_encode(&bytes);
            assert!(
                enc.bytes()
                    .all(|c| c.is_ascii_alphanumeric() || c == b'-' || c == b'_'),
                "alphabet stays URL-safe"
            );
            assert_eq!(b64_decode(&enc).unwrap(), bytes, "len {len}");
        }
        assert!(b64_decode("AAAAA").is_err(), "length 5 is impossible");
    }

    #[test]
    fn frame_buffer_reassembles_and_resyncs() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"second").unwrap();

        let mut fb = FrameBuffer::new();
        // Feed byte by byte: frames reassemble across arbitrary splits.
        let mut got = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, vec![b"first".to_vec(), Vec::new(), b"second".to_vec()]);

        // An over-cap prefix errors once, consumes 4 bytes, and the
        // next well-formed frame still parses.
        fb.extend(&(u32::MAX).to_le_bytes());
        let mut after = Vec::new();
        write_frame(&mut after, b"ok").unwrap();
        fb.extend(&after);
        assert_eq!(
            fb.next_frame(),
            Err(CodecError::Oversize {
                len: u64::from(u32::MAX)
            })
        );
        assert_eq!(fb.next_frame().unwrap(), Some(b"ok".to_vec()));
    }

    #[test]
    fn oversize_payload_refuses_to_encode() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
        assert!(sink.is_empty(), "nothing written on refusal");
    }

    #[test]
    fn truncated_records_are_truncated_errors() {
        let frame = ClientFrame::Submit {
            id: 7,
            spec: "graph=cycle:8 model=ising:beta=0.2".into(),
        };
        let bytes = encode_client(&frame);
        for cut in 0..bytes.len() {
            let err = decode_client(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::Malformed(_)),
                "cut {cut}: {err}"
            );
        }
        assert_eq!(decode_client(&bytes).unwrap(), frame);
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut bytes = encode_client(&ClientFrame::Shutdown);
        bytes.push(0);
        assert!(matches!(
            decode_client(&bytes),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn codec_names_round_trip() {
        for c in [Codec::Text, Codec::Binary] {
            assert_eq!(c.to_string().parse::<Codec>().unwrap(), c);
        }
        assert!("gzip".parse::<Codec>().is_err());
    }
}
