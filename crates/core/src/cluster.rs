//! The cluster layer: a sweep coordinator over a fleet of `lsl serve`
//! workers, plus cross-process sharded chains.
//!
//! Two tiers, one determinism contract:
//!
//! **Tier A — sweep fan-out.** [`Coordinator::run_sweep`] expands a
//! sweep line exactly as [`Service::submit_sweep`](crate::service::Service::submit_sweep)
//! does and fans the member jobs across the worker fleet, one
//! [`Client`] session per worker, pulling from a shared queue (natural
//! load balancing: a fast worker claims more members). Every member is
//! a deterministic function of its spec line, so *where* it runs is
//! invisible in the result: the aggregated [`SweepResult`] is
//! bit-identical to a single-server run, member order preserved
//! (expansion order, regardless of completion order). A worker that
//! dies mid-member loses nothing — the member is requeued
//! ([`ClusterEvent::Requeued`]) and re-executed elsewhere, by the same
//! determinism argument.
//!
//! **Tier B — distributed sharded chains.** A member with
//! `backend=cluster:k` runs as `k` owner-computes shards spread over
//! the fleet: each shard lives worker-side (a `ShardCore` driven by
//! this module's `run_shard`), and the per-round boundary exchange of the
//! in-process [`ShardedChain`](crate::engine::sharded::ShardedChain)
//! becomes `shard-sync` frames relayed through the coordinator. The
//! round barrier is keyed by `(master_seed, round)`: every draw of
//! round `r` is a pure function of `(seed, r, vertex-or-edge)`
//! (counter-keyed randomness), halo proposals are recomputed locally
//! (rules with `STATE_FREE_PROPOSE`), and ghost copies are refreshed
//! every round — so the distributed trajectory is bit-identical to the
//! in-process sharded chain, which is bit-identical to sequential.
//! The coordinator replays the in-process channel accounting
//! analytically (it sees every frontier value anyway), so even the
//! [`CommSummary`] comes back identical — `messages ≤ 2·cut` and all.
//!
//! Property-tested against the single-process paths in
//! `tests/cluster_identity.rs`, including under injected worker loss.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lsl_graph::partition::{Partition, Partitioner};
use lsl_graph::VertexId;
use lsl_mrf::{Mrf, Spin};

use crate::codec::{Codec, StateBlob};
use crate::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule, MetropolisRule};
use crate::engine::sharded::{exchange_plan, CommStats, ExchangePlan, ShardCore};
use crate::engine::{Packing, RoundCtx, SyncRule};
use crate::lifecycle::RejectReason;
use crate::net::{Client, ConnectError, NetError};
use crate::proto::{ClientFrame, ServerFrame};
use crate::sampler::{dispatch_rule, Algorithm, Sched};
use crate::schedule::{BernoulliFilterScheduler, ChromaticScheduler, SingletonScheduler};
use crate::spec::{
    fingerprint, BuiltModel, CommSummary, JobKind, JobOutput, JobResult, JobSpec, SpecError,
    SweepResult, SweepSpec,
};

/// Consecutive failures a worker thread tolerates before it gives up
/// on its worker for the rest of the sweep (each failure requeues the
/// member first, so surviving workers absorb the load).
const FAILURE_BUDGET: u32 = 3;

/// How long an idle worker thread sleeps between queue polls while
/// other workers still hold in-flight members (one of which may yet be
/// requeued).
const QUEUE_POLL: Duration = Duration::from_millis(10);

/// Something the coordinator observed about the fleet while a sweep
/// ran — fault handling made visible, without failing the sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A worker stopped answering (connect, ping, or mid-job socket
    /// failure) and was benched after its failure budget.
    WorkerLost {
        /// The worker's address.
        worker: String,
        /// What failed, human-readable.
        detail: String,
    },
    /// A member job was handed back to the queue after its worker
    /// failed; another worker (or a reconnect) will re-run it.
    Requeued {
        /// The member's expansion index.
        member: usize,
        /// The worker that lost it.
        worker: String,
    },
}

impl std::fmt::Display for ClusterEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterEvent::WorkerLost { worker, detail } => {
                write!(f, "worker {worker} lost: {detail}")
            }
            ClusterEvent::Requeued { member, worker } => {
                write!(f, "member {member} requeued (was on {worker})")
            }
        }
    }
}

/// Why a cluster sweep could not produce a result.
#[derive(Debug)]
pub enum ClusterError {
    /// The coordinator was given an empty worker list.
    NoWorkers,
    /// A worker address never accepted a connection, even with retry.
    Connect(ConnectError),
    /// A session-level protocol failure outside any one member job.
    Net(NetError),
    /// The sweep line failed to parse, or a member job failed
    /// deterministically (the same error a single-server run reports).
    Spec(SpecError),
    /// Every retry avenue was exhausted with members still unresolved
    /// — the fleet died faster than the work could be replayed.
    Exhausted {
        /// Members that never produced a result.
        unresolved: usize,
        /// Total members in the sweep.
        jobs: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoWorkers => f.write_str("no worker addresses given"),
            ClusterError::Connect(e) => write!(f, "{e}"),
            ClusterError::Net(e) => write!(f, "{e}"),
            ClusterError::Spec(e) => write!(f, "{e}"),
            ClusterError::Exhausted { unresolved, jobs } => write!(
                f,
                "sweep exhausted its retry budget: {unresolved} of {jobs} members unresolved"
            ),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Connect(e) => Some(e),
            ClusterError::Net(e) => Some(e),
            ClusterError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConnectError> for ClusterError {
    fn from(e: ConnectError) -> Self {
        ClusterError::Connect(e)
    }
}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<SpecError> for ClusterError {
    fn from(e: SpecError) -> Self {
        ClusterError::Spec(e)
    }
}

/// A finished cluster sweep: the aggregate (bit-identical to a
/// single-server [`SweepResult`]) plus the fault-handling events
/// observed along the way.
#[derive(Debug)]
pub struct ClusterRun {
    /// The aggregated sweep result, members in expansion order.
    pub result: SweepResult,
    /// Worker-loss and requeue events, in observation order.
    pub events: Vec<ClusterEvent>,
}

/// A sweep coordinator over a fleet of `lsl serve` workers — see the
/// [module docs](self) for the two execution tiers.
///
/// ```no_run
/// use lsl_core::cluster::Coordinator;
/// let coord = Coordinator::connect(["127.0.0.1:7401", "127.0.0.1:7402"])?;
/// let run = coord.run_sweep("graph=torus:8x8 model=potts:3:0.5 seeds=0..16")?;
/// println!("{}", run.result.summary);
/// # Ok::<(), lsl_core::cluster::ClusterError>(())
/// ```
pub struct Coordinator {
    workers: Vec<String>,
    codec: Codec,
    ping_timeout: Duration,
    attempts: u32,
    base_delay: Duration,
}

impl Coordinator {
    /// Connects to a worker fleet: records the addresses and probes
    /// each one (connect + ping) so a dead address fails fast, with
    /// the default knobs (binary codec, 5 s ping timeout, 4 connect
    /// attempts at 50 ms base backoff).
    ///
    /// # Errors
    /// [`ClusterError::NoWorkers`] on an empty list; a typed
    /// [`ClusterError::Connect`] / [`ClusterError::Net`] naming the
    /// first unreachable worker otherwise.
    pub fn connect<S: Into<String>>(
        workers: impl IntoIterator<Item = S>,
    ) -> Result<Coordinator, ClusterError> {
        let workers: Vec<String> = workers.into_iter().map(Into::into).collect();
        if workers.is_empty() {
            return Err(ClusterError::NoWorkers);
        }
        let coord = Coordinator {
            workers,
            codec: Codec::Binary,
            ping_timeout: Duration::from_secs(5),
            attempts: 4,
            base_delay: Duration::from_millis(50),
        };
        for worker in &coord.workers {
            let _ = coord.open_live(worker)?;
        }
        Ok(coord)
    }

    /// Sets the session codec workers are spoken to with (default:
    /// [`Codec::Binary`]).
    #[must_use]
    pub fn codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the liveness budget: how long a worker may take to answer
    /// a ping — or to deliver a shard-session frame — before it is
    /// declared [`ClusterEvent::WorkerLost`].
    #[must_use]
    pub fn ping_timeout(mut self, timeout: Duration) -> Self {
        self.ping_timeout = timeout;
        self
    }

    /// Sets the connect/retry budget: reconnect attempts per worker,
    /// and full-job retries for distributed members.
    #[must_use]
    pub fn attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Sets the base delay of the bounded exponential backoff between
    /// retry attempts (doubling per attempt).
    #[must_use]
    pub fn base_delay(mut self, delay: Duration) -> Self {
        self.base_delay = delay;
        self
    }

    /// The worker addresses, as given.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    /// Runs one sweep line across the fleet and aggregates the member
    /// results in expansion order — bit-identical to
    /// [`Service::submit_sweep`](crate::service::Service::submit_sweep)
    /// on a single server, including after worker loss (lost members
    /// are requeued and replayed; determinism makes the replay exact).
    ///
    /// Plain members fan out over per-worker sessions; members with
    /// `backend=cluster:k` on an MRF `run` job instead execute as `k`
    /// cross-process shards spread over the fleet (see the
    /// [module docs](self)).
    ///
    /// # Errors
    /// [`ClusterError::Spec`] for parse failures and deterministic
    /// member errors (what a single server would report);
    /// [`ClusterError::Exhausted`] when worker loss outran the retry
    /// budget.
    pub fn run_sweep(&self, line: &str) -> Result<ClusterRun, ClusterError> {
        let sweep: SweepSpec = line.parse().map_err(ClusterError::Spec)?;
        let members = sweep.expand();
        let jobs = members.len();
        let mut plain: VecDeque<usize> = VecDeque::new();
        let mut distributed: Vec<usize> = Vec::new();
        for (i, member) in members.iter().enumerate() {
            if is_distributed(member) {
                distributed.push(i);
            } else {
                plain.push_back(i);
            }
        }

        let slots: Mutex<Vec<Option<Result<JobResult, SpecError>>>> = Mutex::new(vec![None; jobs]);
        let events: Mutex<Vec<ClusterEvent>> = Mutex::new(Vec::new());

        if !plain.is_empty() {
            let remaining = AtomicUsize::new(plain.len());
            let queue = Mutex::new(plain);
            std::thread::scope(|scope| {
                for worker in &self.workers {
                    scope.spawn(|| {
                        self.worker_loop(worker, &members, &queue, &slots, &remaining, &events);
                    });
                }
            });
        }

        for &index in &distributed {
            self.run_distributed(index, &members[index], &slots, &events);
        }

        let slots = slots
            .into_inner()
            .expect("no thread panicked holding slots");
        let unresolved = slots.iter().filter(|s| s.is_none()).count();
        let mut results = Vec::with_capacity(jobs);
        for slot in slots {
            match slot {
                Some(Ok(result)) => results.push(result),
                Some(Err(e)) => return Err(ClusterError::Spec(e)),
                None => return Err(ClusterError::Exhausted { unresolved, jobs }),
            }
        }
        Ok(ClusterRun {
            // The canonical line, exactly what `Service::submit_sweep`
            // stamps on its aggregate.
            result: SweepResult::aggregate(sweep.to_string(), results),
            events: events
                .into_inner()
                .expect("no thread panicked holding events"),
        })
    }

    /// Opens a session to `worker` and proves it live with a ping.
    fn open_live(&self, worker: &str) -> Result<Client, ClusterError> {
        let mut client =
            Client::connect_with_retry(worker, self.codec, self.attempts, self.base_delay)?;
        client.ping(self.ping_timeout)?;
        Ok(client)
    }

    /// One worker's pull loop over the plain-member queue. Failures
    /// requeue the member *before* any bail-out path, so no member is
    /// ever lost; after [`FAILURE_BUDGET`] consecutive failures the
    /// worker is benched and the surviving threads absorb its share.
    fn worker_loop(
        &self,
        worker: &str,
        members: &[JobSpec],
        queue: &Mutex<VecDeque<usize>>,
        slots: &Mutex<Vec<Option<Result<JobResult, SpecError>>>>,
        remaining: &AtomicUsize,
        events: &Mutex<Vec<ClusterEvent>>,
    ) {
        let mut client: Option<Client> = None;
        let mut failures = 0u32;
        loop {
            let index = queue.lock().expect("queue lock").pop_front();
            let Some(index) = index else {
                if remaining.load(Ordering::Acquire) == 0 {
                    return;
                }
                // Members are still in flight elsewhere; one may yet
                // come back to the queue.
                std::thread::sleep(QUEUE_POLL);
                continue;
            };
            // INVARIANT: from here on, `index` is either resolved into
            // its slot or pushed back onto the queue — every path.
            if client.is_none() {
                match self.open_live(worker) {
                    Ok(c) => client = Some(c),
                    Err(e) => {
                        queue.lock().expect("queue lock").push_back(index);
                        failures += 1;
                        let mut ev = events.lock().expect("events lock");
                        ev.push(ClusterEvent::WorkerLost {
                            worker: worker.to_string(),
                            detail: e.to_string(),
                        });
                        ev.push(ClusterEvent::Requeued {
                            member: index,
                            worker: worker.to_string(),
                        });
                        drop(ev);
                        if failures >= FAILURE_BUDGET {
                            return;
                        }
                        continue;
                    }
                }
            }
            let session = client.as_mut().expect("connected above");
            match run_member(session, &members[index]) {
                Ok(outcome) => {
                    failures = 0;
                    slots.lock().expect("slots lock")[index] = Some(outcome);
                    remaining.fetch_sub(1, Ordering::AcqRel);
                }
                Err(MemberFailure::Transient) => {
                    // The worker is alive but declined (draining,
                    // busy): give the member to someone else.
                    queue.lock().expect("queue lock").push_back(index);
                    failures += 1;
                    events
                        .lock()
                        .expect("events lock")
                        .push(ClusterEvent::Requeued {
                            member: index,
                            worker: worker.to_string(),
                        });
                    if failures >= FAILURE_BUDGET {
                        return;
                    }
                }
                Err(MemberFailure::Lost(detail)) => {
                    queue.lock().expect("queue lock").push_back(index);
                    failures += 1;
                    client = None;
                    let mut ev = events.lock().expect("events lock");
                    ev.push(ClusterEvent::WorkerLost {
                        worker: worker.to_string(),
                        detail,
                    });
                    ev.push(ClusterEvent::Requeued {
                        member: index,
                        worker: worker.to_string(),
                    });
                    drop(ev);
                    if failures >= FAILURE_BUDGET {
                        return;
                    }
                }
            }
        }
    }

    /// Runs one distributed member with whole-member retry: a failed
    /// attempt tears down the shard sessions and replays the member
    /// from scratch — determinism makes the replay bit-exact, so
    /// worker loss mid-chain costs time, never correctness.
    fn run_distributed(
        &self,
        index: usize,
        member: &JobSpec,
        slots: &Mutex<Vec<Option<Result<JobResult, SpecError>>>>,
        events: &Mutex<Vec<ClusterEvent>>,
    ) {
        // Workers still trusted for this member: a retry after worker
        // loss re-spreads the shards over the survivors (placement is
        // invisible in the result, so the replay stays bit-exact).
        let mut fleet: Vec<String> = self.workers.clone();
        for attempt in 0..self.attempts.max(1) {
            if attempt > 0 {
                let backoff = self
                    .base_delay
                    .saturating_mul(1u32 << (attempt - 1).min(16));
                std::thread::sleep(backoff);
            }
            match self.try_distributed(member, &fleet) {
                Ok(result) => {
                    slots.lock().expect("slots lock")[index] = Some(Ok(result));
                    return;
                }
                Err(DistFailure::Spec(e)) => {
                    // Deterministic: a retry would fail identically.
                    slots.lock().expect("slots lock")[index] = Some(Err(e));
                    return;
                }
                Err(DistFailure::Lost { worker, detail }) => {
                    let mut ev = events.lock().expect("events lock");
                    ev.push(ClusterEvent::WorkerLost {
                        worker: worker.clone(),
                        detail,
                    });
                    ev.push(ClusterEvent::Requeued {
                        member: index,
                        worker: worker.clone(),
                    });
                    drop(ev);
                    fleet.retain(|w| w != &worker);
                    if fleet.is_empty() {
                        break;
                    }
                }
            }
        }
        // The slot stays empty; `run_sweep` reports `Exhausted`.
    }

    /// One attempt at a distributed member: open `k` shard sessions
    /// over the fleet, relay the per-round boundary exchange, and
    /// assemble the result — replaying the in-process communication
    /// accounting so the [`CommSummary`] is bit-identical too.
    fn try_distributed(
        &self,
        member: &JobSpec,
        fleet: &[String],
    ) -> Result<JobResult, DistFailure> {
        let started = Instant::now();
        let model = member.build_model();
        let BuiltModel::Mrf(mrf) = &model else {
            return Err(DistFailure::Spec(SpecError::Unsupported {
                message: "distributed shard sessions need an MRF model".into(),
            }));
        };
        // Pre-flight the exact combination checks a worker applies, so
        // impossible specs fail typed and without touching the fleet.
        member
            .sampler_builder(&model)
            .burn_in(member.burn_in.unwrap_or(0))
            .validate()
            .map_err(|e| DistFailure::Spec(e.into()))?;
        let JobKind::Run { rounds } = member.job_or_default() else {
            return Err(DistFailure::Spec(SpecError::Unsupported {
                message: "distributed shard sessions run `run` jobs only".into(),
            }));
        };
        let n = mrf.num_vertices();
        // The same min-then-max clamp the in-process builder applies.
        let k = member.backend_or_default().worker_count().min(n).max(1);
        let partition = member
            .partitioner
            .unwrap_or(Partitioner::Contiguous)
            .partition(mrf.graph(), k);
        let plan = exchange_plan(mrf.graph(), &partition);
        let burn_in = member.burn_in.unwrap_or(0);
        let total = burn_in + rounds;
        let seed = member.seed_or_default();
        let q = mrf.q();
        let packing = Packing::auto_for(q);
        let spec_line = member.to_string();

        // Shard s lives on worker s mod W (round-robin placement).
        let mut conns: Vec<(String, Client)> = Vec::with_capacity(k);
        for s in 0..k {
            let worker = &fleet[s % fleet.len()];
            let lost = |e: &dyn std::fmt::Display| DistFailure::Lost {
                worker: worker.clone(),
                detail: e.to_string(),
            };
            let mut client = self.open_live(worker).map_err(|e| lost(&e))?;
            client
                .send_frame(&ClientFrame::ShardInit {
                    id: s as u64,
                    shard: s as u32,
                    of: k as u32,
                    spec: spec_line.clone(),
                })
                .map_err(|e| lost(&e))?;
            conns.push((worker.clone(), client));
        }

        // Round routing, precomputed once: which vertex (if any) each
        // round resolves — the same `active_vertex` answers the
        // in-process chain gets, since both key off `(seed, round)`.
        let alg = member.algorithm_or_default();
        let sched = member.scheduler;
        let routing: Vec<Option<VertexId>> = dispatch_rule!(alg, sched, mrf, |rule| {
            (0..total)
                .map(|r| rule.active_vertex(&RoundCtx::new(mrf, seed, r as u64)))
                .collect()
        });

        // Channel accounting, replayed analytically. A ghost copy
        // always equals the vertex's previous committed value (it is
        // refreshed on every round that could have changed it), so one
        // `cur` vector suffices: `subs_count[v]` channels deliver `v`
        // whenever it ships, and a delivery `changed` iff the value
        // moved since the last round.
        let mut subs_count = vec![0u64; n];
        let mut total_pairs = 0u64;
        for (_owner, _subscriber, vertices) in &plan.channels {
            for &v in vertices {
                subs_count[v.index()] += 1;
            }
            total_pairs += vertices.len() as u64;
        }
        let mut cur = crate::single_site::default_start(mrf);
        let mut comm = CommStats::default();
        // A shard frame may lag a full round of local compute behind a
        // ping, so the liveness budget here is the ping budget with
        // headroom.
        let frame_budget = self.ping_timeout.saturating_mul(4);

        let mut fronts: Vec<Vec<Spin>> = vec![Vec::new(); k];
        for r in 0..total {
            for (s, (worker, client)) in conns.iter_mut().enumerate() {
                let deadline = Instant::now() + frame_budget;
                fronts[s] = recv_shard_sync(
                    client,
                    worker,
                    s as u64,
                    r as u64,
                    plan.boundary_out[s].len(),
                    deadline,
                )?;
            }
            match routing[r] {
                Some(v) => {
                    // Single-site round: only `v` can have changed, and
                    // only its subscribing channels carry a message.
                    let vi = v.index();
                    let s = partition.shard_of(v);
                    let (messages, changed) = match plan.boundary_out[s].binary_search(&v) {
                        Ok(pos) => {
                            let new = fronts[s][pos];
                            let delta = u64::from(new != cur[vi]);
                            cur[vi] = new;
                            (subs_count[vi], subs_count[vi] * delta)
                        }
                        // An interior vertex crosses no boundary.
                        Err(_) => (0, 0),
                    };
                    comm.record(r as u64, messages, changed, packing.bits_per_spin());
                }
                None => {
                    // Synchronous round: every channel ships its whole
                    // frontier.
                    let mut changed = 0u64;
                    for s in 0..k {
                        for (i, &v) in plan.boundary_out[s].iter().enumerate() {
                            let new = fronts[s][i];
                            let vi = v.index();
                            if new != cur[vi] {
                                changed += subs_count[vi];
                            }
                            cur[vi] = new;
                        }
                    }
                    comm.record(r as u64, total_pairs, changed, packing.bits_per_spin());
                }
            }
            // Release the barrier: every shard gets its full halo
            // (unchanged entries are no-op ghost refreshes, identical
            // to the in-process double buffer).
            for (s, (worker, client)) in conns.iter_mut().enumerate() {
                let spins: Vec<Spin> = plan.halos[s].iter().map(|&v| cur[v.index()]).collect();
                client
                    .send_frame(&ClientFrame::ShardSync {
                        id: s as u64,
                        round: r as u64,
                        blob: StateBlob::pack(&spins, q),
                    })
                    .map_err(|e| DistFailure::Lost {
                        worker: worker.clone(),
                        detail: e.to_string(),
                    })?;
            }
        }

        // Collect the final owned states and stitch the configuration.
        let mut state: Vec<Spin> = vec![0; n];
        for (s, (worker, client)) in conns.iter_mut().enumerate() {
            let deadline = Instant::now() + frame_budget;
            let owned = partition.members(s);
            let spins = recv_shard_done(
                client,
                worker,
                s as u64,
                total as u64,
                owned.len(),
                deadline,
            )?;
            for (i, &v) in owned.iter().enumerate() {
                state[v.index()] = spins[i];
            }
        }

        let output = JobOutput::Run {
            rounds: total as u64,
            n,
            feasible: mrf.is_feasible(&state),
            fingerprint: fingerprint(&state),
            comm: Some(CommSummary::of(&comm)),
        };
        Ok(JobResult {
            spec: spec_line,
            output,
            elapsed_secs: started.elapsed().as_secs_f64(),
        })
    }
}

/// Whether a member executes as cross-process shards (Tier B) rather
/// than as one job on one worker. CSP models and non-`run` jobs fall
/// back to the plain path — worker-side, `backend=cluster:k` builds
/// the in-process sharded chain, which is bit-identical anyway.
fn is_distributed(member: &JobSpec) -> bool {
    matches!(member.backend, Some(crate::engine::Backend::Cluster { .. }))
        && matches!(member.job_or_default(), JobKind::Run { .. })
        && !member.model.is_csp()
}

/// How one plain member attempt failed.
enum MemberFailure {
    /// The worker is alive but declined the job for reasons another
    /// worker may not share (draining, admission caps, mid-drain
    /// cancellation).
    Transient,
    /// The session died: socket or protocol failure.
    Lost(String),
}

/// Runs one plain member on an open worker session: submit, drain,
/// classify. Deterministic member errors come back as `Ok(Err(_))` —
/// they are results (a single server would report the same), not
/// fleet faults.
fn run_member(
    client: &mut Client,
    member: &JobSpec,
) -> Result<Result<JobResult, SpecError>, MemberFailure> {
    client
        .submit(&member.to_string())
        .map_err(|e| MemberFailure::Lost(e.to_string()))?;
    let outcomes = client
        .drain()
        .map_err(|e| MemberFailure::Lost(e.to_string()))?;
    let outcome = outcomes
        .into_iter()
        .next()
        .ok_or_else(|| MemberFailure::Lost("drain returned no outcome".into()))?;
    let result = outcome
        .members
        .into_iter()
        .next()
        .ok_or_else(|| MemberFailure::Lost("outcome carried no members".into()))?;
    match result {
        Ok(result) => Ok(Ok(result)),
        // Transient server states: retry the member elsewhere.
        Err(SpecError::Cancelled) => Err(MemberFailure::Transient),
        Err(SpecError::ServiceStopped) => Err(MemberFailure::Lost("worker service stopped".into())),
        Err(SpecError::Rejected(reason)) => match reason {
            // A round-budget rejection is a property of the *job*:
            // every worker with the same limits rejects it forever.
            RejectReason::RoundBudget { .. } => Ok(Err(SpecError::Rejected(reason))),
            RejectReason::QueueFull { .. }
            | RejectReason::SessionBusy { .. }
            | RejectReason::Draining => Err(MemberFailure::Transient),
        },
        // Everything else is deterministic — report it as the member's
        // result, exactly as a single-server sweep would.
        Err(e) => Ok(Err(e)),
    }
}

/// How one distributed-member attempt failed.
enum DistFailure {
    /// Deterministic: pre-flight validation or an equivalent error a
    /// single-process run would also report. Never retried.
    Spec(SpecError),
    /// A worker died or broke protocol mid-chain; the whole member is
    /// replayed (determinism makes the replay exact).
    Lost {
        /// The worker blamed.
        worker: String,
        /// What failed.
        detail: String,
    },
}

/// Receives one `shard-sync` frame for `(id, round)` and unpacks its
/// frontier, validating shape.
fn recv_shard_sync(
    client: &mut Client,
    worker: &str,
    id: u64,
    round: u64,
    expected_len: usize,
    deadline: Instant,
) -> Result<Vec<Spin>, DistFailure> {
    let lost = |detail: String| DistFailure::Lost {
        worker: worker.to_string(),
        detail,
    };
    match client.recv_frame(Some(deadline)) {
        Ok(Some(ServerFrame::ShardSync {
            id: got_id,
            round: got_round,
            blob,
        })) if got_id == id && got_round == round => {
            let spins = blob.unpack();
            if spins.len() != expected_len {
                return Err(lost(format!(
                    "shard {id} round {round}: frontier of {} spins, expected {expected_len}",
                    spins.len()
                )));
            }
            Ok(spins)
        }
        Ok(Some(ServerFrame::Error { message, .. })) => {
            Err(lost(format!("shard {id}: worker error: {message}")))
        }
        Ok(Some(frame)) => Err(lost(format!(
            "shard {id} round {round}: unexpected frame {frame}"
        ))),
        Ok(None) => Err(lost(format!("shard {id}: worker closed the connection"))),
        Err(e) => Err(lost(format!("shard {id}: {e}"))),
    }
}

/// Receives the terminal `shard-done` frame and unpacks the shard's
/// owned states, validating shape.
fn recv_shard_done(
    client: &mut Client,
    worker: &str,
    id: u64,
    total_rounds: u64,
    expected_len: usize,
    deadline: Instant,
) -> Result<Vec<Spin>, DistFailure> {
    let lost = |detail: String| DistFailure::Lost {
        worker: worker.to_string(),
        detail,
    };
    match client.recv_frame(Some(deadline)) {
        Ok(Some(ServerFrame::ShardDone {
            id: got_id,
            rounds,
            blob,
        })) if got_id == id => {
            if rounds != total_rounds {
                return Err(lost(format!(
                    "shard {id}: finished after {rounds} rounds, expected {total_rounds}"
                )));
            }
            let spins = blob.unpack();
            if spins.len() != expected_len {
                return Err(lost(format!(
                    "shard {id}: {} owned spins, expected {expected_len}",
                    spins.len()
                )));
            }
            Ok(spins)
        }
        Ok(Some(ServerFrame::Error { message, .. })) => {
            Err(lost(format!("shard {id}: worker error: {message}")))
        }
        Ok(Some(frame)) => Err(lost(format!("shard {id}: unexpected frame {frame}"))),
        Ok(None) => Err(lost(format!("shard {id}: worker closed the connection"))),
        Err(e) => Err(lost(format!("shard {id}: {e}"))),
    }
}

// ---------------------------------------------------------------------
// Worker side: one shard session on a server connection
// ---------------------------------------------------------------------

/// Drives one shard of a distributed chain on the worker — the server
/// session loop spawns this on `shard-init` and feeds it the
/// connection's subsequent `shard-sync` frames through `feed`.
///
/// Everything is re-derived from the spec line (graph, model, rule,
/// partition, start, seed), so coordinator and worker agree on the
/// exchange plan without shipping it. Protocol violations answer with
/// an `error` frame; a dropped coordinator (closed feed) just ends the
/// session silently.
pub(crate) fn run_shard(
    send: impl Fn(&ServerFrame),
    id: u64,
    shard: u32,
    of: u32,
    spec: &str,
    feed: &Receiver<(u64, StateBlob)>,
) {
    let fail = |message: String| {
        send(&ServerFrame::Error {
            id: Some(id),
            message,
        })
    };
    let member: JobSpec = match spec.parse() {
        Ok(member) => member,
        Err(e) => return fail(format!("shard spec rejected: {e}")),
    };
    let model = member.build_model();
    let BuiltModel::Mrf(mrf) = &model else {
        return fail("shard sessions need an MRF model".into());
    };
    let JobKind::Run { rounds } = member.job_or_default() else {
        return fail("shard sessions run `run` jobs only".into());
    };
    if let Err(e) = member
        .sampler_builder(&model)
        .burn_in(member.burn_in.unwrap_or(0))
        .validate()
    {
        return fail(SpecError::from(e).to_string());
    }
    let n = mrf.num_vertices();
    let k = member.backend_or_default().worker_count().min(n).max(1);
    if of as usize != k {
        return fail(format!(
            "shard-init of={of} disagrees with the spec's {k} shards"
        ));
    }
    if shard as usize >= k {
        return fail(format!("shard {shard} out of range for {k} shards"));
    }
    let partition = member
        .partitioner
        .unwrap_or(Partitioner::Contiguous)
        .partition(mrf.graph(), k);
    let plan = exchange_plan(mrf.graph(), &partition);
    let start = crate::single_site::default_start(mrf);
    let burn_in = member.burn_in.unwrap_or(0);
    let total = burn_in + rounds;
    let seed = member.seed_or_default();
    let q = mrf.q();
    let packing = Packing::auto_for(q);
    let s = shard as usize;
    let alg = member.algorithm_or_default();
    let sched = member.scheduler;
    dispatch_rule!(alg, sched, mrf, |rule| drive_shard(
        &send, id, &rule, mrf, &partition, &plan, s, &start, packing, q, seed, total, feed,
    ));
}

/// The monomorphic shard loop: advance one round, publish the owned
/// frontier, block on the coordinator's halo — the cross-process
/// double buffer. Mirrors `ShardedChain::step_keyed` exactly (same
/// [`ShardCore`] methods in the same order), which is the whole
/// bit-identity argument.
#[allow(clippy::too_many_arguments)]
fn drive_shard<R: SyncRule>(
    send: &impl Fn(&ServerFrame),
    id: u64,
    rule: &R,
    mrf: &Arc<Mrf>,
    partition: &Partition,
    plan: &ExchangePlan,
    s: usize,
    start: &[Spin],
    packing: Packing,
    q: usize,
    seed: u64,
    total: usize,
    feed: &Receiver<(u64, StateBlob)>,
) {
    let fail = |message: String| {
        send(&ServerFrame::Error {
            id: Some(id),
            message,
        })
    };
    // The owner-computes invariant: halo proposals must be recomputable
    // from state alone (same guard as `ShardedChain::with_state`).
    if R::HAS_PROPOSE && !R::STATE_FREE_PROPOSE {
        return fail(format!(
            "rule {} cannot recompute halo proposals shard-locally",
            rule.name()
        ));
    }
    let mut core = ShardCore::build(mrf, rule, partition, plan, s, start, packing);
    for r in 0..total {
        let ctx = RoundCtx::new(mrf, seed, r as u64);
        if let Some(v) = rule.active_vertex(&ctx) {
            if partition.shard_of(v) == s {
                core.resolve_single(rule, &ctx, v);
            }
        } else {
            core.propose_and_resolve(rule, &ctx);
            core.commit(None);
        }
        let frontier = core.spins_of(&core.boundary_out);
        send(&ServerFrame::ShardSync {
            id,
            round: r as u64,
            blob: StateBlob::pack(&frontier, q),
        });
        let (round, halo) = match feed.recv() {
            Ok(pair) => pair,
            // Coordinator gone (connection closed): end quietly.
            Err(_) => return,
        };
        if round != r as u64 {
            return fail(format!(
                "shard-sync for round {round} arrived during round {r}"
            ));
        }
        let halo = halo.unpack();
        if halo.len() != core.halo.len() {
            return fail(format!(
                "halo of {} spins, expected {}",
                halo.len(),
                core.halo.len()
            ));
        }
        for i in 0..halo.len() {
            let v = core.halo[i];
            core.set_remote(v, halo[i]);
        }
    }
    let owned = core.spins_of(&core.owned);
    send(&ServerFrame::ShardDone {
        id,
        rounds: total as u64,
        blob: StateBlob::pack(&owned, q),
    });
}
