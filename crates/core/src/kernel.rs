//! Exact transition kernels of the sampling chains on small instances.
//!
//! The paper's correctness claims — Proposition 3.1 (LubyGlauber is
//! reversible with stationary distribution µ) and Theorem 4.1 (likewise
//! for LocalMetropolis) — are statements about transition kernels. On
//! small instances we *construct those kernels exactly*:
//!
//! * [`glauber_kernel`] — the single-site heat-bath kernel;
//! * [`luby_set_distribution`] — the exact distribution of the Luby-step
//!   independent set (by enumerating rank orderings);
//! * [`luby_glauber_kernel`] — Algorithm 1's kernel under any explicit
//!   scheduling distribution;
//! * [`local_metropolis_kernel`] — Algorithm 2's kernel, by enumerating
//!   proposal vectors and edge-coin patterns — including the rule-3
//!   ablation, whose broken reversibility experiment E9 quantifies.
//!
//! States are indexed as base-`q` numbers via
//! [`lsl_mrf::gibbs::encode_config`], aligning kernels with enumerated
//! Gibbs vectors.

use lsl_analysis::Kernel;
use lsl_graph::Graph;
use lsl_mrf::gibbs::{checked_pow, decode_config};
use lsl_mrf::{Mrf, Spin};
use std::collections::HashMap;

/// Maximum number of states for kernel construction.
pub const MAX_KERNEL_STATES: usize = 1 << 12;

fn state_count(mrf: &Mrf) -> usize {
    checked_pow(mrf.q(), mrf.num_vertices())
        .filter(|&t| t <= MAX_KERNEL_STATES)
        .expect("state space too large for exact kernels")
}

fn rows_from_maps(maps: Vec<HashMap<usize, f64>>) -> Kernel {
    let rows = maps
        .into_iter()
        .map(|m| {
            let mut row: Vec<(usize, f64)> = m.into_iter().filter(|&(_, p)| p > 0.0).collect();
            row.sort_by_key(|&(j, _)| j);
            // Renormalize tiny floating drift so Kernel::new's tolerance
            // check reflects structural correctness, not summation order.
            let sum: f64 = row.iter().map(|&(_, p)| p).sum();
            debug_assert!((sum - 1.0).abs() < 1e-6, "row sum {sum}");
            for (_, p) in &mut row {
                *p /= sum;
            }
            row
        })
        .collect();
    Kernel::new(rows).expect("constructed kernel must be stochastic")
}

/// The exact single-site heat-bath (Glauber) kernel.
///
/// From state `X`: pick `v` uniformly, resample from µ_v(·|X_Γ(v)). If the
/// marginal at `(X, v)` is ill-defined (all-zero weights) the chain holds,
/// matching the convention that the paper's well-definedness assumption
/// rules such states out.
///
/// # Panics
/// Panics if `q^n` exceeds [`MAX_KERNEL_STATES`].
pub fn glauber_kernel(mrf: &Mrf) -> Kernel {
    let total = state_count(mrf);
    let n = mrf.num_vertices();
    let q = mrf.q();
    let mut maps: Vec<HashMap<usize, f64>> = vec![HashMap::new(); total];
    let mut config = vec![0 as Spin; n];
    let mut weights = vec![0.0; q];
    for x in 0..total {
        decode_config(x, q, &mut config);
        let row = &mut maps[x];
        let pick_prob = 1.0 / n as f64;
        for v in mrf.graph().vertices() {
            mrf.marginal_weights_into(v, &config, &mut weights);
            let sum: f64 = weights.iter().sum();
            if sum <= 0.0 {
                *row.entry(x).or_insert(0.0) += pick_prob;
                continue;
            }
            let stride = checked_pow(q, v.index()).expect("in range");
            let base = x - (config[v.index()] as usize) * stride;
            for (c, &w) in weights.iter().enumerate() {
                if w > 0.0 {
                    let y = base + c * stride;
                    *row.entry(y).or_insert(0.0) += pick_prob * w / sum;
                }
            }
        }
    }
    rows_from_maps(maps)
}

/// The exact distribution of the Luby-step independent set: pairs
/// `(bitmask, probability)` over subsets of vertices, computed by
/// enumerating all `n!` rank orderings of the iid uniforms.
///
/// # Panics
/// Panics if `n > 9` (enumeration blows up past that).
pub fn luby_set_distribution(g: &Graph) -> Vec<(u32, f64)> {
    let n = g.num_vertices();
    assert!(n <= 9, "Luby-set enumeration supports n <= 9");
    if n == 0 {
        return vec![(0, 1.0)];
    }
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut total = 0u64;
    // Heap's algorithm for permutations.
    fn heaps(
        k: usize,
        perm: &mut Vec<usize>,
        g: &Graph,
        counts: &mut HashMap<u32, u64>,
        total: &mut u64,
    ) {
        if k == 1 {
            // perm[v] is the rank of vertex at position... define rank of
            // vertex perm[i] as i: higher i = larger β.
            let mut rank = vec![0usize; perm.len()];
            for (i, &v) in perm.iter().enumerate() {
                rank[v] = i;
            }
            let mut mask = 0u32;
            for v in g.vertices() {
                if g.neighbors(v).all(|u| rank[v.index()] > rank[u.index()]) {
                    mask |= 1 << v.index();
                }
            }
            *counts.entry(mask).or_insert(0) += 1;
            *total += 1;
            return;
        }
        for i in 0..k {
            heaps(k - 1, perm, g, counts, total);
            if k.is_multiple_of(2) {
                perm.swap(i, k - 1);
            } else {
                perm.swap(0, k - 1);
            }
        }
    }
    heaps(n, &mut perm, g, &mut counts, &mut total);
    counts
        .into_iter()
        .map(|(mask, c)| (mask, c as f64 / total as f64))
        .collect()
}

/// The scheduling distribution of the singleton scheduler (uniform single
/// vertex), for cross-validating [`luby_glauber_kernel`] against
/// [`glauber_kernel`].
pub fn singleton_set_distribution(g: &Graph) -> Vec<(u32, f64)> {
    let n = g.num_vertices();
    (0..n).map(|v| (1u32 << v, 1.0 / n as f64)).collect()
}

/// The exact LubyGlauber kernel under an explicit scheduling distribution
/// over independent-set bitmasks.
///
/// # Panics
/// Panics if `q^n` exceeds [`MAX_KERNEL_STATES`] or a scheduled vertex has
/// an ill-defined marginal from some state (the paper's assumption rules
/// this out; use models with `q ≥ Δ+1` style slack).
pub fn luby_glauber_kernel(mrf: &Mrf, sets: &[(u32, f64)]) -> Kernel {
    let total = state_count(mrf);
    let n = mrf.num_vertices();
    let q = mrf.q();
    let mut maps: Vec<HashMap<usize, f64>> = vec![HashMap::new(); total];
    let mut config = vec![0 as Spin; n];
    for x in 0..total {
        decode_config(x, q, &mut config);
        for &(mask, p_set) in sets {
            if p_set == 0.0 {
                continue;
            }
            // Per-vertex marginals for scheduled vertices (they depend
            // only on neighbors, which are unscheduled, so the update
            // factorizes).
            let scheduled: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
            let marginals: Vec<Vec<f64>> = scheduled
                .iter()
                .map(|&v| {
                    let mut w = mrf.marginal_weights(lsl_graph::VertexId(v as u32), &config);
                    let sum: f64 = w.iter().sum();
                    assert!(
                        sum > 0.0,
                        "ill-defined marginal at vertex {v} from state {x}"
                    );
                    for entry in &mut w {
                        *entry /= sum;
                    }
                    w
                })
                .collect();
            // Enumerate the product distribution over scheduled spins.
            let mut outcomes: Vec<(usize, f64)> = vec![(x, p_set)];
            for (slot, &v) in scheduled.iter().enumerate() {
                let stride = checked_pow(q, v).expect("in range");
                let old = (x / stride) % q;
                let mut next = Vec::with_capacity(outcomes.len() * q);
                for &(y, p) in &outcomes {
                    for (c, &pc) in marginals[slot].iter().enumerate() {
                        if pc > 0.0 {
                            let y2 = y - old * stride + c * stride;
                            next.push((y2, p * pc));
                        }
                    }
                }
                outcomes = next;
            }
            let row = &mut maps[x];
            for (y, p) in outcomes {
                *row.entry(y).or_insert(0.0) += p;
            }
        }
    }
    rows_from_maps(maps)
}

/// The exact LocalMetropolis kernel (Algorithm 2), by enumerating all
/// `q^n` proposal vectors and all edge-coin patterns. Set `rule3 = false`
/// for the ablated filter that omits the `Ã(σ_u, X_v)` factor.
///
/// # Panics
/// Panics if `q^n > 729` or `m > 12` (enumeration cost guard).
pub fn local_metropolis_kernel(mrf: &Mrf, rule3: bool) -> Kernel {
    let n = mrf.num_vertices();
    let q = mrf.q();
    let total = checked_pow(q, n)
        .filter(|&t| t <= 729)
        .expect("state space too large for the LocalMetropolis kernel");
    let g = mrf.graph();
    let m = g.num_edges();
    assert!(m <= 12, "too many edges for coin enumeration");
    let edges: Vec<(usize, usize, lsl_graph::EdgeId)> = g
        .edges()
        .map(|(e, u, v)| (u.index(), v.index(), e))
        .collect();
    // Proposal probabilities per vertex.
    let proposal_prob: Vec<Vec<f64>> = g
        .vertices()
        .map(|v| {
            let b = mrf.vertex_activity(v);
            (0..q as Spin).map(|c| b.get(c) / b.total()).collect()
        })
        .collect();

    let mut maps: Vec<HashMap<usize, f64>> = vec![HashMap::new(); total];
    let mut x_cfg = vec![0 as Spin; n];
    let mut s_cfg = vec![0 as Spin; n];
    for x in 0..total {
        decode_config(x, q, &mut x_cfg);
        let row = &mut maps[x];
        for s in 0..total {
            decode_config(s, q, &mut s_cfg);
            let mut p_sigma = 1.0;
            for v in 0..n {
                p_sigma *= proposal_prob[v][s_cfg[v] as usize];
            }
            if p_sigma == 0.0 {
                continue;
            }
            // Per-edge pass probabilities.
            let pass: Vec<f64> = edges
                .iter()
                .map(|&(u, v, e)| {
                    let a = mrf.edge_activity(e);
                    let p = a.normalized(s_cfg[u], s_cfg[v]) * a.normalized(x_cfg[u], s_cfg[v]);
                    if rule3 {
                        p * a.normalized(s_cfg[u], x_cfg[v])
                    } else {
                        p
                    }
                })
                .collect();
            // Enumerate coin patterns recursively, skipping zero branches.
            let mut stack: Vec<(usize, f64, u64)> = vec![(0, p_sigma, 0)];
            while let Some((ei, p, fail_mask)) = stack.pop() {
                if ei == edges.len() {
                    // Determine acceptance.
                    let mut y = 0usize;
                    let mut stride = 1usize;
                    for v in 0..n {
                        let mut ok = true;
                        for (idx, &(a, b, _)) in edges.iter().enumerate() {
                            if (a == v || b == v) && (fail_mask >> idx) & 1 == 1 {
                                ok = false;
                                break;
                            }
                        }
                        let spin = if ok { s_cfg[v] } else { x_cfg[v] };
                        y += spin as usize * stride;
                        stride *= q;
                    }
                    *row.entry(y).or_insert(0.0) += p;
                    continue;
                }
                let pp = pass[ei];
                if pp > 0.0 {
                    stack.push((ei + 1, p * pp, fail_mask));
                }
                if pp < 1.0 {
                    stack.push((ei + 1, p * (1.0 - pp), fail_mask | (1 << ei)));
                }
            }
        }
    }
    rows_from_maps(maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_analysis::tv_distance;
    use lsl_graph::generators;
    use lsl_mrf::gibbs::Enumeration;
    use lsl_mrf::models;

    fn gibbs_vector(mrf: &Mrf) -> Vec<f64> {
        Enumeration::new(mrf).unwrap().distribution()
    }

    fn feasible_states(mrf: &Mrf) -> Vec<usize> {
        Enumeration::new(mrf)
            .unwrap()
            .feasible()
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn glauber_kernel_reversible_for_colorings() {
        let mrf = models::proper_coloring(generators::path(3), 3);
        let k = glauber_kernel(&mrf);
        let pi = gibbs_vector(&mrf);
        assert!(k.stationarity_residual(&pi) < 1e-12);
        assert!(k.detailed_balance_residual(&pi) < 1e-12);
    }

    #[test]
    fn glauber_kernel_reversible_for_weighted_models() {
        for mrf in [
            models::hardcore(generators::cycle(4), 1.7),
            models::ising(generators::path(3), 0.4),
            models::potts(generators::path(3), 3, 2.0),
        ] {
            let k = glauber_kernel(&mrf);
            let pi = gibbs_vector(&mrf);
            assert!(k.stationarity_residual(&pi) < 1e-12);
            assert!(k.detailed_balance_residual(&pi) < 1e-12);
        }
    }

    #[test]
    fn luby_set_distribution_is_correct() {
        let g = generators::path(3);
        let sets = luby_set_distribution(&g);
        // Masks are independent sets and probabilities sum to 1.
        let mut sum = 0.0;
        for &(mask, p) in &sets {
            sum += p;
            let members: Vec<bool> = (0..3).map(|v| mask >> v & 1 == 1).collect();
            assert!(g.is_independent_set(&members));
        }
        assert!((sum - 1.0).abs() < 1e-12);
        // Exact inclusion probabilities: Pr[v ∈ I] = 1/(deg(v)+1).
        for v in g.vertices() {
            let p_v: f64 = sets
                .iter()
                .filter(|&&(mask, _)| mask >> v.index() & 1 == 1)
                .map(|&(_, p)| p)
                .sum();
            let expect = 1.0 / (g.degree(v) as f64 + 1.0);
            assert!((p_v - expect).abs() < 1e-12, "v = {v}: {p_v} vs {expect}");
        }
        // The empty set has positive probability on a path? Only if no
        // local max exists — impossible (the global max is always in I).
        assert!(sets.iter().all(|&(mask, _)| mask != 0));
    }

    #[test]
    fn luby_glauber_kernel_reversible() {
        // Proposition 3.1, exactly.
        let mrf = models::proper_coloring(generators::path(3), 3);
        let sets = luby_set_distribution(mrf.graph());
        let k = luby_glauber_kernel(&mrf, &sets);
        let pi = gibbs_vector(&mrf);
        assert!(k.stationarity_residual(&pi) < 1e-12);
        assert!(k.detailed_balance_residual(&pi) < 1e-12);
    }

    #[test]
    fn luby_glauber_kernel_reversible_weighted() {
        let mrf = models::hardcore(generators::cycle(4), 0.8);
        let sets = luby_set_distribution(mrf.graph());
        let k = luby_glauber_kernel(&mrf, &sets);
        let pi = gibbs_vector(&mrf);
        assert!(k.stationarity_residual(&pi) < 1e-12);
        assert!(k.detailed_balance_residual(&pi) < 1e-12);
    }

    #[test]
    fn singleton_schedule_recovers_glauber() {
        let mrf = models::hardcore(generators::path(3), 1.3);
        let a = glauber_kernel(&mrf);
        let b = luby_glauber_kernel(&mrf, &singleton_set_distribution(mrf.graph()));
        for i in 0..a.num_states() {
            for &(j, p) in a.row(i) {
                assert!((p - b.prob(i, j)).abs() < 1e-12, "P({i},{j})");
            }
            for &(j, p) in b.row(i) {
                assert!((p - a.prob(i, j)).abs() < 1e-12, "P({i},{j})");
            }
        }
    }

    #[test]
    fn local_metropolis_kernel_reversible_colorings() {
        // Theorem 4.1, exactly (hard constraints: deterministic coins).
        let mrf = models::proper_coloring(generators::path(3), 3);
        let k = local_metropolis_kernel(&mrf, true);
        let pi = gibbs_vector(&mrf);
        assert!(k.stationarity_residual(&pi) < 1e-12);
        assert!(k.detailed_balance_residual(&pi) < 1e-12);
    }

    #[test]
    fn local_metropolis_kernel_reversible_soft() {
        // Soft activities exercise the fractional-coin enumeration.
        for mrf in [
            models::ising(generators::path(3), 0.5),
            models::potts(generators::cycle(3), 3, 0.3),
            models::hardcore(generators::path(3), 2.0),
        ] {
            let k = local_metropolis_kernel(&mrf, true);
            let pi = gibbs_vector(&mrf);
            assert!(k.stationarity_residual(&pi) < 1e-10, "{mrf:?}");
            assert!(k.detailed_balance_residual(&pi) < 1e-10, "{mrf:?}");
        }
    }

    #[test]
    fn local_metropolis_absorbs_to_feasible() {
        // From any state, repeated application concentrates all mass on
        // feasible configurations (Thm 4.1's absorption argument).
        let mrf = models::proper_coloring(generators::path(3), 3);
        let k = local_metropolis_kernel(&mrf, true);
        let feasible = feasible_states(&mrf);
        let dist = k.evolve_from(0, 120); // state 0 = all color 0, infeasible
        let feasible_mass: f64 = feasible.iter().map(|&i| dist[i]).sum();
        assert!(feasible_mass > 1.0 - 1e-9, "mass = {feasible_mass}");
    }

    #[test]
    fn rule3_ablation_breaks_the_chain() {
        // E9 in miniature: without filter rule 3 the kernel is either no
        // longer reversible w.r.t. Gibbs or has a different stationary
        // distribution (the paper: rule 3 "is necessary to guarantee the
        // reversibility of the chain as well as the uniform stationary
        // distribution").
        let mrf = models::proper_coloring(generators::path(3), 3);
        let pi = gibbs_vector(&mrf);
        let good = local_metropolis_kernel(&mrf, true);
        let bad = local_metropolis_kernel(&mrf, false);
        assert!(good.detailed_balance_residual(&pi) < 1e-12);
        // The ablated chain violates detailed balance w.r.t. Gibbs.
        let db = bad.detailed_balance_residual(&pi);
        assert!(db > 1e-4, "ablated detailed-balance residual = {db}");
        // And its long-run distribution is measurably wrong.
        let stationary = bad.stationary_power(200_000, 1e-15);
        let tv = tv_distance(&stationary, &pi);
        assert!(tv > 1e-4, "ablated stationary TV = {tv}");
    }

    #[test]
    fn exact_mixing_curves_decrease() {
        // More colors → faster LocalMetropolis; with q = 5 on C4 the
        // exact worst-start TV curve decreases and mixes.
        let mrf = models::proper_coloring(generators::cycle(4), 5);
        let k = local_metropolis_kernel(&mrf, true);
        let pi = gibbs_vector(&mrf);
        let feasible = feasible_states(&mrf);
        let mut last = f64::INFINITY;
        for t in [0usize, 1, 2, 4, 8, 16, 32, 64] {
            let d = k.worst_start_tv(&pi, t, Some(&feasible));
            assert!(d <= last + 1e-9, "d({t}) increased");
            last = d;
        }
        assert!(last < 0.02, "chain failed to mix: d = {last}");
    }

    #[test]
    fn exact_mixing_time_monotone_in_q() {
        // The Theorem 4.2 theme in miniature: LocalMetropolis mixing
        // improves as q grows (exact mixing times on P3).
        let times: Vec<usize> = [3usize, 4, 5]
            .into_iter()
            .map(|q| {
                let mrf = models::proper_coloring(generators::path(3), q);
                let pi = gibbs_vector(&mrf);
                let feasible = feasible_states(&mrf);
                let k = local_metropolis_kernel(&mrf, true);
                k.mixing_time(&pi, 0.01, 8000, Some(&feasible)).unwrap()
            })
            .collect();
        assert!(
            times[2] <= times[1] && times[1] <= times[0],
            "not monotone: {times:?}"
        );
        assert!(times[2] < times[0], "no improvement: {times:?}");
    }
}
