//! The paper's algorithms as LOCAL-model vertex programs.
//!
//! Both algorithms run at **one LOCAL round per Markov-chain step**:
//!
//! * [`LubyGlauberProgram`] — each round broadcast `(β_v, X_v)`; on
//!   receive, local maxima resample from the conditional marginal built
//!   from the received neighbor spins (Algorithm 1 verbatim).
//! * [`LocalMetropolisProgram`] — each round send the proposal `σ_v`,
//!   plus, on edges this endpoint *owns* (smaller id; ties by port), the
//!   edge's shared coin; on receive, evaluate every incident filter and
//!   accept iff all pass (Algorithm 2 verbatim — the "two endpoints access
//!   the same random coin" remark is realized by shipping the owner's
//!   coin).
//!
//! Messages are `(f64, u32)` / `(u32, Option<f64>)`: `O(log q + 64)` bits,
//! matching the paper's "neither algorithm abuses the power of the LOCAL
//! model" remark (§1.1); the simulator's [`RoundStats`] measures this in
//! experiment E8.
//!
//! [`RoundStats`]: lsl_local::runtime::RoundStats

use lsl_local::program::{Outbox, VertexContext, VertexProgram};
use lsl_local::rng::VertexRng;
use lsl_mrf::{Mrf, Spin};

/// Algorithm 1 as a vertex program. One chain step per LOCAL round.
#[derive(Clone, Debug)]
pub struct LubyGlauberProgram {
    spin: Spin,
    beta: f64,
}

impl VertexProgram for LubyGlauberProgram {
    type Message = (f64, u32);
    type Output = Spin;
    type Config = Mrf;

    fn init(config: &Mrf, ctx: &VertexContext<'_>, rng: &mut VertexRng) -> Self {
        let spin = config.vertex_activity(ctx.vertex()).sample(rng);
        LubyGlauberProgram { spin, beta: 0.0 }
    }

    fn send(
        &mut self,
        _config: &Mrf,
        _ctx: &VertexContext<'_>,
        rng: &mut VertexRng,
    ) -> Outbox<(f64, u32)> {
        self.beta = rng.uniform_f64();
        Outbox::broadcast((self.beta, self.spin))
    }

    fn receive(
        &mut self,
        config: &Mrf,
        ctx: &VertexContext<'_>,
        inbox: &[Option<(f64, u32)>],
        rng: &mut VertexRng,
    ) {
        let me = (self.beta, ctx.vertex().0);
        let mut weights = vec![0.0; config.q()];
        let b = config.vertex_activity(ctx.vertex());
        for (c, slot) in weights.iter_mut().enumerate() {
            *slot = b.get(c as Spin);
        }
        let mut local_max = true;
        for ((e, u), msg) in ctx.ports().zip(inbox.iter()) {
            let &(beta_u, spin_u) = msg.as_ref().expect("every neighbor broadcasts every round");
            if (beta_u, u.0) > me {
                local_max = false;
            }
            let a = config.edge_activity(e);
            for (c, slot) in weights.iter_mut().enumerate() {
                *slot *= a.get(c as Spin, spin_u);
            }
        }
        if local_max {
            let pick = lsl_mrf::model::sample_weighted(&weights, rng)
                .expect("marginal must be well-defined (paper assumption)");
            self.spin = pick;
        }
    }

    fn output(&self) -> Spin {
        self.spin
    }
}

/// One LocalMetropolis round's message: the sender's current spin `X_u`,
/// its proposal `σ_u`, and — on ports whose coin the sender owns — the
/// edge's shared filter coin.
pub type LmMessage = (u32, u32, Option<f64>);

/// Algorithm 2 as a vertex program. One chain step per LOCAL round.
#[derive(Clone, Debug)]
pub struct LocalMetropolisProgram {
    spin: Spin,
    proposal: Spin,
    /// Coins drawn this round for ports this vertex owns.
    coins: Vec<Option<f64>>,
}

impl LocalMetropolisProgram {
    /// Whether this endpoint owns the coin of the port to `other` (the
    /// smaller vertex id owns; each parallel edge has its own port pair,
    /// so ownership is per-port and consistent at both endpoints).
    fn owns(me: u32, other: u32) -> bool {
        me < other
    }
}

impl VertexProgram for LocalMetropolisProgram {
    type Message = LmMessage;
    type Output = Spin;
    type Config = Mrf;

    fn init(config: &Mrf, ctx: &VertexContext<'_>, rng: &mut VertexRng) -> Self {
        let spin = config.vertex_activity(ctx.vertex()).sample(rng);
        LocalMetropolisProgram {
            spin,
            proposal: spin,
            coins: vec![None; ctx.degree()],
        }
    }

    fn send(
        &mut self,
        config: &Mrf,
        ctx: &VertexContext<'_>,
        rng: &mut VertexRng,
    ) -> Outbox<LmMessage> {
        self.proposal = config.vertex_activity(ctx.vertex()).sample(rng);
        let me = ctx.vertex().0;
        let mut out = Vec::with_capacity(ctx.degree());
        for (p, (_, u)) in ctx.ports().enumerate() {
            if Self::owns(me, u.0) {
                let coin = rng.uniform_f64();
                self.coins[p] = Some(coin);
                out.push(Some((self.spin, self.proposal, Some(coin))));
            } else {
                self.coins[p] = None;
                out.push(Some((self.spin, self.proposal, None)));
            }
        }
        Outbox::PerPort(out)
    }

    fn receive(
        &mut self,
        config: &Mrf,
        ctx: &VertexContext<'_>,
        inbox: &[Option<LmMessage>],
        _rng: &mut VertexRng,
    ) {
        let me = ctx.vertex().0;
        let mut accept = true;
        for (p, ((e, u), msg)) in ctx.ports().zip(inbox.iter()).enumerate() {
            let &(x_u, sigma_u, coin_from_u) =
                msg.as_ref().expect("every neighbor sends every round");
            let coin = if Self::owns(me, u.0) {
                self.coins[p].expect("owner drew a coin in send")
            } else {
                coin_from_u.expect("owner ships the coin")
            };
            // Pass probability Ã(σ_u, σ_v)·Ã(X_u, σ_v)·Ã(σ_u, X_v); the
            // matrices are symmetric, so both endpoints compute the same
            // value and (with the shared coin) the same verdict.
            let a = config.edge_activity(e);
            let pass_prob = a.normalized(sigma_u, self.proposal)
                * a.normalized(x_u, self.proposal)
                * a.normalized(sigma_u, self.spin);
            if coin >= pass_prob {
                accept = false;
            }
        }
        if accept {
            self.spin = self.proposal;
        }
    }

    fn output(&self) -> Spin {
        self.spin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_analysis::EmpiricalDistribution;
    use lsl_graph::generators;
    use lsl_local::runtime::Simulator;
    use lsl_mrf::gibbs::{encode_config, Enumeration};
    use lsl_mrf::models;
    use std::sync::Arc;

    fn program_tv<P>(mrf: &Mrf, rounds: usize, replicas: u64) -> f64
    where
        P: VertexProgram<Config = Mrf, Output = Spin>,
    {
        let exact = Enumeration::new(mrf).unwrap();
        let graph = mrf.graph_arc();
        let mut emp = EmpiricalDistribution::new();
        for rep in 0..replicas {
            let sim = Simulator::new(Arc::clone(&graph), 5000 + rep);
            let run = sim.run_with::<P>(rounds, mrf);
            emp.record(encode_config(&run.outputs, mrf.q()));
        }
        emp.tv_against_dense(&exact.distribution())
    }

    #[test]
    fn luby_glauber_program_samples_gibbs() {
        let mrf = models::proper_coloring(generators::cycle(4), 3);
        let tv = program_tv::<LubyGlauberProgram>(&mrf, 120, 6000);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn luby_glauber_program_weighted_model() {
        let mrf = models::hardcore(generators::path(3), 1.4);
        let tv = program_tv::<LubyGlauberProgram>(&mrf, 80, 6000);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn local_metropolis_program_samples_gibbs() {
        let mrf = models::proper_coloring(generators::cycle(4), 4);
        let tv = program_tv::<LocalMetropolisProgram>(&mrf, 100, 12_000);
        assert!(tv < 0.065, "tv = {tv}");
    }

    #[test]
    fn local_metropolis_program_soft_model() {
        let mrf = models::ising(generators::path(3), 0.5);
        let tv = program_tv::<LocalMetropolisProgram>(&mrf, 60, 6000);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn message_sizes_are_logarithmic_in_q() {
        // E8's claim in miniature: message bits are O(log q + 64),
        // independent of n.
        use lsl_local::program::MessageSize;
        let lg: (f64, u32) = (0.5, 3);
        assert_eq!(lg.bits(), 96);
        let lm: LmMessage = (1, 2, Some(0.25));
        assert_eq!(lm.bits(), 32 + 32 + 65);
    }

    #[test]
    fn program_runs_are_reproducible() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 8);
        let sim = Simulator::new(mrf.graph_arc(), 42);
        let a = sim.run_with::<LocalMetropolisProgram>(30, &mrf);
        let b = sim.run_with::<LocalMetropolisProgram>(30, &mrf);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn program_outputs_feasible_after_enough_rounds() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 10);
        let sim = Simulator::new(mrf.graph_arc(), 7);
        let run = sim.run_with::<LocalMetropolisProgram>(60, &mrf);
        assert!(mrf.is_feasible(&run.outputs));
        let run2 = sim.run_with::<LubyGlauberProgram>(120, &mrf);
        assert!(mrf.is_feasible(&run2.outputs));
    }

    #[test]
    fn round_stats_match_one_round_per_step() {
        let mrf = models::proper_coloring(generators::cycle(5), 4);
        let sim = Simulator::new(mrf.graph_arc(), 1);
        let rounds = 17;
        let run = sim.run_with::<LubyGlauberProgram>(rounds, &mrf);
        assert_eq!(run.stats.rounds, rounds);
        // Broadcast on every port every round: 2m messages per round.
        assert_eq!(run.stats.messages, rounds * 2 * 5);
        assert_eq!(run.stats.max_message_bits, 96);
    }
}
