//! A disk-backed result store keyed by the canonical spec print.
//!
//! The determinism contract makes caching trivial to state and cheap
//! to trust: a [`JobResult`] is a pure function of its [`JobSpec`](crate::spec::JobSpec)
//! line, and `parse ∘ print = id` holds for both
//! ([`spec`](crate::spec), [`proto`](crate::proto)) — so the canonical
//! spec string *is* the key, and the wire line *is* the on-disk format.
//! A store hit replays the stored line, which re-parses to a result
//! bit-identical to a fresh run (property-tested in
//! `tests/store_identity.rs`).
//!
//! Layout: one file per entry under the store directory, named by the
//! FNV-1a hash of the spec string (`<hash>.job`), containing a format
//! version header line ([`STORE_FORMAT`]) followed by exactly the
//! result's wire line. A missing or mismatched header is a **miss**,
//! never a parse attempt — wire-format evolutions (new job kinds, new
//! output fields) bump the version and old entries silently re-run
//! instead of deserializing wrongly. [`ResultStore::get`] additionally
//! re-checks the embedded spec against the key, so a hash collision
//! degrades to a miss, never to a wrong answer. Writes go through a
//! temp file + rename so a crashed writer cannot leave a torn entry
//! behind.
//!
//! The store mirrors the in-memory model LRU's accounting
//! ([`CacheStats`](crate::service::CacheStats)): [`StoreStats`] counts
//! hits, misses, and evictions, and [`ResultStore::with_capacity`]
//! bounds the entry count with oldest-first eviction.

use crate::spec::JobResult;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;

/// Hit/miss/eviction counters for a [`ResultStore`], mirroring the
/// in-memory model cache's [`CacheStats`](crate::service::CacheStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that fell through to a fresh run.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

/// The store file format version header. Bump when the result wire
/// format changes shape; entries with any other (or no) header read as
/// misses, so stale caches re-run rather than misparse.
pub const STORE_FORMAT: &str = "#lsl-store-v2";

/// FNV-1a over the spec bytes — the on-disk file name. Stable across
/// runs and platforms (unlike `DefaultHasher`), cheap, and collisions
/// are handled by re-checking the stored spec.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A directory of finished [`JobResult`]s keyed by canonical spec.
///
/// Thread-safe behind internal locking; share it via the
/// [`Service`](crate::service::Service) (one store per service) or
/// open the same directory from several processes — entries are
/// immutable once written, so concurrent readers are safe, and the
/// temp-file + rename write discipline keeps concurrent writers from
/// tearing each other's entries.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    cap: usize,
    stats: Mutex<StoreStats>,
}

impl ResultStore {
    /// Opens (creating if needed) an unbounded store at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::with_capacity(dir, usize::MAX)
    }

    /// Opens a store holding at most `cap` entries; inserting beyond
    /// that evicts the oldest entries (by modification time) and counts
    /// them in [`StoreStats::evictions`].
    pub fn with_capacity(dir: impl AsRef<Path>, cap: usize) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            cap: cap.max(1),
            stats: Mutex::new(StoreStats::default()),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> StoreStats {
        *self.stats.lock().expect("store stats lock")
    }

    fn path_for(&self, spec: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.job", fnv64(spec.as_bytes())))
    }

    /// Reads one entry file's result line, requiring the
    /// [`STORE_FORMAT`] version header; anything else is `None`.
    fn read_versioned(path: &Path) -> Option<JobResult> {
        let body = fs::read_to_string(path).ok()?;
        let (header, line) = body.split_once('\n')?;
        (header == STORE_FORMAT)
            .then(|| line.trim_end().parse().ok())
            .flatten()
    }

    /// Reads one entry file into a result whose spec matches `spec`.
    fn read_entry(path: &Path, spec: &str) -> Option<JobResult> {
        let result = Self::read_versioned(path)?;
        // A hash collision (or a foreign file) is a miss, never a
        // wrong answer: the stored line embeds its own spec.
        (result.spec == spec).then_some(result)
    }

    /// Looks up the result for a canonical spec string. Counts a hit
    /// or a miss.
    pub fn get(&self, spec: &str) -> Option<JobResult> {
        let found = Self::read_entry(&self.path_for(spec), spec);
        let mut stats = self.stats.lock().expect("store stats lock");
        match found {
            Some(_) => stats.hits += 1,
            None => stats.misses += 1,
        }
        found
    }

    /// Whether an entry for `spec` exists, without touching the
    /// hit/miss counters.
    pub fn exists(&self, spec: &str) -> bool {
        Self::read_entry(&self.path_for(spec), spec).is_some()
    }

    /// Stores a finished result under its own canonical spec,
    /// overwriting any previous entry, then enforces the capacity
    /// bound (oldest entries evicted first).
    pub fn put(&self, result: &JobResult) -> io::Result<()> {
        let path = self.path_for(&result.spec);
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        fs::write(&tmp, format!("{STORE_FORMAT}\n{result}\n"))?;
        fs::rename(&tmp, &path)?;
        self.evict_over_capacity()
    }

    /// Entries currently on disk, as canonical spec strings, sorted.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut specs: Vec<String> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "job") {
                if let Some(result) = Self::read_versioned(&path) {
                    specs.push(result.spec);
                }
            }
        }
        specs.sort();
        Ok(specs)
    }

    /// Number of entries on disk.
    pub fn len(&self) -> usize {
        self.entries().map(|e| e.len()).unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies entries from another store directory when they are
    /// missing here or newer there (by modification time). Returns how
    /// many entries were imported.
    pub fn import_if_newer(&self, src: impl AsRef<Path>) -> io::Result<usize> {
        let mut imported = 0;
        for entry in fs::read_dir(src.as_ref())? {
            let from = entry?.path();
            if from.extension().is_none_or(|e| e != "job") {
                continue;
            }
            let Some(name) = from.file_name() else {
                continue;
            };
            let to = self.dir.join(name);
            let newer = match (mtime(&from), mtime(&to)) {
                (Some(src_t), Some(dst_t)) => src_t > dst_t,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if newer {
                fs::copy(&from, &to)?;
                imported += 1;
            }
        }
        self.evict_over_capacity()?;
        Ok(imported)
    }

    /// `.job` entry paths with their modification times.
    fn entries(&self) -> io::Result<Vec<(PathBuf, SystemTime)>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "job") {
                if let Some(t) = mtime(&path) {
                    entries.push((path, t));
                }
            }
        }
        Ok(entries)
    }

    fn evict_over_capacity(&self) -> io::Result<()> {
        let mut entries = self.entries()?;
        if entries.len() <= self.cap {
            return Ok(());
        }
        // Oldest first; break mtime ties by name for determinism.
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let excess = entries.len() - self.cap;
        let mut evicted = 0u64;
        for (path, _) in entries.into_iter().take(excess) {
            if fs::remove_file(&path).is_ok() {
                evicted += 1;
            }
        }
        self.stats.lock().expect("store stats lock").evictions += evicted;
        Ok(())
    }
}

fn mtime(path: &Path) -> Option<SystemTime> {
    fs::metadata(path).and_then(|m| m.modified()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobOutput, JobResult};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lsl-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn result_for(spec: &str, rounds: u64) -> JobResult {
        JobResult {
            spec: spec.to_string(),
            output: JobOutput::Run {
                rounds,
                n: 8,
                feasible: true,
                fingerprint: 0xfeed,
                comm: None,
            },
            elapsed_secs: 0.25,
        }
    }

    #[test]
    fn put_get_roundtrips_and_counts() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let spec = "graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=10";
        assert!(store.get(spec).is_none(), "cold store misses");
        store.put(&result_for(spec, 10)).unwrap();
        assert!(store.exists(spec));
        let hit = store.get(spec).expect("stored entry");
        assert_eq!(hit, result_for(spec, 10));
        assert_eq!(hit.elapsed_secs.to_bits(), 0.25f64.to_bits());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(store.list().unwrap(), vec![spec.to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn collisions_degrade_to_misses() {
        let dir = tmp_dir("collision");
        let store = ResultStore::open(&dir).unwrap();
        let spec = "graph=cycle:9 model=coloring:q=5 seed=2 job=run:rounds=10";
        store.put(&result_for(spec, 10)).unwrap();
        // Forge a collision: another spec's entry file moved onto this
        // spec's slot must be rejected by the embedded-spec check.
        let other = "graph=cycle:10 model=coloring:q=5 seed=3 job=run:rounds=10";
        fs::write(
            store.path_for(other),
            format!("{STORE_FORMAT}\n{}\n", result_for(spec, 10)),
        )
        .unwrap();
        assert!(store.get(other).is_none(), "forged entry must not serve");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let dir = tmp_dir("version");
        let store = ResultStore::open(&dir).unwrap();
        let spec = "graph=cycle:8 model=coloring:q=5 seed=7 job=run:rounds=10";
        store.put(&result_for(spec, 10)).unwrap();
        assert!(store.exists(spec), "current-format entry serves");

        // A pre-versioning entry (bare result line, no header) must
        // read as a miss, not a hit and not an error.
        fs::write(store.path_for(spec), format!("{}\n", result_for(spec, 10))).unwrap();
        assert!(store.get(spec).is_none(), "headerless entry must miss");
        assert!(store.list().unwrap().is_empty(), "and must not list");

        // So must an entry from a future (or past) format version.
        fs::write(
            store.path_for(spec),
            format!("#lsl-store-v1\n{}\n", result_for(spec, 10)),
        )
        .unwrap();
        assert!(store.get(spec).is_none(), "wrong-version entry must miss");

        // Re-putting rewrites the entry in the current format.
        store.put(&result_for(spec, 10)).unwrap();
        assert_eq!(store.get(spec), Some(result_for(spec, 10)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let dir = tmp_dir("evict");
        let store = ResultStore::with_capacity(&dir, 2).unwrap();
        let specs: Vec<String> = (0..4)
            .map(|i| format!("graph=cycle:8 model=coloring:q=5 seed={i} job=run:rounds=10"))
            .collect();
        for spec in &specs {
            store.put(&result_for(spec, 10)).unwrap();
            // Distinct mtimes so "oldest" is well defined.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 2);
        assert!(!store.exists(&specs[0]) && !store.exists(&specs[1]));
        assert!(store.exists(&specs[2]) && store.exists(&specs[3]));
        let _ = fs::remove_dir_all(&dir);
    }
}
