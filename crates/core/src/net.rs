//! The network front end: the service's event-streaming job protocol
//! over TCP (`std::net`, one session per connection, line-delimited
//! [`proto`](crate::proto) frames).
//!
//! * [`Server::bind`] starts an accept loop over a shared
//!   [`Service`]; each connection gets a session thread that parses
//!   [`ClientFrame`]s, expands sweep lines, submits member jobs, and
//!   forwards every [`JobEvent`] back as a [`ServerFrame::Event`].
//!   Multiple jobs per session run **concurrently** — frames of
//!   different jobs interleave; frames of one job keep the service's
//!   event order. A malformed line is answered with a typed
//!   [`ServerFrame::Error`] and the session stays alive.
//! * Lifecycle over the wire: a `cancel id=N` frame cancels a line's
//!   member jobs (each answers with a terminal
//!   [`JobEvent::Cancelled`]); a `shutdown` frame latches
//!   [`Server::shutdown_requested`] so the process driving the server
//!   can call [`Server::shutdown`]. A draining server rejects new
//!   submissions with [`RejectReason::Draining`]; a session over its
//!   configured in-flight cap rejects with
//!   [`RejectReason::SessionBusy`] — both without touching the
//!   service queue. A client that disconnects mid-stream gets its
//!   remaining jobs cancelled and its session thread reclaimed.
//! * [`Client::connect`] speaks the other side: submit any number of
//!   lines, then [`Client::drain`] demultiplexes the event streams
//!   into per-line [`RemoteOutcome`]s.
//!
//! **Determinism over TCP**: the wire codec round-trips results
//! bit-identically (shortest-round-trip floats, escaped strings) and
//! the server runs jobs through the same [`Service`] path as
//! in-process callers, so a remote answer equals the in-process answer
//! exactly — property-tested in `tests/remote_identity.rs`, including
//! concurrent multi-client batches.
//!
//! **Codec negotiation**: sessions start on the text codec. A client
//! `hello codec=binary` frame switches the session to the
//! length-prefixed binary codec ([`codec`]): the server
//! acks in the old codec under the writer lock, then both directions
//! speak binary — the path that makes full-state delivery
//! ([`JobEvent::State`]) cheap. Text sessions remain fully supported
//! (blobs fall back to base64url tokens), and both codecs answer
//! bit-identical outcomes (`tests/codec_identity.rs`).

use crate::codec::{self, Codec, CodecError, StateBlob};
use crate::lifecycle::{CancelToken, RejectReason};
use crate::proto::{ClientFrame, ServerFrame, WireError};
use crate::service::{JobEvent, Service};
use crate::spec::{JobResult, SpecError, SweepResult, SweepSpec};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a session blocks on its socket before re-checking the
/// server's drain/cancel flags. Bounds how stale a session's view of
/// a shutdown can be.
const SESSION_POLL: Duration = Duration::from_millis(25);

/// A session's shared write half: the socket behind a lock (so
/// concurrent forwarders never interleave *within* a frame — including
/// large state frames, which go out atomically) plus the codec flag,
/// flipped under that same lock so every frame lands wholly in one
/// codec.
struct SessionWriter {
    stream: Mutex<TcpStream>,
    binary: AtomicBool,
}

impl SessionWriter {
    fn new(stream: TcpStream) -> Self {
        SessionWriter {
            stream: Mutex::new(stream),
            binary: AtomicBool::new(false),
        }
    }

    /// Writes one frame in the session's current codec. Text frames go
    /// out as a single `write_all` (not a fragment-per-`write!` piece),
    /// so Nagle + delayed-ACK never stalls a half-sent line.
    fn send(&self, frame: &ServerFrame) {
        let mut w = self.stream.lock().expect("session writer lock");
        // A gone client is not an error worth a worker's life: the
        // session reader will notice EOF and wind down.
        let _ = if self.binary.load(Ordering::Acquire) {
            codec::write_frame(&mut *w, &codec::encode_server(frame))
        } else {
            w.write_all(format!("{frame}\n").as_bytes())
        };
    }

    /// Acks a `hello` and switches codecs atomically under the writer
    /// lock: the ack goes out in the *old* codec, every later frame in
    /// the new one — no frame can straddle the switch.
    fn switch(&self, to: Codec) {
        let mut w = self.stream.lock().expect("session writer lock");
        let ack = ServerFrame::Hello { codec: to };
        let _ = if self.binary.load(Ordering::Acquire) {
            codec::write_frame(&mut *w, &codec::encode_server(&ack))
        } else {
            w.write_all(format!("{ack}\n").as_bytes())
        };
        self.binary.store(to == Codec::Binary, Ordering::Release);
    }
}

/// Shutdown signals shared by every session of one [`Server`].
#[derive(Default)]
struct SessionCtl {
    /// Stop admitting work: sessions reject new submissions with
    /// [`RejectReason::Draining`] and exit once idle.
    draining: AtomicBool,
    /// The grace deadline passed: sessions cancel their in-flight
    /// jobs instead of waiting them out.
    cancel_all: AtomicBool,
    /// A client sent the `shutdown` admin frame; the process driving
    /// the server decides when to act on it.
    shutdown_requested: AtomicBool,
}

/// The TCP front end over an owned [`Service`] — what `lsl serve`
/// runs. Bound to a local address; every accepted connection becomes
/// an independent session speaking the [`proto`](crate::proto) frame
/// protocol. [`Server::shutdown`] drains gracefully: stop accepting,
/// let in-flight jobs finish within a grace period, cancel the rest,
/// join every session thread.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    ctl: Arc<SessionCtl>,
    service: Arc<Service>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving on a fresh [`Service`] with `threads` workers.
    ///
    /// # Errors
    /// The bind error, if the address is unavailable.
    pub fn bind(addr: impl ToSocketAddrs, threads: usize) -> std::io::Result<Server> {
        Server::bind_service(addr, Service::new(threads))
    }

    /// Binds `addr` and serves an already-configured [`Service`] —
    /// the way to put admission limits or a result store behind the
    /// wire (see [`Service::with_limits`] / [`Service::with_store`]).
    ///
    /// # Errors
    /// The bind error, if the address is unavailable.
    pub fn bind_service(addr: impl ToSocketAddrs, service: Service) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Polling accept: the loop must notice `stop` without a
        // self-connection trick.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let ctl = Arc::new(SessionCtl::default());
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let service = Arc::new(service);
        let accept = {
            let stop = Arc::clone(&stop);
            let ctl = Arc::clone(&ctl);
            let sessions = Arc::clone(&sessions);
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("lsl-accept".into())
                .spawn(move || accept_loop(&listener, &service, &stop, &ctl, &sessions))
                .expect("spawning the accept loop")
        };
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
            sessions,
            ctl,
            service,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service the server runs jobs on.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Whether any client sent the `shutdown` admin frame. The server
    /// does not act on the request itself — the process driving it
    /// polls this and calls [`Server::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.ctl.shutdown_requested.load(Ordering::Acquire)
    }

    /// Drains the server: stops accepting, puts every session into
    /// draining mode (new submissions answer
    /// [`RejectReason::Draining`]), waits up to `grace` for in-flight
    /// jobs to finish on their own, then cancels whatever is left and
    /// joins every session thread. Idempotent — a second call (or the
    /// implicit one in `Drop`) finds nothing to do.
    pub fn shutdown(&mut self, grace: Duration) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.ctl.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + grace;
        loop {
            let all_idle = {
                let sessions = self.sessions.lock().expect("session registry lock");
                sessions.iter().all(|h| h.is_finished())
            };
            if all_idle || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.ctl.cancel_all.store(true, Ordering::Release);
        let handles: Vec<JoinHandle<()>> = {
            let mut sessions = self.sessions.lock().expect("session registry lock");
            sessions.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    /// A dropped server shuts down with zero grace: in-flight jobs
    /// are cancelled (terminating within one progress interval) and
    /// every session thread is joined before the drop returns.
    fn drop(&mut self) {
        self.shutdown(Duration::ZERO);
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    ctl: &Arc<SessionCtl>,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let ctl = Arc::clone(ctl);
                let handle = std::thread::Builder::new()
                    .name("lsl-session".into())
                    .spawn(move || session(stream, &service, &ctl))
                    .expect("spawning a session");
                let mut registry = sessions.lock().expect("session registry lock");
                registry.push(handle);
                // Reap finished sessions so a long-lived server doesn't
                // hold a handle per past connection.
                registry.retain(|h| !h.is_finished());
            }
            // Transient accept errors (WouldBlock from the nonblocking
            // listener, EMFILE under fd pressure, ECONNABORTED on a
            // client reset mid-handshake) must not kill the accept
            // loop — a serve process that stops accepting while its
            // main loop keeps sleeping would look healthy and be dead.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One connection's lifetime: read frames until EOF or drain. Each
/// submitted line's member jobs route their events into one tagged
/// channel ([`Service::submit_routed`]) drained by **one** forwarder
/// thread per line — a `seeds=0..4096` sweep costs one thread, not
/// 4096 — writing frames through the shared writer. Reads are timed
/// ([`SESSION_POLL`]) so the loop notices server-wide drain/cancel
/// flags even while the client is silent. On exit (client EOF, socket
/// error, or drain) every still-running job of the session is
/// cancelled and the forwarders are joined.
fn session(stream: TcpStream, service: &Arc<Service>, ctl: &Arc<SessionCtl>) {
    // Some platforms hand accepted sockets the listener's nonblocking
    // flag; the session loop wants timed blocking reads. Nagle off:
    // event frames are latency-sensitive and already write-combined.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(SESSION_POLL)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut sock = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = Arc::new(SessionWriter::new(stream));
    // Jobs of this session that have not reported a terminal event
    // yet; forwarders decrement as terminals go out.
    let inflight = Arc::new(AtomicUsize::new(0));
    // Cancellation handles by submit id, for `cancel id=N` frames and
    // the end-of-session sweep. Ids are session-scoped, so the map is
    // bounded by what this client submitted.
    let mut tokens: HashMap<u64, Vec<CancelToken>> = HashMap::new();
    let mut forwarders: Vec<JoinHandle<()>> = Vec::new();
    // Shard runners hosted by this session (cluster mode): the feed
    // half of each runner's `shard-sync` channel, by shard id.
    // Dropping the map at session end closes the feeds, which is how
    // runners learn their coordinator is gone.
    let mut shards: HashMap<u64, std::sync::mpsc::Sender<(u64, StateBlob)>> = HashMap::new();
    let mut cancelled_all = false;
    // Raw byte accumulation persists across timed reads: in text mode
    // complete lines are cut at `\n` (a partial tail waits for more
    // bytes), in binary mode complete length-prefixed frames are cut
    // by their prefix. A `hello` frame flips the mode for every byte
    // that follows it — bytes already buffered behind the hello are
    // re-interpreted under the new codec, exactly as the client that
    // switched immediately after sending it intended.
    let mut inbuf: Vec<u8> = Vec::new();
    let mut binary = false;
    let mut tmp = vec![0u8; 64 * 1024];
    loop {
        if ctl.cancel_all.load(Ordering::Acquire) && !cancelled_all {
            cancelled_all = true;
            for token in tokens.values().flatten() {
                token.cancel();
            }
        }
        if ctl.draining.load(Ordering::Acquire) && inflight.load(Ordering::Acquire) == 0 {
            break;
        }
        match sock.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => {
                inbuf.extend_from_slice(&tmp[..n]);
                // Drain every complete frame at the mode it arrives
                // under.
                loop {
                    let parsed: Result<ClientFrame, String> = if binary {
                        if inbuf.len() < 4 {
                            break;
                        }
                        let len =
                            u32::from_le_bytes([inbuf[0], inbuf[1], inbuf[2], inbuf[3]]) as usize;
                        if len > codec::MAX_FRAME {
                            // Resync after the 4 header bytes; the
                            // typed error is the malformed-frame
                            // contract, binary edition.
                            inbuf.drain(..4);
                            Err(CodecError::Oversize { len: len as u64 }.to_string())
                        } else if inbuf.len() < 4 + len {
                            break;
                        } else {
                            let payload: Vec<u8> = inbuf[4..4 + len].to_vec();
                            inbuf.drain(..4 + len);
                            codec::decode_client(&payload).map_err(|e| e.to_string())
                        }
                    } else {
                        let Some(pos) = inbuf.iter().position(|&b| b == b'\n') else {
                            break;
                        };
                        let line: Vec<u8> = inbuf.drain(..=pos).collect();
                        match std::str::from_utf8(&line) {
                            Ok(s) => {
                                let s = s.trim();
                                if s.is_empty() {
                                    continue;
                                }
                                s.parse::<ClientFrame>().map_err(|e| e.to_string())
                            }
                            Err(_) => Err("malformed frame: not UTF-8".to_string()),
                        }
                    };
                    if let Some(mode) = handle_frame(
                        parsed,
                        &writer,
                        service,
                        ctl,
                        &inflight,
                        &mut tokens,
                        &mut forwarders,
                        &mut shards,
                    ) {
                        binary = mode == Codec::Binary;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
        // Reap finished forwarders so a long-lived session submitting
        // thousands of lines doesn't hold a handle per past line.
        forwarders.retain(|h| !h.is_finished());
    }
    // The client is gone (or the server is draining): any job still
    // running has nobody to report to. Cancelling resolved tokens is
    // a no-op, so the blanket sweep is safe. Dropping the shard feeds
    // *before* joining unblocks any runner waiting on a `shard-sync`
    // that will never come.
    for token in tokens.values().flatten() {
        token.cancel();
    }
    drop(shards);
    for f in forwarders {
        let _ = f.join();
    }
}

/// Processes one parsed (or unparseable) frame on the session thread.
/// Returns the codec the *read* side should switch to, if the frame
/// was a `hello` (the write side switches inside, under the writer
/// lock).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    parsed: Result<ClientFrame, String>,
    writer: &Arc<SessionWriter>,
    service: &Arc<Service>,
    ctl: &Arc<SessionCtl>,
    inflight: &Arc<AtomicUsize>,
    tokens: &mut HashMap<u64, Vec<CancelToken>>,
    forwarders: &mut Vec<JoinHandle<()>>,
    shards: &mut HashMap<u64, std::sync::mpsc::Sender<(u64, StateBlob)>>,
) -> Option<Codec> {
    match parsed {
        Err(message) => {
            // The malformed-frame contract: answer typed, stay up.
            writer.send(&ServerFrame::Error { id: None, message });
        }
        Ok(ClientFrame::Hello { codec }) => {
            // Ack in the old codec, then switch both directions.
            writer.switch(codec);
            return Some(codec);
        }
        Ok(ClientFrame::Ping { nonce }) => {
            // Answered inline on the session thread: a pong proves the
            // session loop itself is alive, not just the socket.
            writer.send(&ServerFrame::Pong { nonce });
        }
        Ok(ClientFrame::ShardInit {
            id,
            shard,
            of,
            spec,
        }) => {
            if shards.contains_key(&id) {
                writer.send(&ServerFrame::Error {
                    id: Some(id),
                    message: format!("shard id {id} already initialised"),
                });
                return None;
            }
            let (tx, rx) = std::sync::mpsc::channel::<(u64, StateBlob)>();
            shards.insert(id, tx);
            let writer = Arc::clone(writer);
            let runner = std::thread::Builder::new()
                .name("lsl-shard".into())
                .spawn(move || {
                    crate::cluster::run_shard(
                        move |frame: &ServerFrame| writer.send(frame),
                        id,
                        shard,
                        of,
                        &spec,
                        &rx,
                    );
                })
                .expect("spawning a shard runner");
            forwarders.push(runner);
        }
        Ok(ClientFrame::ShardSync { id, round, blob }) => match shards.get(&id) {
            // A dead runner (failed init) drops its receiver; sends
            // then are no-ops, matching the typed error the runner
            // already reported.
            Some(tx) => {
                let _ = tx.send((round, blob));
            }
            None => writer.send(&ServerFrame::Error {
                id: Some(id),
                message: format!("shard-sync for unknown shard id {id}"),
            }),
        },
        Ok(ClientFrame::Cancel { id }) => match tokens.get(&id) {
            // The terminal `cancelled` event (per member, through the
            // forwarder) is the acknowledgement.
            Some(members) => {
                for token in members {
                    token.cancel();
                }
            }
            None => writer.send(&ServerFrame::Error {
                id: Some(id),
                message: format!("cancel for unknown job id {id}"),
            }),
        },
        Ok(ClientFrame::Shutdown) => {
            ctl.shutdown_requested.store(true, Ordering::Release);
        }
        Ok(ClientFrame::Submit { id, spec }) => match spec.parse::<SweepSpec>() {
            Err(e) => writer.send(&ServerFrame::Error {
                id: Some(id),
                message: e.to_string(),
            }),
            Ok(sweep) => {
                let members = sweep.expand();
                let jobs = members.len();
                writer.send(&ServerFrame::Submitted {
                    id,
                    jobs: jobs as u64,
                });
                // Session-level admission, before the service queue is
                // touched: a draining server takes nothing new, and a
                // session over its in-flight cap must finish (or
                // cancel) work before submitting more.
                let rejection = if ctl.draining.load(Ordering::Acquire) {
                    Some(RejectReason::Draining)
                } else {
                    let cap = service.limits().per_session_inflight;
                    if inflight.load(Ordering::Acquire).saturating_add(jobs) > cap {
                        Some(RejectReason::SessionBusy { cap })
                    } else {
                        None
                    }
                };
                if let Some(reason) = rejection {
                    for index in 0..jobs as u64 {
                        writer.send(&ServerFrame::Event {
                            id,
                            index,
                            event: JobEvent::Rejected {
                                reason: reason.clone(),
                            },
                        });
                    }
                    return None;
                }
                inflight.fetch_add(jobs, Ordering::AcqRel);
                let (tx, rx) = std::sync::mpsc::channel::<(u64, JobEvent)>();
                let mut member_tokens = Vec::with_capacity(jobs);
                for (index, member) in members.into_iter().enumerate() {
                    let tx = tx.clone();
                    member_tokens.push(service.submit_routed(member, move |event| {
                        // The forwarder may already be gone (client
                        // hung up); dropping events then is fine.
                        let _ = tx.send((index as u64, event));
                    }));
                }
                drop(tx);
                tokens.insert(id, member_tokens);
                let writer = Arc::clone(writer);
                let inflight = Arc::clone(inflight);
                let forwarder = std::thread::Builder::new()
                    .name("lsl-forward".into())
                    .spawn(move || forward_line(&writer, id, jobs, &rx, &inflight))
                    .expect("spawning an event forwarder");
                forwarders.push(forwarder);
            }
        },
    }
    None
}

/// Drains one submitted line's tagged event stream into frames until
/// every member reported a terminal event, decrementing the session's
/// in-flight count per terminal. If the channel closes with members
/// unresolved (the service died mid-queue), each of them is failed
/// explicitly so the client never hangs.
fn forward_line(
    writer: &SessionWriter,
    id: u64,
    jobs: usize,
    rx: &std::sync::mpsc::Receiver<(u64, JobEvent)>,
    inflight: &AtomicUsize,
) {
    let mut resolved = vec![false; jobs];
    let mut remaining = jobs;
    for (index, event) in rx.iter() {
        let terminal = event.is_terminal();
        writer.send(&ServerFrame::Event { id, index, event });
        if terminal {
            if let Some(slot) = resolved.get_mut(index as usize) {
                if !*slot {
                    *slot = true;
                    remaining -= 1;
                    inflight.fetch_sub(1, Ordering::AcqRel);
                }
            }
            if remaining == 0 {
                return;
            }
        }
    }
    for (index, done) in resolved.into_iter().enumerate() {
        if !done {
            writer.send(&ServerFrame::Event {
                id,
                index: index as u64,
                event: JobEvent::Failed(SpecError::ServiceStopped),
            });
            inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// How one submitted line ended, as seen by a [`Client`].
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteOutcome {
    /// The session-scoped submit id.
    pub id: u64,
    /// The submitted line, verbatim.
    pub spec: String,
    /// Member results in expansion index order (`Err` members carry
    /// the job's typed [`SpecError`]; a line rejected by the server
    /// before expansion has one `Err` member with the rejection).
    pub members: Vec<Result<JobResult, SpecError>>,
    /// `Progress` events observed across all members.
    pub progress_events: u64,
    /// Full-state deliveries per member, in member order: the
    /// `(round, blob)` pairs a `stream` job's [`JobEvent::State`]
    /// events carried. Empty vectors for non-streaming members; empty
    /// overall when the line was rejected before expansion.
    pub states: Vec<Vec<(u64, StateBlob)>>,
}

impl RemoteOutcome {
    /// Whether every member finished.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.members.iter().all(Result::is_ok)
    }

    /// Aggregates a multi-member outcome into a [`SweepResult`]
    /// (expansion order), or the first member error.
    ///
    /// # Errors
    /// The first failing member's error.
    pub fn into_sweep_result(self) -> Result<SweepResult, SpecError> {
        let mut results = Vec::with_capacity(self.members.len());
        for member in self.members {
            results.push(member?);
        }
        Ok(SweepResult::aggregate(self.spec, results))
    }
}

/// A blocking client session — what `lsl run --remote` speaks. Submit
/// any number of lines ([`Client::submit`]), then [`Client::drain`]
/// the interleaved event streams into per-line outcomes. In-flight
/// lines can be cancelled by id ([`Client::cancel`]); their members
/// come back as [`SpecError::Cancelled`].
///
/// [`Client::connect_with`] negotiates the session codec up front:
/// [`Codec::Binary`] switches both directions to length-prefixed
/// binary frames (required for efficient `stream` jobs),
/// [`Codec::Text`] keeps the line protocol.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Nonce source for [`Client::ping`] (distinct from submit ids so
    /// a stale pong can never alias a job frame).
    next_nonce: u64,
    /// Submitted lines awaiting terminal events, by id.
    pending: HashMap<u64, Pending>,
    /// Submission order, so outcomes come back in the order sent.
    order: Vec<u64>,
    /// The negotiated session codec.
    codec: Codec,
    /// Raw receive buffer, shared by both codecs (bytes buffered
    /// across a codec switch are re-cut under the new framing).
    inbuf: Vec<u8>,
}

struct Pending {
    spec: String,
    /// `None` until the `submitted` ack tells us the expansion size.
    members: Option<Vec<Option<Result<JobResult, SpecError>>>>,
    progress_events: u64,
    /// Per-member `(round, blob)` state deliveries; sized with
    /// `members` at the `submitted` ack.
    states: Option<Vec<Vec<(u64, StateBlob)>>>,
    /// A line-level rejection (server `error` frame for this id).
    rejected: Option<SpecError>,
}

impl Client {
    /// Connects to an [`Server`] (or `lsl serve`) address, speaking
    /// the default text codec.
    ///
    /// # Errors
    /// The connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Submits and cancels are latency-sensitive one-off frames,
        // already write-combined — Nagle only adds stalls. Timed reads
        // let deadline-bounded waits (ping, shard barriers) poll the
        // socket without giving up blocking semantics.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(SESSION_POLL))?;
        Ok(Client {
            stream,
            next_id: 0,
            next_nonce: 0,
            pending: HashMap::new(),
            order: Vec::new(),
            codec: Codec::Text,
            inbuf: Vec::new(),
        })
    }

    /// Connects and negotiates `codec` for the session. The handshake
    /// is always in text: the client sends `hello codec=<name>`, the
    /// server acks with its own `hello` frame in the *old* codec, and
    /// both sides switch immediately after.
    ///
    /// # Errors
    /// `io::Error` on connect/handshake failure (an unexpected or
    /// unparsable ack maps to `InvalidData`).
    pub fn connect_with(addr: impl ToSocketAddrs, codec: Codec) -> std::io::Result<Client> {
        let mut client = Client::connect(addr)?;
        if codec == Codec::Text {
            return Ok(client);
        }
        let invalid = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        client
            .send(&ClientFrame::Hello { codec })
            .map_err(|e| invalid(format!("codec handshake write failed: {e}")))?;
        match client.read_frame_deadline(None) {
            Ok(Some(ServerFrame::Hello { codec: acked })) if acked == codec => {
                client.codec = codec;
                Ok(client)
            }
            Ok(Some(frame)) => Err(invalid(format!("unexpected handshake ack: {frame}"))),
            Ok(None) => Err(invalid("server closed during codec handshake".into())),
            Err(e) => Err(invalid(format!("bad handshake ack: {e}"))),
        }
    }

    /// Connects (negotiating `codec`) with bounded exponential
    /// backoff: up to `attempts` tries, sleeping
    /// `base_delay * 2^(try-1)` between consecutive tries. The way a
    /// cluster coordinator re-reaches a worker that is restarting.
    ///
    /// # Errors
    /// A typed [`ConnectError`] carrying the attempt count and the
    /// last try's error once the budget is exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        codec: Codec,
        attempts: u32,
        base_delay: Duration,
    ) -> Result<Client, ConnectError> {
        let attempts = attempts.max(1);
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                // Clamp the shift: past 2^16 the delay is effectively
                // saturated anyway and the shift must not overflow.
                let backoff = base_delay.saturating_mul(1u32 << (attempt - 1).min(16));
                std::thread::sleep(backoff);
            }
            match Client::connect_with(&addr, codec) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
        }
        Err(ConnectError {
            attempts,
            last: last.expect("at least one attempt was made"),
        })
    }

    /// Sends a `ping` and blocks until the matching `pong` arrives or
    /// `timeout` passes — the coordinator's worker-liveness probe.
    /// Job events arriving in between are applied to their pending
    /// lines (never lost); a stale pong from an earlier timed-out
    /// ping is skipped.
    ///
    /// # Errors
    /// [`NetError::Timeout`] if no pong arrived in time; the usual
    /// socket/protocol errors otherwise.
    pub fn ping(&mut self, timeout: Duration) -> Result<(), NetError> {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.send(&ClientFrame::Ping { nonce })
            .map_err(NetError::Io)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.read_frame_deadline(Some(deadline))? {
                None => return Err(NetError::Disconnected),
                Some(ServerFrame::Pong { nonce: got }) if got == nonce => return Ok(()),
                Some(ServerFrame::Pong { .. }) => {}
                Some(frame) => self.apply(frame)?,
            }
        }
    }

    /// Sends one raw client frame — the cluster layer's shard
    /// channels speak `shard-init`/`shard-sync` outside the
    /// submit/drain flow.
    pub(crate) fn send_frame(&mut self, frame: &ClientFrame) -> Result<(), NetError> {
        self.send(frame).map_err(NetError::Io)
    }

    /// Blocks for the next raw server frame until `deadline` (`None`
    /// waits forever). `Ok(None)` means the server closed.
    ///
    /// # Errors
    /// [`NetError::Timeout`] past the deadline; socket/decode errors
    /// otherwise.
    pub(crate) fn recv_frame(
        &mut self,
        deadline: Option<Instant>,
    ) -> Result<Option<ServerFrame>, NetError> {
        self.read_frame_deadline(deadline)
    }

    /// Sends one client frame under the negotiated codec, as a single
    /// `write_all` either way (no Nagle-stalled half-frames).
    fn send(&mut self, frame: &ClientFrame) -> std::io::Result<()> {
        match self.codec {
            Codec::Text => self.stream.write_all(format!("{frame}\n").as_bytes()),
            Codec::Binary => codec::write_frame(&mut self.stream, &codec::encode_client(frame)),
        }
    }

    /// Blocks for the next server frame under the negotiated codec.
    /// `Ok(None)` means the server closed the connection.
    fn read_frame(&mut self) -> Result<Option<ServerFrame>, NetError> {
        self.read_frame_deadline(None)
    }

    /// Blocks for the next server frame, retrying timed socket reads
    /// until `deadline` (forever when `None`). `Ok(None)` means the
    /// server closed the connection.
    fn read_frame_deadline(
        &mut self,
        deadline: Option<Instant>,
    ) -> Result<Option<ServerFrame>, NetError> {
        let mut tmp = [0u8; 64 * 1024];
        loop {
            if let Some(frame) = self.cut_frame()? {
                return Ok(Some(frame));
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(NetError::Timeout);
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(None),
                Ok(n) => self.inbuf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Cuts one complete frame off the receive buffer under the
    /// current codec, or `None` when more bytes are needed. Empty
    /// text lines are skipped.
    fn cut_frame(&mut self) -> Result<Option<ServerFrame>, NetError> {
        loop {
            match self.codec {
                Codec::Text => {
                    let Some(pos) = self.inbuf.iter().position(|&b| b == b'\n') else {
                        return Ok(None);
                    };
                    let line: Vec<u8> = self.inbuf.drain(..=pos).collect();
                    let line = std::str::from_utf8(&line)
                        .map_err(|_| NetError::Protocol("server frame not UTF-8".into()))?
                        .trim();
                    if line.is_empty() {
                        continue;
                    }
                    return line
                        .parse::<ServerFrame>()
                        .map(Some)
                        .map_err(NetError::Wire);
                }
                Codec::Binary => {
                    if self.inbuf.len() < 4 {
                        return Ok(None);
                    }
                    let len = u32::from_le_bytes([
                        self.inbuf[0],
                        self.inbuf[1],
                        self.inbuf[2],
                        self.inbuf[3],
                    ]) as usize;
                    if len > codec::MAX_FRAME {
                        return Err(NetError::Codec(CodecError::Oversize { len: len as u64 }));
                    }
                    if self.inbuf.len() < 4 + len {
                        return Ok(None);
                    }
                    let payload: Vec<u8> = self.inbuf[4..4 + len].to_vec();
                    self.inbuf.drain(..4 + len);
                    return codec::decode_server(&payload)
                        .map(Some)
                        .map_err(NetError::Codec);
                }
            }
        }
    }

    /// Submits one spec/sweep line; returns its session-scoped id.
    /// Events accumulate server-side until [`Client::drain`] reads
    /// them — submit the whole batch first, then drain once.
    ///
    /// # Errors
    /// The socket write error, or `InvalidInput` if `spec` contains a
    /// line break (frames are line-delimited; an embedded newline
    /// would split one submit into two frames and desync the session).
    pub fn submit(&mut self, spec: &str) -> std::io::Result<u64> {
        if spec.contains('\n') || spec.contains('\r') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a spec line must not contain line breaks",
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        let frame = ClientFrame::Submit {
            id,
            spec: spec.to_string(),
        };
        self.send(&frame)?;
        self.pending.insert(
            id,
            Pending {
                spec: spec.to_string(),
                members: None,
                progress_events: 0,
                states: None,
                rejected: None,
            },
        );
        self.order.push(id);
        Ok(id)
    }

    /// Asks the server to cancel a submitted line's member jobs. The
    /// server answers through the event stream: each member ends with
    /// a terminal `cancelled` event, which [`Client::drain`] maps to
    /// [`SpecError::Cancelled`]. Racing a job's natural completion is
    /// fine — members that finish first stay finished.
    ///
    /// # Errors
    /// The socket write error.
    pub fn cancel(&mut self, id: u64) -> std::io::Result<()> {
        self.send(&ClientFrame::Cancel { id })
    }

    /// Sends the `shutdown` admin frame, asking the serve process to
    /// drain gracefully. The request is a latch the server's driver
    /// polls ([`Server::shutdown_requested`]); jobs already in flight
    /// still stream to completion within the drain grace period.
    ///
    /// # Errors
    /// The socket write error.
    pub fn request_shutdown(&mut self) -> std::io::Result<()> {
        self.send(&ClientFrame::Shutdown)
    }

    /// Blocks until every submitted line resolved (all member jobs
    /// terminal, or the line rejected) and returns the outcomes in
    /// submission order.
    ///
    /// # Errors
    /// A [`NetError`] if the connection drops or the server sends a
    /// frame that does not parse — job-level failures are **not**
    /// errors here; they come back inside [`RemoteOutcome::members`].
    pub fn drain(&mut self) -> Result<Vec<RemoteOutcome>, NetError> {
        while !self.all_resolved() {
            let frame = self.read_frame()?.ok_or(NetError::Disconnected)?;
            self.apply(frame)?;
        }
        let mut outcomes = Vec::with_capacity(self.order.len());
        for id in std::mem::take(&mut self.order) {
            let p = self.pending.remove(&id).expect("resolved ids are pending");
            let members = match (p.rejected, p.members) {
                (Some(e), _) => vec![Err(e)],
                (None, Some(members)) => members
                    .into_iter()
                    .map(|m| m.expect("resolved lines have terminal members"))
                    .collect(),
                (None, None) => unreachable!("resolved lines are acked or rejected"),
            };
            outcomes.push(RemoteOutcome {
                id,
                spec: p.spec,
                members,
                progress_events: p.progress_events,
                states: p.states.unwrap_or_default(),
            });
        }
        Ok(outcomes)
    }

    fn all_resolved(&self) -> bool {
        self.pending.values().all(|p| {
            p.rejected.is_some()
                || p.members
                    .as_ref()
                    .is_some_and(|m| m.iter().all(Option::is_some))
        })
    }

    fn apply(&mut self, frame: ServerFrame) -> Result<(), NetError> {
        match frame {
            ServerFrame::Submitted { id, jobs } => {
                let p = self.pending.get_mut(&id).ok_or(NetError::UnknownId(id))?;
                p.members = Some((0..jobs).map(|_| None).collect());
                p.states = Some((0..jobs).map(|_| Vec::new()).collect());
            }
            ServerFrame::Event { id, index, event } => {
                let p = self.pending.get_mut(&id).ok_or(NetError::UnknownId(id))?;
                match event {
                    JobEvent::Progress { .. } => p.progress_events += 1,
                    JobEvent::State { round, blob } => {
                        let states = p.states.as_mut().ok_or_else(|| {
                            NetError::Protocol("event before submitted ack".into())
                        })?;
                        let slot = states.get_mut(index as usize).ok_or_else(|| {
                            NetError::Protocol(format!("member index {index} out of range"))
                        })?;
                        slot.push((round, blob));
                    }
                    JobEvent::Finished(result) => set_member(p, index, Ok(result))?,
                    JobEvent::Failed(e) => set_member(p, index, Err(e))?,
                    JobEvent::Rejected { reason } => {
                        set_member(p, index, Err(SpecError::Rejected(reason)))?;
                    }
                    JobEvent::Cancelled => set_member(p, index, Err(SpecError::Cancelled))?,
                    JobEvent::Accepted | JobEvent::Started => {}
                }
            }
            ServerFrame::Hello { codec } => {
                return Err(NetError::Protocol(format!(
                    "unexpected mid-session codec ack (codec={codec})"
                )));
            }
            // A pong whose ping already timed out: harmless, drop it.
            ServerFrame::Pong { .. } => {}
            ServerFrame::ShardSync { id, .. } | ServerFrame::ShardDone { id, .. } => {
                return Err(NetError::Protocol(format!(
                    "shard frame for id {id} outside a shard session"
                )));
            }
            ServerFrame::Error { id, message } => match id.and_then(|i| self.pending.get_mut(&i)) {
                // Line-level rejection: the server names the id.
                Some(p) => {
                    p.rejected = Some(SpecError::Unsupported {
                        message: format!("rejected by server: {message}"),
                    });
                }
                // A session-level protocol error is a client bug.
                None => return Err(NetError::Protocol(message)),
            },
        }
        Ok(())
    }
}

fn set_member(
    p: &mut Pending,
    index: u64,
    result: Result<JobResult, SpecError>,
) -> Result<(), NetError> {
    let members = p
        .members
        .as_mut()
        .ok_or_else(|| NetError::Protocol("event before submitted ack".into()))?;
    let slot = members
        .get_mut(index as usize)
        .ok_or_else(|| NetError::Protocol(format!("member index {index} out of range")))?;
    *slot = Some(result);
    Ok(())
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// A client-side session failure (distinct from job-level
/// [`SpecError`]s, which arrive inside outcomes).
#[derive(Debug)]
pub enum NetError {
    /// Reading or writing the socket failed.
    Io(std::io::Error),
    /// The server closed the connection with lines still unresolved.
    Disconnected,
    /// A server frame failed to parse.
    Wire(WireError),
    /// A binary frame failed to decode (or exceeded the frame cap).
    Codec(CodecError),
    /// The server referenced an id this session never submitted, or
    /// violated the frame ordering contract.
    Protocol(String),
    /// A server error frame named an id we no longer track.
    UnknownId(u64),
    /// A deadline-bounded wait ([`Client::ping`], a shard barrier)
    /// expired before the expected frame arrived.
    Timeout,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Disconnected => f.write_str("server disconnected mid-session"),
            NetError::Wire(e) => write!(f, "{e}"),
            NetError::Codec(e) => write!(f, "{e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::UnknownId(id) => write!(f, "server frame for unknown id {id}"),
            NetError::Timeout => f.write_str("timed out waiting for a server frame"),
        }
    }
}

impl std::error::Error for NetError {}

/// A typed connection failure after [`Client::connect_with_retry`]
/// exhausted its attempt budget.
#[derive(Debug)]
pub struct ConnectError {
    /// Connection attempts made.
    pub attempts: u32,
    /// The last attempt's error.
    pub last: std::io::Error,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failed to connect after {} attempt{}: {}",
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.last
        )
    }
}

impl std::error::Error for ConnectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobOutput;
    use std::io::{BufRead, BufReader};

    #[test]
    fn loopback_job_matches_in_process() {
        let server = Server::bind("127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let line = "graph=torus:5x5 model=coloring:q=9 seed=4 job=run:rounds=40";
        client.submit(line).unwrap();
        let outcomes = client.drain().unwrap();
        assert_eq!(outcomes.len(), 1);
        let direct = line.parse::<crate::spec::JobSpec>().unwrap().run().unwrap();
        assert_eq!(outcomes[0].members[0].as_ref().unwrap(), &direct);
        assert!(outcomes[0].progress_events > 0, "progress streamed");
    }

    #[test]
    fn malformed_lines_get_typed_errors_and_the_session_survives() {
        let server = Server::bind("127.0.0.1:0", 1).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Not a frame at all.
        writeln!(writer, "EHLO example.com").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let frame: ServerFrame = line.trim_end().parse().unwrap();
        assert!(
            matches!(frame, ServerFrame::Error { id: None, .. }),
            "{frame:?}"
        );
        // A frame whose spec is rejected: typed, with the id.
        writeln!(writer, "submit id=5 spec=graph=moebius:9 model=mis").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let frame: ServerFrame = line.trim_end().parse().unwrap();
        match frame {
            ServerFrame::Error { id, message } => {
                assert_eq!(id, Some(5));
                assert!(message.contains("graph family"), "{message}");
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
        // The session is still alive: a good job runs to completion.
        writeln!(
            writer,
            "submit id=6 spec=graph=cycle:8 model=coloring:q=5 seed=1 job=run:rounds=10"
        )
        .unwrap();
        let mut finished = false;
        while !finished {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            let frame: ServerFrame = line.trim_end().parse().unwrap();
            if let ServerFrame::Event {
                id: 6,
                event: JobEvent::Finished(result),
                ..
            } = frame
            {
                assert!(matches!(result.output, JobOutput::Run { .. }));
                finished = true;
            }
        }
    }

    #[test]
    fn sweep_streams_tagged_members() {
        let server = Server::bind("127.0.0.1:0", 2).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .submit("graph=cycle:10 model=coloring:q=5 job=run:rounds=10 seeds=0..3")
            .unwrap();
        let outcomes = client.drain().unwrap();
        assert_eq!(outcomes[0].members.len(), 3);
        let sweep = outcomes[0].clone().into_sweep_result().unwrap();
        assert_eq!(sweep.summary.jobs, 3);
        for (i, member) in sweep.results.iter().enumerate() {
            let solo: crate::spec::JobSpec =
                format!("graph=cycle:10 model=coloring:q=5 seed={i} job=run:rounds=10")
                    .parse()
                    .unwrap();
            assert_eq!(member, &solo.run().unwrap(), "member {i}");
        }
    }
}
