//! The sampling service: an owned worker pool streaming [`JobEvent`]s
//! for [`JobSpec`]s and [`SweepSpec`]s run concurrently.
//!
//! The ROADMAP's north star is a system that answers *sampling queries*
//! under heavy traffic. The ownership redesign made every sampler a
//! `'static + Send` handle; this module adds the serving layer:
//!
//! * [`Service::new(threads)`](Service::new) spawns a pool of worker
//!   threads behind an in-process job queue;
//! * [`Service::submit`] enqueues a parsed [`JobSpec`] and returns a
//!   [`JobHandle`] immediately;
//! * [`JobHandle::events`] subscribes to the job's **event stream** —
//!   [`JobEvent::Accepted`] at submission, [`JobEvent::Started`] when a
//!   worker picks the job up, periodic [`JobEvent::Progress`] from the
//!   long-running round loops, and exactly one terminal
//!   [`JobEvent::Finished`] / [`JobEvent::Failed`];
//! * [`JobHandle::wait`] is the one-shot convenience that drains the
//!   stream and returns the terminal result;
//! * [`Service::submit_sweep`] expands a [`SweepSpec`] (`seeds=0..32`,
//!   `sweep=beta:0.1..0.5:0.1`) into member jobs and returns a
//!   [`SweepHandle`] aggregating them into a
//!   [`SweepResult`].
//!
//! The same protocol goes over the network unchanged: `lsl serve`
//! forwards these events as line frames (see [`proto`](crate::proto)
//! and [`net`](crate::net)).
//!
//! Workers share a **model cache** keyed by [`JobSpec::model_key`]:
//! two jobs naming the same graph × model (× graph seed, for random
//! families) reuse one built [`BuiltModel`] — the graphs are behind
//! `Arc`s, so a cache hit costs two reference-count bumps, not a
//! rebuild of a million-edge CSR structure. Eviction is LRU
//! (touch-on-hit), so a hot model survives a churn of cold one-off
//! specs; [`Service::cache_stats`] reports hits/misses/evictions.
//!
//! **Determinism is preserved end to end**: a job's result is a pure
//! function of its spec (every random draw is keyed by
//! `(seed, round, vertex-or-edge)`, and random graphs by the graph
//! seed), so a service answer is bit-identical to calling
//! [`JobSpec::run`] directly on the caller's thread — regardless of
//! worker count, submission order, cache state, or scheduling.
//! Progress events observe the round loops without perturbing them.
//! Property-tested in `tests/service_identity.rs` (in-process) and
//! `tests/remote_identity.rs` (over TCP).
//!
//! # Example
//!
//! ```
//! use lsl_core::service::{JobEvent, Service};
//! use lsl_core::spec::JobSpec;
//!
//! let service = Service::new(4);
//! let spec: JobSpec = "graph=cycle:12 model=coloring:q=5 seed=1 job=run:rounds=50"
//!     .parse()
//!     .unwrap();
//!
//! // Streaming: watch the job progress.
//! let mut saw_progress = false;
//! for event in service.submit(spec.clone()).events() {
//!     match event {
//!         JobEvent::Progress { round, of } => {
//!             saw_progress = true;
//!             assert!(round <= of);
//!         }
//!         JobEvent::Finished(result) => {
//!             assert!(matches!(
//!                 result.output,
//!                 lsl_core::spec::JobOutput::Run { feasible: true, .. }
//!             ));
//!         }
//!         _ => {}
//!     }
//! }
//! assert!(saw_progress);
//!
//! // One-shot: `wait` drains the same stream.
//! let result = service.submit(spec).wait().unwrap();
//! ```

use crate::lifecycle::{CancelToken, Limits, RejectReason, SlotPool};
use crate::spec::{BuiltModel, JobResult, JobSpec, SpecError, SweepResult, SweepSpec};
use crate::store::{ResultStore, StoreStats};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One event in a job's lifecycle, streamed through
/// [`JobHandle::events`] (and, framed by [`proto`](crate::proto), over
/// the wire).
///
/// Per job the stream is ordered `Accepted`, `Started`, zero or more
/// `Progress`, then exactly one terminal `Finished` / `Failed` /
/// `Cancelled`. Two deviations: a submission refused admission gets a
/// lone terminal `Rejected` (no `Accepted`), and a job that dies
/// before running (service dropped mid-queue, worker thread gone) ends
/// with `Failed(ServiceStopped)` possibly right after `Accepted`.
#[derive(Clone, Debug, PartialEq)]
pub enum JobEvent {
    /// The job entered the service queue.
    Accepted,
    /// Terminal: the job was refused admission (queue full, session
    /// quota, round budget, or server drain) and will never run.
    Rejected {
        /// Which limit refused it.
        reason: RejectReason,
    },
    /// A worker dequeued the job and is running it.
    Started,
    /// The job's round loop reached `round` of `of` work units
    /// (monotone; units are job-kind-specific, e.g. rounds for `run`
    /// jobs, replica-batch rounds for `distribution`/`tv`,
    /// trial-rounds for `coalescence`).
    Progress {
        /// Work done so far.
        round: u64,
        /// Total work the job will do.
        of: u64,
    },
    /// Terminal: the job finished with this result.
    Finished(JobResult),
    /// Terminal: the job failed (invalid combination, unsupported job,
    /// contained panic, or service shutdown).
    Failed(SpecError),
    /// Terminal: the job was cancelled — by [`JobHandle::cancel`], a
    /// client `cancel` frame, or a draining server — before it produced
    /// a result. Lands within one progress interval of the request.
    Cancelled,
    /// A `stream` job delivered a full configuration. Non-terminal and
    /// *not* throttled like `Progress` — deliveries are paced by the
    /// spec's `every`, so the event sequence is deterministic.
    State {
        /// Rounds executed when the state was read (burn-in included).
        round: u64,
        /// The packed configuration.
        blob: crate::codec::StateBlob,
    },
}

impl JobEvent {
    /// Whether the event ends its job's stream.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobEvent::Finished(_)
                | JobEvent::Failed(_)
                | JobEvent::Rejected { .. }
                | JobEvent::Cancelled
        )
    }
}

/// One queued job: the spec plus the event sink the worker feeds.
/// A boxed closure (not a concrete channel) so multiplexers can route
/// many jobs into one stream ([`Service::submit_routed`]) without one
/// thread per job.
struct Task {
    spec: JobSpec,
    emit: Box<dyn Fn(JobEvent) + Send>,
    /// The cancel/abandon handshake with whoever holds the handle.
    ctl: CancelToken,
}

/// Models retained by the cache before the least-recently-used entries
/// are evicted. Bounds a long-lived service's memory under a stream of
/// distinct workloads; a miss after eviction just rebuilds
/// (deterministically, so answers never change).
const MODEL_CACHE_CAP: usize = 32;

/// Minimum wall-clock spacing between consecutive [`JobEvent::Progress`]
/// emissions for one job. Ticks arriving sooner are dropped — except
/// completion ticks (`round == of`), which always ship — bounding the
/// event rate of tight round loops to ~`1/PROGRESS_MIN_INTERVAL` per
/// job regardless of how fast the engine steps.
const PROGRESS_MIN_INTERVAL: std::time::Duration = std::time::Duration::from_millis(25);

/// Cache counters since service start; see [`Service::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the model.
    pub misses: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
}

/// The shared model cache: a mutexed map plus LRU order for eviction
/// (back = most recent; hits touch). A plain mutex is deliberate:
/// builds are deterministic, so if two workers race on the same key
/// the second insert overwrites with a bit-identical model — wasted
/// work at worst, never a wrong answer.
#[derive(Default)]
struct ModelCacheInner {
    models: HashMap<String, BuiltModel>,
    /// Keys ordered least → most recently used.
    order: Vec<String>,
    stats: CacheStats,
}

impl ModelCacheInner {
    /// Looks `key` up, touching it to most-recently-used on a hit.
    fn get(&mut self, key: &str) -> Option<BuiltModel> {
        match self.models.get(key) {
            Some(model) => {
                self.stats.hits += 1;
                // Touch-on-hit is what makes the policy LRU rather
                // than FIFO: a hot model churned by cold specs keeps
                // returning to the back of the eviction order.
                if let Some(pos) = self.order.iter().position(|k| k == key) {
                    let k = self.order.remove(pos);
                    self.order.push(k);
                }
                Some(model.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: String, model: BuiltModel) {
        if self.models.insert(key.clone(), model).is_none() {
            self.order.push(key);
        }
        while self.models.len() > MODEL_CACHE_CAP {
            let oldest = self.order.remove(0);
            self.models.remove(&oldest);
            self.stats.evictions += 1;
        }
    }
}

type ModelCache = Mutex<ModelCacheInner>;

/// An owned worker-pool service executing [`JobSpec`]s concurrently
/// and streaming [`JobEvent`]s. See the [module docs](self) for the
/// design and guarantees.
///
/// Dropping the service closes the queue and then **blocks joining
/// every worker until the queue drains** — jobs already submitted
/// still run to completion and their handles resolve normally. A
/// handle resolves to [`SpecError::ServiceStopped`] only if its job
/// never ran (e.g. a worker thread died).
pub struct Service {
    /// `Some` while accepting; taken (closing the queue) on drop.
    tx: Option<mpsc::Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<ModelCache>,
    limits: Limits,
    /// The queue-slot semaphore implementing `limits.queue_cap`.
    slots: Arc<SlotPool>,
    store: Option<Arc<ResultStore>>,
}

impl Service {
    /// Spawns a service with `threads` workers (clamped to at least
    /// one; `0` means auto-detect, the engine's
    /// [`Backend`](crate::engine::Backend) 0-means-auto contract) and
    /// no admission limits.
    ///
    /// As a CI/scripting hook, if the `LSL_RESULT_STORE` environment
    /// variable names a directory, the service attaches a
    /// process-scoped [`ResultStore`] under it (a `pid-<n>` subdir, so
    /// concurrent processes don't serve each other's entries). The
    /// explicit constructors ([`Service::with_limits`],
    /// [`Service::with_store`]) ignore the variable.
    pub fn new(threads: usize) -> Self {
        let store = std::env::var("LSL_RESULT_STORE")
            .ok()
            .filter(|dir| !dir.is_empty())
            .and_then(|dir| {
                let dir = std::path::Path::new(&dir).join(format!("pid-{}", std::process::id()));
                ResultStore::open(dir).ok()
            });
        Self::with_options(threads, Limits::default(), store)
    }

    /// [`Service::new`] with admission [`Limits`]: submissions beyond
    /// `queue_cap` waiting jobs or `max_rounds` of budget resolve with
    /// a terminal [`JobEvent::Rejected`] instead of queueing.
    pub fn with_limits(threads: usize, limits: Limits) -> Self {
        Self::with_options(threads, limits, None)
    }

    /// [`Service::with_limits`] plus a disk-backed [`ResultStore`]:
    /// finished results are written through to it, and a submission
    /// whose canonical spec is already stored answers from disk
    /// (bit-identically, by the determinism contract) without running.
    pub fn with_store(threads: usize, limits: Limits, store: ResultStore) -> Self {
        Self::with_options(threads, limits, Some(store))
    }

    fn with_options(threads: usize, limits: Limits, store: Option<ResultStore>) -> Self {
        let threads = crate::engine::Backend::Parallel { threads }
            .worker_count()
            .max(1);
        let (tx, rx) = mpsc::channel::<Task>();
        // mpsc receivers are single-consumer; the pool shares one
        // behind a mutex, each worker holding it only for the dequeue.
        let rx = Arc::new(Mutex::new(rx));
        let cache: Arc<ModelCache> = Arc::new(Mutex::new(ModelCacheInner::default()));
        let store = store.map(Arc::new);
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                let store = store.clone();
                std::thread::Builder::new()
                    .name(format!("lsl-service-{i}"))
                    .spawn(move || worker_loop(&rx, &cache, store.as_deref()))
                    .expect("spawning a service worker")
            })
            .collect();
        Service {
            tx: Some(tx),
            workers,
            cache,
            limits,
            slots: SlotPool::new(limits.queue_cap),
            store,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The admission limits this service enforces.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Jobs currently holding queue slots (admitted, not yet dequeued
    /// by a worker — running jobs don't count).
    pub fn queued_jobs(&self) -> usize {
        self.slots.in_use()
    }

    /// The result store's hit/miss/eviction counters, if one is
    /// attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Enqueues a job and returns immediately; the handle's event
    /// stream already carries [`JobEvent::Accepted`]. The terminal
    /// result is exactly what [`JobSpec::run`] would have returned on
    /// this thread (bit-identical by the determinism contract).
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let (events, rx) = mpsc::channel();
        let canonical = spec.to_string();
        let token = self.submit_routed(spec, move |event| {
            // The receiver may be gone (abandoned handle); fine.
            let _ = events.send(event);
        });
        JobHandle {
            rx,
            spec: canonical,
            terminal: None,
            guard: AbandonGuard(token),
        }
    }

    /// Enqueues a job whose events are delivered through `route`
    /// instead of a per-job channel — the fan-in primitive for
    /// multiplexers (a network session routes every member of a sweep
    /// into one tagged stream, one drain thread total, instead of one
    /// thread per member). The sink is called from the worker thread;
    /// the same `Accepted … terminal` ordering as [`JobHandle::events`]
    /// applies. If the service stops before the job runs, no terminal
    /// is emitted — the routing channel closing is the signal.
    ///
    /// Admission happens here, synchronously: a submission over the
    /// round budget or into a full queue gets a lone terminal
    /// [`JobEvent::Rejected`] through `route` and an already-resolved
    /// token. The returned [`CancelToken`] addresses the job for the
    /// rest of its life; dropping it is harmless (unlike dropping a
    /// [`JobHandle`], it never abandons the job).
    pub fn submit_routed(
        &self,
        spec: JobSpec,
        route: impl Fn(JobEvent) + Send + 'static,
    ) -> CancelToken {
        let budget = spec.round_budget();
        if budget > self.limits.max_rounds {
            route(JobEvent::Rejected {
                reason: RejectReason::RoundBudget {
                    budget,
                    cap: self.limits.max_rounds,
                },
            });
            return CancelToken::resolved();
        }
        let Some(slot) = self.slots.try_acquire() else {
            route(JobEvent::Rejected {
                reason: RejectReason::QueueFull {
                    cap: self.limits.queue_cap,
                },
            });
            return CancelToken::resolved();
        };
        route(JobEvent::Accepted);
        let ctl = CancelToken::queued(slot);
        let task = Task {
            spec,
            emit: Box::new(route),
            ctl: ctl.clone(),
        };
        let tx = self.tx.as_ref().expect("service accepts until dropped");
        // A send only fails once every worker is gone; the sink then
        // never sees a terminal event (its channel closes instead).
        let _ = tx.send(task);
        ctl
    }

    /// Parses and submits a spec line in one call.
    ///
    /// # Errors
    /// Returns the parse error immediately (nothing is enqueued).
    pub fn submit_str(&self, spec: &str) -> Result<JobHandle, SpecError> {
        Ok(self.submit(spec.parse::<JobSpec>()?))
    }

    /// Expands a sweep line into its member jobs and submits them all;
    /// the returned [`SweepHandle`] aggregates member results (in
    /// expansion order) into a [`SweepResult`]. Single-job lines work
    /// too (a sweep of one).
    pub fn submit_sweep(&self, sweep: &SweepSpec) -> SweepHandle {
        let members = sweep.expand().into_iter().map(|s| self.submit(s)).collect();
        SweepHandle {
            spec: sweep.to_string(),
            members,
        }
    }

    /// Number of distinct models currently cached (bounded by the LRU
    /// eviction cap, so long-lived services don't grow without limit).
    pub fn cached_models(&self) -> usize {
        self.cache.lock().expect("cache lock").models.len()
    }

    /// Model-cache counters (hits / misses / LRU evictions) since the
    /// service started.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing the channel lets the workers drain the queue and exit.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("threads", &self.workers.len())
            .field("cached_models", &self.cached_models())
            .finish()
    }
}

/// Drops-to-abandon: the token travels inside this guard so that when
/// the last owner (handle or its event iterator) goes away while the
/// job is still *queued*, the job's slot frees immediately and it
/// never runs. A started job is unaffected — it keeps running, its
/// events just go unread.
#[derive(Debug)]
struct AbandonGuard(CancelToken);

impl Drop for AbandonGuard {
    fn drop(&mut self) {
        self.0.abandon();
    }
}

/// A pending job: a subscription to its event stream. Use
/// [`JobHandle::events`] to watch it run, [`JobHandle::wait`] for the
/// terminal result, or [`JobHandle::cancel`] to stop it. Dropping the
/// handle of a job that already started abandons it (it still runs,
/// its events are discarded); dropping the handle of a job still in
/// the queue frees its slot and the job never runs.
#[must_use = "a submitted job's result arrives through its handle"]
#[derive(Debug)]
pub struct JobHandle {
    rx: mpsc::Receiver<JobEvent>,
    spec: String,
    /// Terminal result once observed by `try_wait` (so a later
    /// `wait`/`events` call does not lose it).
    terminal: Option<Result<JobResult, SpecError>>,
    guard: AbandonGuard,
}

impl JobHandle {
    /// The canonical form of the submitted spec.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Requests cancellation: a queued job resolves with
    /// [`JobEvent::Cancelled`] instead of starting; a running job
    /// notices at its next progress tick and terminates with
    /// `Cancelled` within one progress interval. Idempotent; a no-op
    /// once the job is terminal.
    pub fn cancel(&self) {
        self.guard.0.cancel();
    }

    /// A detached [`CancelToken`] addressing this job — cancel (or
    /// observe cancellation of) the job after the handle itself was
    /// consumed by [`JobHandle::events`]/[`JobHandle::wait`].
    pub fn cancel_token(&self) -> CancelToken {
        self.guard.0.clone()
    }

    /// Consumes the handle into a blocking iterator over the job's
    /// events, ending after the terminal event. If the service dies
    /// before the job runs, the stream ends with
    /// [`JobEvent::Failed`]`(`[`SpecError::ServiceStopped`]`)`.
    pub fn events(self) -> JobEvents {
        JobEvents {
            buffered: self.terminal.map(|t| match t {
                Ok(result) => JobEvent::Finished(result),
                Err(SpecError::Cancelled) => JobEvent::Cancelled,
                Err(SpecError::Rejected(reason)) => JobEvent::Rejected { reason },
                Err(e) => JobEvent::Failed(e),
            }),
            rx: self.rx,
            done: false,
            _guard: self.guard,
        }
    }

    /// Blocks until the job finishes — the thin convenience that
    /// drains [`JobHandle::events`] and returns the terminal result.
    ///
    /// # Errors
    /// A [`SpecError`] from the job itself (invalid combination,
    /// unsupported job), [`SpecError::Rejected`] /
    /// [`SpecError::Cancelled`] from the lifecycle layer, or
    /// [`SpecError::ServiceStopped`] if the service dropped before
    /// running it.
    pub fn wait(self) -> Result<JobResult, SpecError> {
        for event in self.events() {
            match event {
                JobEvent::Finished(result) => return Ok(result),
                JobEvent::Failed(e) => return Err(e),
                JobEvent::Rejected { reason } => return Err(SpecError::Rejected(reason)),
                JobEvent::Cancelled => return Err(SpecError::Cancelled),
                _ => {}
            }
        }
        // `events()` always ends with a terminal event.
        Err(SpecError::ServiceStopped)
    }

    /// Non-blocking probe: `Some` once the job has finished. Progress
    /// events arriving in between are drained and discarded; the
    /// terminal result is cached, so probing never loses it.
    pub fn try_wait(&mut self) -> Option<Result<JobResult, SpecError>> {
        if let Some(t) = &self.terminal {
            return Some(t.clone());
        }
        loop {
            match self.rx.try_recv() {
                Ok(JobEvent::Finished(result)) => {
                    self.terminal = Some(Ok(result.clone()));
                    return Some(Ok(result));
                }
                Ok(JobEvent::Failed(e)) => {
                    self.terminal = Some(Err(e.clone()));
                    return Some(Err(e));
                }
                Ok(JobEvent::Rejected { reason }) => {
                    let e = SpecError::Rejected(reason);
                    self.terminal = Some(Err(e.clone()));
                    return Some(Err(e));
                }
                Ok(JobEvent::Cancelled) => {
                    self.terminal = Some(Err(SpecError::Cancelled));
                    return Some(Err(SpecError::Cancelled));
                }
                Ok(_) => continue,
                Err(mpsc::TryRecvError::Empty) => return None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    let e = SpecError::ServiceStopped;
                    self.terminal = Some(Err(e.clone()));
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Blocking iterator over one job's [`JobEvent`]s (from
/// [`JobHandle::events`]); ends after the terminal event.
#[derive(Debug)]
pub struct JobEvents {
    /// A terminal event already observed through `try_wait`.
    buffered: Option<JobEvent>,
    rx: mpsc::Receiver<JobEvent>,
    done: bool,
    /// Keeps the abandon-on-drop semantics alive while iterating.
    _guard: AbandonGuard,
}

impl Iterator for JobEvents {
    type Item = JobEvent;

    fn next(&mut self) -> Option<JobEvent> {
        if self.done {
            return None;
        }
        if let Some(event) = self.buffered.take() {
            self.done = event.is_terminal();
            return Some(event);
        }
        match self.rx.recv() {
            Ok(event) => {
                self.done = event.is_terminal();
                Some(event)
            }
            Err(mpsc::RecvError) => {
                // Channel gone without a terminal event: the job never
                // ran (service dropped / worker died).
                self.done = true;
                Some(JobEvent::Failed(SpecError::ServiceStopped))
            }
        }
    }
}

/// All member jobs of one submitted sweep line (from
/// [`Service::submit_sweep`]), in expansion order.
#[must_use = "a submitted sweep's results arrive through its handle"]
#[derive(Debug)]
pub struct SweepHandle {
    spec: String,
    members: Vec<JobHandle>,
}

impl SweepHandle {
    /// The canonical form of the submitted sweep line.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Number of member jobs.
    pub fn jobs(&self) -> usize {
        self.members.len()
    }

    /// The member handles, in expansion order — for callers that want
    /// the raw event streams instead of the aggregate.
    pub fn into_members(self) -> Vec<JobHandle> {
        self.members
    }

    /// Blocks until every member finishes and aggregates the results.
    ///
    /// # Errors
    /// The first failing member's error, in expansion order (members
    /// after it still run to completion — they share the service pool).
    pub fn wait(self) -> Result<SweepResult, SpecError> {
        let mut results = Vec::with_capacity(self.members.len());
        for handle in self.members {
            results.push(handle.wait()?);
        }
        Ok(SweepResult::aggregate(self.spec, results))
    }
}

/// The worker body: dequeue, resolve the model through the cache (or
/// the whole job through the result store), run (streaming progress,
/// polling for cancellation), reply with the terminal event. Exits
/// when the queue closes (service drop). Panics inside a job
/// (parse-time validation makes them unexpected, but a bug must not
/// shrink the pool) are caught and replied as
/// [`SpecError::JobPanicked`]; the worker survives.
fn worker_loop(rx: &Mutex<mpsc::Receiver<Task>>, cache: &ModelCache, store: Option<&ResultStore>) {
    loop {
        // Hold the queue lock only for the dequeue, so workers run
        // jobs concurrently.
        let task = match rx.lock().expect("queue lock").recv() {
            Ok(task) => task,
            Err(mpsc::RecvError) => return,
        };
        let Task { spec, emit, ctl } = task;
        // Abandoned while queued (every handle dropped): skip without
        // emitting — nobody is listening, and the slot already freed.
        if !ctl.take_for_run() {
            continue;
        }
        // Cancelled while queued: terminal without starting.
        if ctl.is_cancelled() {
            ctl.mark_done();
            emit(JobEvent::Cancelled);
            continue;
        }
        emit(JobEvent::Started);
        // The canonical spec string is the result-store key (parse ∘
        // print = id); a hit replays the stored result bit-identically
        // and skips the run entirely.
        let canonical = spec.to_string();
        if let Some(stored) = store.and_then(|s| s.get(&canonical)) {
            ctl.mark_done();
            emit(JobEvent::Finished(stored));
            continue;
        }
        let key = spec.model_key();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cached = cache.lock().expect("cache lock").get(&key);
            let model = match cached {
                Some(model) => model,
                None => {
                    // Built outside the lock: a slow build must not
                    // stall the whole pool. Racing builds are
                    // bit-identical (deterministic), so last-in wins
                    // harmlessly.
                    let model = spec.build_model();
                    cache
                        .lock()
                        .expect("cache lock")
                        .insert(key.clone(), model.clone());
                    model
                }
            };
            // An abandoned sink just swallows progress; fine.
            //
            // Throttled: a fast round loop can tick thousands of times
            // a second, and each `Progress` is a clone + (over the
            // wire) a framed line — so ticks inside the minimum
            // interval are dropped. The first tick and every
            // completion tick (`round == of`) always ship, keeping the
            // stream's "ends complete" shape intact.
            //
            // Each tick also polls the cancel token — the sink points
            // are the preemption points, so a cancel lands within one
            // progress interval without the engine loops ever checking
            // a flag themselves.
            let mut last_emit: Option<std::time::Instant> = None;
            spec.run_on_streamed(
                &model,
                &mut |round, of| {
                    if ctl.is_cancelled() {
                        return std::ops::ControlFlow::Break(());
                    }
                    let now = std::time::Instant::now();
                    let due =
                        last_emit.is_none_or(|at| now.duration_since(at) >= PROGRESS_MIN_INTERVAL);
                    if due || round == of {
                        last_emit = Some(now);
                        emit(JobEvent::Progress { round, of });
                    }
                    std::ops::ControlFlow::Continue(())
                },
                // State deliveries are never throttled — their pacing
                // (`every`) is part of the spec, so the `State` event
                // sequence stays deterministic across codecs and runs.
                &mut |round, blob| {
                    if ctl.is_cancelled() {
                        return std::ops::ControlFlow::Break(());
                    }
                    emit(JobEvent::State { round, blob });
                    std::ops::ControlFlow::Continue(())
                },
            )
        }));
        let result = outcome.unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SpecError::JobPanicked { message })
        });
        // A cancel that raced the finish still terminates `Cancelled`:
        // the preempted value may be partial, so it must not escape
        // (and must not be stored).
        let terminal = if ctl.is_cancelled() {
            JobEvent::Cancelled
        } else {
            match result {
                Ok(result) => {
                    if let Some(store) = store {
                        // Write-through; an IO failure only costs the
                        // cache entry, never the answer.
                        let _ = store.put(&result);
                    }
                    JobEvent::Finished(result)
                }
                Err(e) => JobEvent::Failed(e),
            }
        };
        ctl.mark_done();
        emit(terminal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobOutput;

    fn spec(s: &str) -> JobSpec {
        s.parse().unwrap()
    }

    #[test]
    fn serves_a_job() {
        let service = Service::new(2);
        let h = service.submit(spec(
            "graph=torus:4x4 model=coloring:q=9 seed=3 job=run:rounds=40",
        ));
        let result = h.wait().unwrap();
        assert!(matches!(
            result.output,
            JobOutput::Run {
                feasible: true,
                rounds: 40,
                ..
            }
        ));
    }

    #[test]
    fn service_result_is_bit_identical_to_direct_run() {
        let service = Service::new(4);
        let s = spec("graph=cycle:16 model=coloring:q=6 seed=11 job=run:rounds=80");
        let direct = s.run().unwrap();
        let served = service.submit(s).wait().unwrap();
        assert_eq!(direct, served);
    }

    #[test]
    fn event_stream_is_ordered_and_terminates() {
        let service = Service::new(1);
        let events: Vec<JobEvent> = service
            .submit(spec(
                "graph=cycle:12 model=coloring:q=5 seed=2 job=run:rounds=64",
            ))
            .events()
            .collect();
        assert_eq!(events.first(), Some(&JobEvent::Accepted));
        assert_eq!(events.get(1), Some(&JobEvent::Started));
        let progress: Vec<(u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                JobEvent::Progress { round, of } => Some((*round, *of)),
                _ => None,
            })
            .collect();
        assert!(!progress.is_empty(), "a 64-round job reports progress");
        assert!(progress.windows(2).all(|w| w[0].0 <= w[1].0), "monotone");
        assert_eq!(progress.last().unwrap(), &(64, 64), "ends complete");
        // Exactly one terminal event, and it is last.
        let terminals = events.iter().filter(|e| e.is_terminal()).count();
        assert_eq!(terminals, 1);
        assert!(events.last().unwrap().is_terminal());
    }

    #[test]
    fn coalescence_and_tv_jobs_stream_progress() {
        let service = Service::new(2);
        for s in [
            "graph=cycle:6 model=coloring:q=8 seed=1 job=coalescence:trials=2,max-rounds=5000",
            "graph=cycle:4 model=coloring:q=3 seed=1 job=tv:rounds=16,replicas=200",
        ] {
            let events: Vec<JobEvent> = service.submit(spec(s)).events().collect();
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, JobEvent::Progress { .. })),
                "{s} streamed no progress: {events:?}"
            );
            assert!(matches!(events.last(), Some(JobEvent::Finished(_))));
        }
    }

    /// The throttle's guarantee: non-completion `Progress` emissions
    /// are spaced at least [`PROGRESS_MIN_INTERVAL`] apart, so the
    /// event count is bounded by the job's own elapsed time — no
    /// matter how many times the round loop ticks. (Coalescence ticks
    /// once per chain round, thousands of times a second.)
    #[test]
    fn progress_emission_is_rate_bounded() {
        let service = Service::new(1);
        let events: Vec<JobEvent> = service
            .submit(spec(
                "graph=cycle:6 model=coloring:q=8 seed=4 job=coalescence:trials=4,max-rounds=5000",
            ))
            .events()
            .collect();
        let progress = events
            .iter()
            .filter(|e| matches!(e, JobEvent::Progress { .. }))
            .count();
        let elapsed = events
            .iter()
            .find_map(|e| match e {
                JobEvent::Finished(r) => Some(r.elapsed_secs),
                _ => None,
            })
            .expect("job finishes");
        // First tick + one per elapsed interval + completion ticks
        // (one per trial can hit `round == of`, plus the final).
        let allowed = 1 + (elapsed / PROGRESS_MIN_INTERVAL.as_secs_f64()).ceil() as usize + 5;
        assert!(
            progress <= allowed,
            "{progress} progress events for a {elapsed:.3}s job (allowed {allowed})"
        );
    }

    #[test]
    fn try_wait_probes_without_losing_the_result() {
        let service = Service::new(1);
        let mut h = service.submit(spec("graph=cycle:8 model=coloring:q=5 job=run:rounds=30"));
        let result = loop {
            if let Some(r) = h.try_wait() {
                break r;
            }
            std::thread::yield_now();
        };
        // Probing again returns the cached terminal result.
        assert_eq!(h.try_wait(), Some(result.clone()));
        // And the event stream still ends with the same terminal.
        let last = h.events().last().unwrap();
        assert_eq!(last, JobEvent::Finished(result.unwrap()));
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let service = Service::new(3);
        let handles: Vec<_> = (0..6)
            .map(|seed| {
                service.submit(spec(&format!(
                    "graph=torus:5x5 model=coloring:q=10 seed={seed} job=run:rounds=20"
                )))
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        // Six jobs, one (graph, model): exactly one cache entry.
        assert_eq!(service.cached_models(), 1);
        let stats = service.cache_stats();
        assert_eq!(stats.hits + stats.misses, 6);
        assert!(stats.misses >= 1, "first lookup builds");
    }

    #[test]
    fn job_errors_come_back_typed() {
        let service = Service::new(1);
        let h = service.submit(spec(
            "graph=cycle:8 model=coloring:q=5 algorithm=glauber scheduler=luby",
        ));
        assert!(matches!(h.wait(), Err(SpecError::Combo(_))));
        // Parse errors surface before anything is enqueued.
        assert!(service.submit_str("graph=nope model=mis").is_err());
    }

    #[test]
    fn cache_is_bounded_and_lru_keeps_hot_models() {
        // One worker: jobs run in submission order, so the cache
        // traffic is deterministic. No result store (explicitly, so an
        // ambient LSL_RESULT_STORE cannot short-circuit repeat specs
        // past the model cache and skew the counters).
        let service = Service::with_limits(1, Limits::default());
        let hot = "graph=torus:4x4 model=coloring:q=7 job=run:rounds=2";
        service.submit(spec(hot)).wait().unwrap();
        // A churn of more distinct cold models than the cap fits,
        // touching the hot model between every few of them.
        for i in 0..MODEL_CACHE_CAP + 16 {
            service
                .submit(spec(&format!(
                    "graph=cycle:{} model=coloring:q=5 job=run:rounds=2",
                    3 + i
                )))
                .wait()
                .unwrap();
            if i % 4 == 0 {
                service.submit(spec(hot)).wait().unwrap();
            }
        }
        assert!(service.cached_models() <= MODEL_CACHE_CAP);
        let stats = service.cache_stats();
        assert!(stats.evictions > 0, "the churn must evict");
        // The hot model survived the whole churn: its lookups after
        // the first are all hits (cold specs never repeat, so every
        // hit is the hot model's).
        let hot_touches = 1 + (MODEL_CACHE_CAP + 16).div_ceil(4);
        assert_eq!(stats.hits, hot_touches as u64 - 1);
    }

    #[test]
    fn sweep_expands_and_aggregates() {
        let service = Service::new(2);
        let sweep: SweepSpec = "graph=cycle:10 model=coloring:q=5 job=run:rounds=20 seeds=0..4"
            .parse()
            .unwrap();
        let handle = service.submit_sweep(&sweep);
        assert_eq!(handle.jobs(), 4);
        let result = handle.wait().unwrap();
        assert_eq!(result.results.len(), 4);
        assert_eq!(result.summary.jobs, 4);
        // Member i is bit-identical to the independent single-seed run.
        for (i, member) in result.results.iter().enumerate() {
            let solo = spec(&format!(
                "graph=cycle:10 model=coloring:q=5 seed={i} job=run:rounds=20"
            ))
            .run()
            .unwrap();
            assert_eq!(member, &solo, "member {i} diverged from a solo run");
        }
        // run-job metric = feasibility rate: all feasible here.
        assert_eq!(result.summary.mean, 1.0);
    }

    #[test]
    fn dropping_the_service_resolves_pending_handles() {
        let service = Service::new(1);
        let h = service.submit(spec("graph=cycle:8 model=coloring:q=5 job=run:rounds=5"));
        drop(service); // drains the queue first, so this job completes
        assert!(h.wait().is_ok());
    }
}
