//! The sampling service: an owned worker pool serving [`JobSpec`]s
//! concurrently.
//!
//! The ROADMAP's north star is a system that answers *sampling queries*
//! under heavy traffic. The ownership redesign made every sampler a
//! `'static + Send` handle; this module adds the serving layer:
//!
//! * [`Service::new(threads)`](Service::new) spawns a pool of worker
//!   threads behind an in-process job queue;
//! * [`Service::submit`] enqueues a parsed [`JobSpec`] and returns a
//!   [`JobHandle`] immediately;
//! * [`JobHandle::wait`] blocks for that job's [`JobResult`].
//!
//! Workers share a **model cache** keyed by [`JobSpec::model_key`]:
//! two jobs naming the same graph × model (× graph seed, for random
//! families) reuse one built [`BuiltModel`] — the graphs are behind
//! `Arc`s, so a cache hit costs two reference-count bumps, not a
//! rebuild of a million-edge CSR structure.
//!
//! **Determinism is preserved end to end**: a job's result is a pure
//! function of its spec (every random draw is keyed by
//! `(seed, round, vertex-or-edge)`, and random graphs by the graph
//! seed), so a service answer is bit-identical to calling
//! [`JobSpec::run`] directly on the caller's thread — regardless of
//! worker count, submission order, cache state, or scheduling.
//! Property-tested in `tests/service_identity.rs`.
//!
//! # Example
//!
//! ```
//! use lsl_core::service::Service;
//! use lsl_core::spec::JobSpec;
//!
//! let service = Service::new(4);
//! let handles: Vec<_> = (0..8)
//!     .map(|seed| {
//!         let spec: JobSpec = format!(
//!             "graph=cycle:12 model=coloring:q=5 seed={seed} job=run:rounds=50"
//!         )
//!         .parse()
//!         .unwrap();
//!         service.submit(spec)
//!     })
//!     .collect();
//! for h in handles {
//!     let result = h.wait().unwrap();
//!     assert!(matches!(
//!         result.output,
//!         lsl_core::spec::JobOutput::Run { feasible: true, .. }
//!     ));
//! }
//! ```

use crate::spec::{BuiltModel, JobResult, JobSpec, SpecError};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One queued job: the spec plus the reply channel.
struct Task {
    spec: JobSpec,
    reply: mpsc::Sender<Result<JobResult, SpecError>>,
}

/// Models retained by the cache before the oldest entries are evicted
/// (FIFO). Bounds a long-lived service's memory under a stream of
/// distinct workloads; a miss after eviction just rebuilds
/// (deterministically, so answers never change).
const MODEL_CACHE_CAP: usize = 32;

/// The shared model cache: a mutexed map plus FIFO insertion order for
/// eviction. A plain mutex is deliberate: builds are deterministic, so
/// if two workers race on the same key the second insert overwrites
/// with a bit-identical model — wasted work at worst, never a wrong
/// answer.
#[derive(Default)]
struct ModelCacheInner {
    models: HashMap<String, BuiltModel>,
    order: std::collections::VecDeque<String>,
}

impl ModelCacheInner {
    fn insert(&mut self, key: String, model: BuiltModel) {
        if self.models.insert(key.clone(), model).is_none() {
            self.order.push_back(key);
        }
        while self.models.len() > MODEL_CACHE_CAP {
            let oldest = self.order.pop_front().expect("order tracks models");
            self.models.remove(&oldest);
        }
    }
}

type ModelCache = Mutex<ModelCacheInner>;

/// An owned worker-pool service executing [`JobSpec`]s concurrently.
/// See the [module docs](self) for the design and guarantees.
///
/// Dropping the service closes the queue and then **blocks joining
/// every worker until the queue drains** — jobs already submitted
/// still run to completion and their handles resolve normally. A
/// handle resolves to [`SpecError::ServiceStopped`] only if its job
/// never ran (e.g. a worker thread died).
pub struct Service {
    /// `Some` while accepting; taken (closing the queue) on drop.
    tx: Option<mpsc::Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    cache: Arc<ModelCache>,
}

impl Service {
    /// Spawns a service with `threads` workers (clamped to at least
    /// one; `0` means auto-detect, the engine's
    /// [`Backend`](crate::engine::Backend) 0-means-auto contract).
    pub fn new(threads: usize) -> Self {
        let threads = crate::engine::Backend::Parallel { threads }
            .worker_count()
            .max(1);
        let (tx, rx) = mpsc::channel::<Task>();
        // mpsc receivers are single-consumer; the pool shares one
        // behind a mutex, each worker holding it only for the dequeue.
        let rx = Arc::new(Mutex::new(rx));
        let cache: Arc<ModelCache> = Arc::new(Mutex::new(ModelCacheInner::default()));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("lsl-service-{i}"))
                    .spawn(move || worker_loop(&rx, &cache))
                    .expect("spawning a service worker")
            })
            .collect();
        Service {
            tx: Some(tx),
            workers,
            cache,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job and returns immediately. The returned handle
    /// resolves to exactly what [`JobSpec::run`] would have returned
    /// on this thread (bit-identical by the determinism contract).
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let (reply, rx) = mpsc::channel();
        let canonical = spec.to_string();
        let task = Task { spec, reply };
        let tx = self.tx.as_ref().expect("service accepts until dropped");
        // A send only fails once every worker is gone; the handle then
        // reports ServiceStopped on wait.
        let _ = tx.send(task);
        JobHandle {
            rx,
            spec: canonical,
        }
    }

    /// Parses and submits a spec line in one call.
    ///
    /// # Errors
    /// Returns the parse error immediately (nothing is enqueued).
    pub fn submit_str(&self, spec: &str) -> Result<JobHandle, SpecError> {
        Ok(self.submit(spec.parse::<JobSpec>()?))
    }

    /// Number of distinct models currently cached (bounded by a FIFO
    /// eviction cap, so long-lived services don't grow without limit).
    pub fn cached_models(&self) -> usize {
        self.cache.lock().expect("cache lock").models.len()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing the channel lets the workers drain the queue and exit.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("threads", &self.workers.len())
            .field("cached_models", &self.cached_models())
            .finish()
    }
}

/// A pending job. [`JobHandle::wait`] blocks for the result; dropping
/// the handle abandons the job (it still runs, its result is
/// discarded).
#[must_use = "a submitted job's result arrives through its handle"]
#[derive(Debug)]
pub struct JobHandle {
    rx: mpsc::Receiver<Result<JobResult, SpecError>>,
    spec: String,
}

impl JobHandle {
    /// The canonical form of the submitted spec.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Blocks until the job finishes.
    ///
    /// # Errors
    /// A [`SpecError`] from the job itself (invalid combination,
    /// unsupported job), or [`SpecError::ServiceStopped`] if the
    /// service dropped before running it.
    pub fn wait(self) -> Result<JobResult, SpecError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(mpsc::RecvError) => Err(SpecError::ServiceStopped),
        }
    }

    /// Non-blocking probe: `Some` once the job has finished.
    pub fn try_wait(&self) -> Option<Result<JobResult, SpecError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(SpecError::ServiceStopped)),
        }
    }
}

/// The worker body: dequeue, resolve the model through the cache, run,
/// reply. Exits when the queue closes (service drop). Panics inside a
/// job (parse-time validation makes them unexpected, but a bug must
/// not shrink the pool) are caught and replied as
/// [`SpecError::JobPanicked`]; the worker survives.
fn worker_loop(rx: &Mutex<mpsc::Receiver<Task>>, cache: &ModelCache) {
    loop {
        // Hold the queue lock only for the dequeue, so workers run
        // jobs concurrently.
        let task = match rx.lock().expect("queue lock").recv() {
            Ok(task) => task,
            Err(mpsc::RecvError) => return,
        };
        let key = task.spec.model_key();
        let spec = task.spec;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cached = cache.lock().expect("cache lock").models.get(&key).cloned();
            let model = match cached {
                Some(model) => model,
                None => {
                    // Built outside the lock: a slow build must not
                    // stall the whole pool. Racing builds are
                    // bit-identical (deterministic), so last-in wins
                    // harmlessly.
                    let model = spec.build_model();
                    cache
                        .lock()
                        .expect("cache lock")
                        .insert(key.clone(), model.clone());
                    model
                }
            };
            spec.run_on(&model)
        }));
        let result = outcome.unwrap_or_else(|payload| {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(SpecError::JobPanicked { message })
        });
        // The receiver may be gone (abandoned handle); ignore.
        let _ = task.reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobOutput;

    fn spec(s: &str) -> JobSpec {
        s.parse().unwrap()
    }

    #[test]
    fn serves_a_job() {
        let service = Service::new(2);
        let h = service.submit(spec(
            "graph=torus:4x4 model=coloring:q=9 seed=3 job=run:rounds=40",
        ));
        let result = h.wait().unwrap();
        assert!(matches!(
            result.output,
            JobOutput::Run {
                feasible: true,
                rounds: 40,
                ..
            }
        ));
    }

    #[test]
    fn service_result_is_bit_identical_to_direct_run() {
        let service = Service::new(4);
        let s = spec("graph=cycle:16 model=coloring:q=6 seed=11 job=run:rounds=80");
        let direct = s.run().unwrap();
        let served = service.submit(s).wait().unwrap();
        assert_eq!(direct, served);
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let service = Service::new(3);
        let handles: Vec<_> = (0..6)
            .map(|seed| {
                service.submit(spec(&format!(
                    "graph=torus:5x5 model=coloring:q=10 seed={seed} job=run:rounds=20"
                )))
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        // Six jobs, one (graph, model): exactly one cache entry.
        assert_eq!(service.cached_models(), 1);
    }

    #[test]
    fn job_errors_come_back_typed() {
        let service = Service::new(1);
        let h = service.submit(spec(
            "graph=cycle:8 model=coloring:q=5 algorithm=glauber scheduler=luby",
        ));
        assert!(matches!(h.wait(), Err(SpecError::Combo(_))));
        // Parse errors surface before anything is enqueued.
        assert!(service.submit_str("graph=nope model=mis").is_err());
    }

    #[test]
    fn cache_is_bounded_by_the_fifo_cap() {
        let service = Service::new(2);
        // More distinct models than the cap: the cache must not grow
        // past it (oldest entries evicted, answers unaffected).
        let handles: Vec<_> = (0..MODEL_CACHE_CAP + 8)
            .map(|i| {
                service.submit(spec(&format!(
                    "graph=cycle:{} model=coloring:q=5 job=run:rounds=5",
                    3 + i
                )))
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        assert!(service.cached_models() <= MODEL_CACHE_CAP);
    }

    #[test]
    fn dropping_the_service_resolves_pending_handles() {
        let service = Service::new(1);
        let h = service.submit(spec("graph=cycle:8 model=coloring:q=5 job=run:rounds=5"));
        drop(service); // drains the queue first, so this job completes
        assert!(h.wait().is_ok());
    }
}
