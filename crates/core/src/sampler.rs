//! The sampler facade: one typed front door over models × algorithms ×
//! schedulers × backends.
//!
//! The paper's pitch is that a *single* local framework covers many
//! chains — LubyGlauber under any independent-set scheduler (the Remark
//! after Theorem 3.2) and LocalMetropolis with per-edge filters — and
//! this module is that framework's entry point. A [`SamplerBuilder`]
//! composes the four orthogonal choices:
//!
//! * a **model** — an [`Mrf`] ([`Sampler::for_mrf`]) or a weighted local
//!   CSP ([`Sampler::for_csp`]);
//! * an **algorithm** — [`Algorithm`]: the paper's two distributed
//!   chains plus the sequential baselines;
//! * a **scheduler** — [`Sched`], for LubyGlauber only (typed error
//!   otherwise);
//! * an execution **backend** — [`Backend`], which by the engine's
//!   determinism contract never changes a trajectory.
//!
//! `build()` yields a [`Sampler`] (one trajectory); `.replicas(b)`
//! narrows the builder to a [`ReplicaBuilder`] whose `build()` yields a
//! [`ReplicaSampler`] (a batch advanced together — iid replicas or a
//! grand coupling). Invalid combinations are rejected with a typed
//! [`BuildError`], never a panic.
//!
//! Measurement **jobs** subsume the free-function entry points of
//! [`mixing`](crate::mixing) and [`coupling`](crate::coupling):
//! [`SamplerBuilder::tv_curve`], [`SamplerBuilder::coalescence`],
//! [`SamplerBuilder::distribution`] spawn their own replicas from the
//! validated spec. A small [`Observer`] pipeline ([`Sampler::observe`])
//! records per-round traces — energy, Hamming distance, acceptance
//! counts — without perturbing the randomness streams: observers only
//! ever see finished configurations, and every draw of round `r` is a
//! pure function of `(master, r, vertex-or-edge id)` regardless of what
//! runs between rounds.
//!
//! # Example
//!
//! ```
//! use lsl_core::prelude::*;
//! use lsl_graph::generators;
//! use lsl_mrf::models;
//!
//! let mrf = models::proper_coloring(generators::torus(8, 8), 16);
//! let mut sampler = Sampler::for_mrf(&mrf)
//!     .algorithm(Algorithm::LocalMetropolis)
//!     .backend(Backend::Parallel { threads: 0 })
//!     .seed(7)
//!     .burn_in(50)
//!     .build()
//!     .unwrap();
//! sampler.run(50);
//! assert!(mrf.is_feasible(sampler.state()));
//! ```

use crate::engine::replicas::ReplicaSet;
use crate::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule, MetropolisRule};
use crate::engine::sharded::{CommStats, ShardedChain};
use crate::engine::{Backend, HotPath, SyncChain, SyncRule};
use crate::schedule::{
    BernoulliFilterScheduler, ChromaticScheduler, LubyScheduler, SingletonScheduler,
};
use crate::Chain;
use lsl_analysis::stats::Summary;
use lsl_analysis::EmpiricalDistribution;
use lsl_local::rng::{derive_seed, Xoshiro256pp};
use lsl_mrf::csp::Csp;
use lsl_mrf::gibbs::Enumeration;
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// Label under which CSP chain steps derive their per-round generators.
const CSP_STEP_LABEL: u64 = 0x4353_5053_5445_5000; // "CSPSTEP\0"

/// Which Markov chain the sampler runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 2: simultaneous proposals filtered by shared per-edge
    /// coins (Theorem 1.2 / 4.2). On a CSP, the per-constraint variant.
    LocalMetropolis,
    /// The rule-3 ablation of LocalMetropolis (experiment E9's wrong
    /// chain — kept for ablations; MRF only).
    LocalMetropolisNoRule3,
    /// Algorithm 1: heat-bath resampling on a scheduled independent set
    /// (Theorem 1.1 / 3.2). The only algorithm that accepts a
    /// [`Sched`]; on a CSP, schedules strongly independent sets.
    LubyGlauber,
    /// Sequential baseline: single-site heat-bath Glauber dynamics.
    Glauber,
    /// Sequential baseline: single-site Metropolis (paper footnote 2).
    Metropolis,
}

impl Algorithm {
    /// Every algorithm, for exhaustive sweeps and the scenario registry.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::LocalMetropolis,
        Algorithm::LocalMetropolisNoRule3,
        Algorithm::LubyGlauber,
        Algorithm::Glauber,
        Algorithm::Metropolis,
    ];

    /// Human-readable name (matches the chain's experiment-output name).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::LocalMetropolis => "LocalMetropolis",
            Algorithm::LocalMetropolisNoRule3 => "LocalMetropolis(no rule 3)",
            Algorithm::LubyGlauber => "LubyGlauber",
            Algorithm::Glauber => "Glauber",
            Algorithm::Metropolis => "Metropolis",
        }
    }
}

/// Canonical spec-string form (kebab-case), accepted back by the
/// `FromStr` impl: `local-metropolis`,
/// `local-metropolis-no-rule3`, `luby-glauber`, `glauber`, `metropolis`.
impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Algorithm::LocalMetropolis => "local-metropolis",
            Algorithm::LocalMetropolisNoRule3 => "local-metropolis-no-rule3",
            Algorithm::LubyGlauber => "luby-glauber",
            Algorithm::Glauber => "glauber",
            Algorithm::Metropolis => "metropolis",
        };
        f.write_str(s)
    }
}

/// Parses the [`Display`](Algorithm#impl-Display-for-Algorithm) form.
impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "local-metropolis" => Ok(Algorithm::LocalMetropolis),
            "local-metropolis-no-rule3" => Ok(Algorithm::LocalMetropolisNoRule3),
            "luby-glauber" => Ok(Algorithm::LubyGlauber),
            "glauber" => Ok(Algorithm::Glauber),
            "metropolis" => Ok(Algorithm::Metropolis),
            other => Err(format!(
                "unknown algorithm {other:?} (expected local-metropolis | \
                 local-metropolis-no-rule3 | luby-glauber | glauber | metropolis)"
            )),
        }
    }
}

/// Which independent-set scheduler drives [`Algorithm::LubyGlauber`]
/// (the Remark after Theorem 3.2 allows any independent sampler with
/// `Pr[v ∈ I] ≥ γ > 0`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sched {
    /// The paper's Luby step: iid `β_v`, select local maxima (default).
    Luby,
    /// One uniform vertex per round (recovers sequential Glauber).
    Singleton,
    /// Bernoulli volunteering with conflict withdrawal; the payload is
    /// the volunteering probability `p ∈ (0, 1]`.
    Bernoulli(f64),
    /// Deterministic scan over the classes of a greedy proper coloring
    /// (the Gonzalez-et-al. baseline; not an independent sampler).
    Chromatic,
}

impl Sched {
    /// Human-readable scheduler name.
    pub fn name(self) -> &'static str {
        match self {
            Sched::Luby => "Luby",
            Sched::Singleton => "Singleton",
            Sched::Bernoulli(_) => "BernoulliFilter",
            Sched::Chromatic => "Chromatic",
        }
    }
}

/// Canonical spec-string form, accepted back by the `FromStr` impl:
/// `luby`, `singleton`, `bernoulli:<p>`, `chromatic`.
impl std::fmt::Display for Sched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sched::Luby => f.write_str("luby"),
            Sched::Singleton => f.write_str("singleton"),
            Sched::Bernoulli(p) => write!(f, "bernoulli:{p}"),
            Sched::Chromatic => f.write_str("chromatic"),
        }
    }
}

/// Parses the [`Display`](Sched#impl-Display-for-Sched) form. The
/// Bernoulli probability is range-checked at `build()`, not here, so
/// the round-trip is lossless for any finite value.
impl std::str::FromStr for Sched {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "luby" => Ok(Sched::Luby),
            "singleton" => Ok(Sched::Singleton),
            "chromatic" => Ok(Sched::Chromatic),
            other => match other.strip_prefix("bernoulli:") {
                Some(p) => p
                    .parse::<f64>()
                    .map(Sched::Bernoulli)
                    .map_err(|_| format!("bernoulli probability {p:?} is not a number")),
                None => Err(format!(
                    "unknown scheduler {other:?} (expected luby | singleton | \
                     bernoulli:<p> | chromatic)"
                )),
            },
        }
    }
}

/// Why a builder configuration was rejected. Every invalid combination
/// surfaces here as a value — the facade never panics on bad input.
#[derive(Clone, Debug, PartialEq)]
#[must_use = "a rejected configuration explains what to fix"]
pub enum BuildError {
    /// `.replicas(0)`: a replica batch needs at least one chain.
    ZeroReplicas,
    /// A scheduler was supplied for an algorithm that has none (only
    /// [`Algorithm::LubyGlauber`] is scheduled).
    SchedulerNotApplicable {
        /// The algorithm that rejected the scheduler.
        algorithm: Algorithm,
    },
    /// A Bernoulli volunteering probability outside `(0, 1]` (or NaN).
    InvalidBernoulliProbability {
        /// The rejected probability.
        p: f64,
    },
    /// An explicit start configuration of the wrong length.
    StartLength {
        /// Vertices in the model.
        expected: usize,
        /// Length of the supplied configuration.
        got: usize,
    },
    /// `.starts(..)` disagreed with the declared replica count.
    StartCount {
        /// The declared replica count.
        expected: usize,
        /// Number of supplied starts.
        got: usize,
    },
    /// The model has no vertices.
    EmptyModel,
    /// CSP solution spaces are constrained; the caller must supply a
    /// feasible start explicitly (there is no safe default).
    StartRequiredForCsp,
    /// The requested feature is not available on a CSP model.
    UnsupportedOnCsp {
        /// What was requested (e.g. an algorithm or job name).
        what: &'static str,
    },
    /// An explicit hot-path packing that cannot hold the model's spins.
    InvalidHotPath {
        /// What was wrong (e.g. `"packing bit cannot hold q = 5 spins"`).
        reason: String,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::ZeroReplicas => write!(f, "replica batches need at least one replica"),
            BuildError::SchedulerNotApplicable { algorithm } => write!(
                f,
                "{} takes no scheduler (only LubyGlauber is scheduled)",
                algorithm.name()
            ),
            BuildError::InvalidBernoulliProbability { p } => {
                write!(f, "Bernoulli volunteering probability {p} not in (0, 1]")
            }
            BuildError::StartLength { expected, got } => {
                write!(
                    f,
                    "start configuration has length {got}, model has {expected} vertices"
                )
            }
            BuildError::StartCount { expected, got } => {
                write!(f, "{got} starts supplied for {expected} replicas")
            }
            BuildError::EmptyModel => write!(f, "the model has no vertices"),
            BuildError::StartRequiredForCsp => {
                write!(
                    f,
                    "CSP samplers need an explicit feasible start (use .start(..))"
                )
            }
            BuildError::UnsupportedOnCsp { what } => {
                write!(f, "{what} is not supported on CSP models")
            }
            BuildError::InvalidHotPath { reason } => {
                write!(f, "invalid hot path: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Constructs the rule named by `(algorithm, scheduler)` and hands it to
/// the body — the single place where the algorithm/scheduler matrix is
/// monomorphized. `$mrf` is needed for the chromatic scheduler's greedy
/// coloring. Callers validate first, so the Bernoulli probability is
/// known to be in range before the scheduler constructor (which would
/// panic) runs.
macro_rules! dispatch_rule {
    ($alg:expr, $sched:expr, $mrf:expr, |$rule:ident| $body:expr) => {{
        match ($alg, $sched.unwrap_or(Sched::Luby)) {
            (Algorithm::LocalMetropolis, _) => {
                let $rule = LocalMetropolisRule::new();
                $body
            }
            (Algorithm::LocalMetropolisNoRule3, _) => {
                let $rule = LocalMetropolisRule::without_rule3();
                $body
            }
            (Algorithm::LubyGlauber, Sched::Luby) => {
                let $rule = LubyGlauberRule::luby();
                $body
            }
            (Algorithm::LubyGlauber, Sched::Singleton) => {
                let $rule = LubyGlauberRule::with_scheduler(SingletonScheduler);
                $body
            }
            (Algorithm::LubyGlauber, Sched::Bernoulli(p)) => {
                let $rule = LubyGlauberRule::with_scheduler(BernoulliFilterScheduler::new(p));
                $body
            }
            (Algorithm::LubyGlauber, Sched::Chromatic) => {
                let $rule =
                    LubyGlauberRule::with_scheduler(ChromaticScheduler::greedy($mrf.graph()));
                $body
            }
            (Algorithm::Glauber, _) => {
                let $rule = GlauberRule;
                $body
            }
            (Algorithm::Metropolis, _) => {
                let $rule = MetropolisRule;
                $body
            }
        }
    }};
}

// The cluster layer monomorphizes its shard runners over the same
// matrix (`crate::cluster` — worker and coordinator both re-derive the
// rule from the spec line).
pub(crate) use dispatch_rule;

/// The model a builder targets — *owned* behind an [`Arc`], so built
/// samplers are `'static + Send` handles (the ownership redesign that
/// lets a [`Service`](crate::service::Service) hold and serve them
/// from worker threads).
#[derive(Clone, Debug)]
enum Model {
    Mrf(Arc<Mrf>),
    Csp(Arc<Csp>),
}

impl Model {
    fn num_vertices(&self) -> usize {
        match self {
            Model::Mrf(m) => m.num_vertices(),
            Model::Csp(c) => c.graph().num_vertices(),
        }
    }
}

/// The one front door: a typed builder over models × algorithms ×
/// schedulers × backends. See the [module docs](self) for the design
/// and `DESIGN.md` ("The sampler facade") for the builder states.
#[derive(Clone, Debug)]
#[must_use = "a builder does nothing until .build() (or a job verb) runs it"]
pub struct SamplerBuilder {
    model: Model,
    algorithm: Algorithm,
    scheduler: Option<Sched>,
    backend: Backend,
    partitioner: lsl_graph::partition::Partitioner,
    hotpath: Option<HotPath>,
    seed: u64,
    burn_in: usize,
    start: Option<Vec<Spin>>,
}

impl SamplerBuilder {
    /// The chain to run. Default: [`Algorithm::LocalMetropolis`] on an
    /// MRF, [`Algorithm::LubyGlauber`] on a CSP.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The independent-set scheduler (LubyGlauber only; any other
    /// algorithm fails at `build()` with
    /// [`BuildError::SchedulerNotApplicable`]).
    pub fn scheduler(mut self, scheduler: Sched) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// The execution backend. Trajectories are backend-independent by
    /// the engine's determinism contract; CSP chains are sequential and
    /// ignore this.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The graph partitioner used when the backend is
    /// [`Backend::Sharded`] (default:
    /// [`Partitioner::Contiguous`](lsl_graph::partition::Partitioner::Contiguous)).
    /// Trajectories are partition-independent by the determinism
    /// contract — this only changes the cut, and with it the boundary
    /// communication volume. Ignored by the flat backends and by
    /// replica batches (whose state is one flat arena by design).
    pub fn partitioner(mut self, partitioner: lsl_graph::partition::Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// The hot-path selection for the engine's synchronous rounds
    /// (default: the engine default, [`HotPath::default`] — lane-batched
    /// kernels at auto packing). Trajectories are hot-path-independent:
    /// kernels are bit-identical to [`HotPath::Scalar`]. The sharded
    /// executor and CSP chains always run the scalar phases and ignore
    /// this.
    pub fn hotpath(mut self, hotpath: HotPath) -> Self {
        self.hotpath = Some(hotpath);
        self
    }

    /// The master seed. Every draw of round `r` is a pure function of
    /// `(seed, r, vertex-or-edge id)`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Rounds to run at `build()` before handing the sampler over.
    pub fn burn_in(mut self, rounds: usize) -> Self {
        self.burn_in = rounds;
        self
    }

    /// An explicit start configuration (default: the deterministic
    /// default start; CSPs have no default and require this).
    pub fn start(mut self, start: Vec<Spin>) -> Self {
        self.start = Some(start);
        self
    }

    /// Narrows to a replica batch of `count` chains (iid by default;
    /// see [`ReplicaBuilder::coupled`] for grand couplings).
    pub fn replicas(self, count: usize) -> ReplicaBuilder {
        ReplicaBuilder {
            base: self,
            count,
            coupled: false,
            starts: None,
        }
    }

    /// Validates the (algorithm, scheduler, start) combination.
    /// `pub(crate)` so the cluster layer can pre-flight a spec before
    /// monomorphizing a shard runner for it.
    pub(crate) fn validate(&self) -> Result<(), BuildError> {
        if self.model.num_vertices() == 0 {
            return Err(BuildError::EmptyModel);
        }
        if let Some(sched) = self.scheduler {
            if self.algorithm != Algorithm::LubyGlauber {
                return Err(BuildError::SchedulerNotApplicable {
                    algorithm: self.algorithm,
                });
            }
            if let Sched::Bernoulli(p) = sched {
                if !(p > 0.0 && p <= 1.0) {
                    return Err(BuildError::InvalidBernoulliProbability { p });
                }
            }
        }
        if let Some(start) = &self.start {
            let n = self.model.num_vertices();
            if start.len() != n {
                return Err(BuildError::StartLength {
                    expected: n,
                    got: start.len(),
                });
            }
        }
        if let Model::Csp(_) = self.model {
            match self.algorithm {
                Algorithm::LubyGlauber | Algorithm::LocalMetropolis => {}
                other => return Err(BuildError::UnsupportedOnCsp { what: other.name() }),
            }
            if self.start.is_none() {
                return Err(BuildError::StartRequiredForCsp);
            }
        }
        if let (Model::Mrf(mrf), Some(hp)) = (&self.model, self.hotpath) {
            hp.validate_for(mrf.q())
                .map_err(|reason| BuildError::InvalidHotPath { reason })?;
        }
        Ok(())
    }

    /// Builds the single-trajectory [`Sampler`] — a `'static + Send`
    /// handle owning its model.
    pub fn build(self) -> Result<Sampler, BuildError> {
        self.validate()?;
        let algorithm = self.algorithm;
        let backend = self.backend;
        let mut sampler = match self.model {
            Model::Mrf(mrf) => {
                let start = self.start;
                let seed = self.seed;
                let hotpath = self.hotpath;
                dispatch_rule!(self.algorithm, self.scheduler, &mrf, |rule| {
                    // The sharded backend is a different executor, not a
                    // different sweep order: owner-computes shards over a
                    // contiguous partition, exchanging boundary states.
                    // `cluster:k` built in-process is the same executor
                    // with the same partition — the distributed run (see
                    // `crate::cluster`) is bit-identical to it by the
                    // determinism contract.
                    let inner: Box<dyn DynSampler + Send> =
                        if let Backend::Sharded { .. } | Backend::Cluster { .. } = backend {
                            // min-then-max (not clamp) so a hypothetical
                            // empty model degrades instead of panicking.
                            let k = backend.worker_count().min(mrf.num_vertices()).max(1);
                            let partition = self.partitioner.partition(mrf.graph(), k);
                            let start =
                                start.unwrap_or_else(|| crate::single_site::default_start(&mrf));
                            Box::new(ShardedChain::with_state(
                                Arc::clone(&mrf),
                                rule,
                                seed,
                                start,
                                partition,
                            ))
                        } else {
                            let mut chain = wire(Arc::clone(&mrf), rule, seed, start, backend);
                            if let Some(hp) = hotpath {
                                // Validated above, so this cannot panic.
                                chain.set_hotpath(hp);
                            }
                            Box::new(chain)
                        };
                    Sampler {
                        inner,
                        mrf: Some(mrf),
                        algorithm,
                        backend,
                    }
                })
            }
            Model::Csp(csp) => {
                let start = self.start.expect("validated above");
                // The facade owns the wiring the legacy CSP constructors
                // shim to, so it may use them without the deprecation lint.
                #[allow(deprecated)]
                let inner: Box<dyn DynSampler + Send> = match self.algorithm {
                    Algorithm::LubyGlauber => {
                        match self.scheduler.unwrap_or(Sched::Luby) {
                            Sched::Luby => Box::new(KeyedLegacy::new(
                                crate::luby_glauber::CspLubyGlauber::with_scheduler(
                                    Arc::clone(&csp),
                                    start,
                                    LubyScheduler::new(),
                                ),
                                self.seed,
                            )),
                            Sched::Singleton => Box::new(KeyedLegacy::new(
                                crate::luby_glauber::CspLubyGlauber::with_scheduler(
                                    Arc::clone(&csp),
                                    start,
                                    SingletonScheduler,
                                ),
                                self.seed,
                            )),
                            Sched::Bernoulli(p) => Box::new(KeyedLegacy::new(
                                crate::luby_glauber::CspLubyGlauber::with_scheduler(
                                    Arc::clone(&csp),
                                    start,
                                    BernoulliFilterScheduler::new(p),
                                ),
                                self.seed,
                            )),
                            Sched::Chromatic => Box::new(KeyedLegacy::new(
                                crate::luby_glauber::CspLubyGlauber::with_scheduler(
                                    Arc::clone(&csp),
                                    start,
                                    ChromaticScheduler::greedy(
                                        // Schedule on the primal graph of the
                                        // scope hypergraph, as the chain does.
                                        &csp.scope_hypergraph().primal_graph(),
                                    ),
                                ),
                                self.seed,
                            )),
                        }
                    }
                    Algorithm::LocalMetropolis => Box::new(KeyedLegacy::new(
                        crate::csp_metropolis::CspLocalMetropolis::new(Arc::clone(&csp), start),
                        self.seed,
                    )),
                    _ => unreachable!("validated above"),
                };
                Sampler {
                    inner,
                    mrf: None,
                    algorithm,
                    backend,
                }
            }
        };
        sampler.run(self.burn_in);
        Ok(sampler)
    }

    // ----- job verbs ------------------------------------------------
    //
    // Jobs spawn their own replicas from the validated spec and run
    // through the batched step-engine entry points. They are the typed
    // successors of the deprecated free functions in `mixing`. Replicas
    // start from `.start(..)` when given (important for models whose
    // default start is unsafe, e.g. list colorings) and the
    // deterministic default start otherwise; `.burn_in(..)` configures
    // *built* samplers, not distribution-versus-time measurements.

    /// Requires an MRF model (jobs run through the batched engine).
    fn require_mrf(&self, what: &'static str) -> Result<&Arc<Mrf>, BuildError> {
        self.validate()?;
        match &self.model {
            Model::Mrf(mrf) => Ok(mrf),
            Model::Csp(_) => Err(BuildError::UnsupportedOnCsp { what }),
        }
    }

    /// The replica start of the measurement jobs: `.start(..)` if
    /// given, else the deterministic default start.
    fn job_start(&self, mrf: &Mrf) -> Vec<Spin> {
        self.start
            .clone()
            .unwrap_or_else(|| crate::single_site::default_start(mrf))
    }

    /// The empirical distribution of final configurations over
    /// `replicas` iid copies run for `steps` rounds (batched).
    pub fn distribution(
        &self,
        steps: usize,
        replicas: usize,
    ) -> Result<EmpiricalDistribution, BuildError> {
        self.distribution_observed(steps, replicas, &mut |_, _| {
            std::ops::ControlFlow::Continue(())
        })
    }

    /// [`SamplerBuilder::distribution`] reporting progress through
    /// `progress` (see [`ProgressSink`](crate::mixing::ProgressSink)) —
    /// what a [`Service`](crate::service::Service) worker runs so
    /// long jobs stream `Progress` events. The sink never changes the
    /// answer (batching and seeds are identical).
    pub fn distribution_observed(
        &self,
        steps: usize,
        replicas: usize,
        progress: crate::mixing::ProgressSink<'_>,
    ) -> Result<EmpiricalDistribution, BuildError> {
        let mrf = self.require_mrf("the distribution job")?;
        let seed = self.seed;
        let start = self.job_start(mrf);
        Ok(dispatch_rule!(
            self.algorithm,
            self.scheduler,
            mrf,
            |rule| {
                crate::mixing::empirical_distribution_batched_observed(
                    mrf, &rule, &start, steps, replicas, seed, progress,
                )
            }
        ))
    }

    /// Empirical total-variation distance to the exact Gibbs
    /// distribution after `steps` rounds, over `replicas` iid copies.
    pub fn tv(
        &self,
        exact: &Enumeration,
        steps: usize,
        replicas: usize,
    ) -> Result<f64, BuildError> {
        self.tv_observed(exact, steps, replicas, &mut |_, _| {
            std::ops::ControlFlow::Continue(())
        })
    }

    /// [`SamplerBuilder::tv`] reporting progress through `progress`
    /// (the replica rounds dominate; the final TV comparison is one
    /// pass over the support). The sink never changes the answer.
    pub fn tv_observed(
        &self,
        exact: &Enumeration,
        steps: usize,
        replicas: usize,
        progress: crate::mixing::ProgressSink<'_>,
    ) -> Result<f64, BuildError> {
        let emp = self.distribution_observed(steps, replicas, progress)?;
        Ok(emp.tv_against_dense(&exact.distribution()))
    }

    /// The empirical TV curve at a ladder of step counts (fresh
    /// replicas per rung, so points are independent).
    pub fn tv_curve(
        &self,
        exact: &Enumeration,
        step_ladder: &[usize],
        replicas: usize,
    ) -> Result<Vec<(usize, f64)>, BuildError> {
        let mrf = self.require_mrf("the tv_curve job")?;
        let seed = self.seed;
        let start = self.job_start(mrf);
        Ok(dispatch_rule!(
            self.algorithm,
            self.scheduler,
            mrf,
            |rule| {
                step_ladder
                    .iter()
                    .map(|&steps| {
                        let emp = crate::mixing::empirical_distribution_batched_from(
                            mrf,
                            &rule,
                            &start,
                            steps,
                            replicas,
                            // Per-rung seed derivation matches
                            // `empirical_tv_curve_batched` exactly.
                            seed ^ steps as u64,
                        );
                        (steps, emp.tv_against_dense(&exact.distribution()))
                    })
                    .collect()
            }
        ))
    }

    /// Grand-coupling coalescence rounds from adversarial starts: the
    /// experimental surrogate for τ(ε) (coupling lemma). Runs `trials`
    /// independent couplings as coupled replica batches.
    pub fn coalescence(
        &self,
        trials: usize,
        max_steps: usize,
    ) -> Result<CoalescenceReport, BuildError> {
        self.coalescence_observed(trials, max_steps, &mut |_, _| {
            std::ops::ControlFlow::Continue(())
        })
    }

    /// [`SamplerBuilder::coalescence`] reporting progress through
    /// `progress` with `(trial-rounds done, trials × max_steps)` — the
    /// hook behind the service's `Progress` events on long couplings.
    /// The sink never changes the measurement.
    pub fn coalescence_observed(
        &self,
        trials: usize,
        max_steps: usize,
        progress: crate::mixing::ProgressSink<'_>,
    ) -> Result<CoalescenceReport, BuildError> {
        let mrf = self.require_mrf("the coalescence job")?;
        let seed = self.seed;
        let (summary, timeouts) = dispatch_rule!(self.algorithm, self.scheduler, mrf, |rule| {
            crate::mixing::coalescence_summary_batched_observed(
                mrf, &rule, trials, max_steps, seed, progress,
            )
        });
        Ok(CoalescenceReport { summary, timeouts })
    }
}

/// Result of a [`SamplerBuilder::coalescence`] job.
#[derive(Clone, Copy, Debug)]
#[must_use = "a coalescence measurement is only useful if inspected"]
pub struct CoalescenceReport {
    /// Summary statistics of the observed coalescence rounds
    /// (timed-out trials are omitted).
    pub summary: Summary,
    /// Number of trials that exhausted the step budget.
    pub timeouts: usize,
}

/// Builder state for a replica batch (entered via
/// [`SamplerBuilder::replicas`]).
#[derive(Clone, Debug)]
#[must_use = "a builder does nothing until .build()"]
pub struct ReplicaBuilder {
    base: SamplerBuilder,
    count: usize,
    coupled: bool,
    starts: Option<Vec<Vec<Spin>>>,
}

impl ReplicaBuilder {
    /// Couples all replicas on one master seed: the grand coupling of
    /// the coupling lemma (identical randomness every round). Default is
    /// iid replicas under per-replica derived seeds.
    pub fn coupled(mut self) -> Self {
        self.coupled = true;
        self
    }

    /// Explicit per-replica starts (length must equal the replica
    /// count). Default: every replica starts from the base builder's
    /// start (or the deterministic default start).
    pub fn starts(mut self, starts: Vec<Vec<Spin>>) -> Self {
        self.starts = Some(starts);
        self
    }

    /// Builds the [`ReplicaSampler`] — a `'static + Send` handle
    /// owning its model.
    pub fn build(self) -> Result<ReplicaSampler, BuildError> {
        self.base.validate()?;
        if self.count == 0 {
            return Err(BuildError::ZeroReplicas);
        }
        let mrf = match self.base.model {
            Model::Mrf(ref mrf) => Arc::clone(mrf),
            Model::Csp(_) => {
                return Err(BuildError::UnsupportedOnCsp {
                    what: "replica batching",
                })
            }
        };
        let n = mrf.num_vertices();
        // Per-replica starts are validated here; the single-base case
        // keeps just one configuration and hands out references (a large
        // iid fleet must not materialize `count` copies of the start).
        let explicit: Option<Vec<Vec<Spin>>> = match self.starts {
            Some(starts) => {
                if starts.len() != self.count {
                    return Err(BuildError::StartCount {
                        expected: self.count,
                        got: starts.len(),
                    });
                }
                for s in &starts {
                    if s.len() != n {
                        return Err(BuildError::StartLength {
                            expected: n,
                            got: s.len(),
                        });
                    }
                }
                Some(starts)
            }
            None => None,
        };
        let base: Vec<Spin> = match &explicit {
            Some(_) => Vec::new(),
            None => self
                .base
                .start
                .clone()
                .unwrap_or_else(|| crate::single_site::default_start(&mrf)),
        };
        let algorithm = self.base.algorithm;
        let backend = self.base.backend;
        let seed = self.base.seed;
        let coupled = self.coupled;
        let count = self.count;
        let mut set = dispatch_rule!(self.base.algorithm, self.base.scheduler, &mrf, |rule| {
            let set: Box<dyn DynReplicas + Send> = if coupled {
                // Coupled batches are small (grand couplings over a
                // handful of adversarial starts); owned copies are fine.
                let owned = explicit.unwrap_or_else(|| vec![base; count]);
                Box::new(ReplicaSet::coupled(Arc::clone(&mrf), rule, &owned, seed))
            } else {
                let refs: Vec<&[Spin]> = match &explicit {
                    Some(starts) => starts.iter().map(|s| &s[..]).collect(),
                    None => (0..count).map(|_| &base[..]).collect(),
                };
                Box::new(ReplicaSet::independent_from(
                    Arc::clone(&mrf),
                    rule,
                    &refs,
                    seed,
                ))
            };
            set
        });
        set.set_backend(backend);
        if let Some(hp) = self.base.hotpath {
            // Validated above, so this cannot panic.
            set.set_hotpath(hp);
        }
        let mut sampler = ReplicaSampler {
            inner: set,
            algorithm,
            backend,
        };
        sampler.run(self.base.burn_in);
        Ok(sampler)
    }
}

/// The shared wiring every MRF chain construction goes through — the
/// builder's `build()` and the deprecated legacy constructors both end
/// up here, so there is exactly one place that turns (model, rule, seed,
/// start, backend) into a running engine chain.
pub(crate) fn wire<R: SyncRule>(
    mrf: impl Into<Arc<Mrf>>,
    rule: R,
    seed: u64,
    start: Option<Vec<Spin>>,
    backend: Backend,
) -> SyncChain<R> {
    let mrf = mrf.into();
    let start = start.unwrap_or_else(|| crate::single_site::default_start(&mrf));
    let mut chain = SyncChain::with_state(mrf, rule, seed, start);
    chain.set_backend(backend);
    chain
}

// ---------------------------------------------------------------------
// Type erasure: one Sampler type over every (rule, scheduler) combo.
// ---------------------------------------------------------------------

/// Object-safe surface of a single chain (implemented by every
/// `SyncChain<R>` and by keyed legacy `Chain`s for CSP models).
trait DynSampler {
    fn step(&mut self);
    fn step_keyed(&mut self, master: u64);
    fn state(&self) -> &[Spin];
    fn set_state(&mut self, state: &[Spin]);
    fn round(&self) -> u64;
    fn name(&self) -> &'static str;
    /// Boundary-communication record; only the sharded executor has one.
    fn comm(&self) -> Option<&CommStats> {
        None
    }
    /// Clears the boundary-communication record (no-op elsewhere).
    fn reset_comm(&mut self) {}
}

impl<R: SyncRule> DynSampler for ShardedChain<R> {
    fn step(&mut self) {
        ShardedChain::step(self);
    }
    fn step_keyed(&mut self, master: u64) {
        ShardedChain::step_keyed(self, master);
    }
    fn state(&self) -> &[Spin] {
        ShardedChain::state(self)
    }
    fn set_state(&mut self, state: &[Spin]) {
        ShardedChain::set_state(self, state);
    }
    fn round(&self) -> u64 {
        ShardedChain::round(self)
    }
    fn name(&self) -> &'static str {
        self.rule().name()
    }
    fn comm(&self) -> Option<&CommStats> {
        Some(ShardedChain::comm(self))
    }
    fn reset_comm(&mut self) {
        ShardedChain::reset_comm(self);
    }
}

impl<R: SyncRule> DynSampler for SyncChain<R> {
    fn step(&mut self) {
        SyncChain::step(self);
    }
    fn step_keyed(&mut self, master: u64) {
        SyncChain::step_keyed(self, master);
    }
    fn state(&self) -> &[Spin] {
        SyncChain::state(self)
    }
    fn set_state(&mut self, state: &[Spin]) {
        SyncChain::set_state(self, state);
    }
    fn round(&self) -> u64 {
        SyncChain::round(self)
    }
    fn name(&self) -> &'static str {
        self.rule().name()
    }
}

/// Adapts a legacy [`Chain`] (stepped by an external generator) to the
/// facade's self-keyed stepping: round `r` draws from a generator seeded
/// by `derive(master, "CSPSTEP", r)`, so the determinism contract's
/// `(master, round)` purity holds for CSP chains too.
struct KeyedLegacy<C: Chain> {
    chain: C,
    master: u64,
    round: u64,
}

impl<C: Chain> KeyedLegacy<C> {
    fn new(chain: C, master: u64) -> Self {
        KeyedLegacy {
            chain,
            master,
            round: 0,
        }
    }
}

impl<C: Chain> DynSampler for KeyedLegacy<C> {
    fn step(&mut self) {
        let key = derive_seed(self.master, CSP_STEP_LABEL, self.round);
        self.chain.step(&mut Xoshiro256pp::seed_from(key));
        self.round += 1;
    }
    fn step_keyed(&mut self, master: u64) {
        // Mix the round index into the key, matching the MRF path
        // (`SyncChain::step_keyed` derives from `(master, round)`): a
        // caller feeding a constant key still gets fresh randomness per
        // round, and coupled copies at equal rounds share every draw.
        let key = derive_seed(master, CSP_STEP_LABEL, self.round);
        self.chain.step(&mut Xoshiro256pp::seed_from(key));
        self.round += 1;
    }
    fn state(&self) -> &[Spin] {
        self.chain.state()
    }
    fn set_state(&mut self, state: &[Spin]) {
        self.chain.set_state(state);
    }
    fn round(&self) -> u64 {
        self.round
    }
    fn name(&self) -> &'static str {
        self.chain.name()
    }
}

/// One trajectory built by the facade. `step`/`run` advance self-keyed
/// rounds (pure functions of the builder's seed and the round index);
/// [`Sampler::step_keyed`] exists for grand couplings driven by external
/// randomness, exactly like the legacy `Chain` wrappers.
pub struct Sampler {
    inner: Box<dyn DynSampler + Send>,
    mrf: Option<Arc<Mrf>>,
    algorithm: Algorithm,
    backend: Backend,
}

impl Sampler {
    /// Opens a builder over an MRF model.
    ///
    /// Takes anything that converts into an owned [`Arc<Mrf>`] handle —
    /// an `Arc<Mrf>` (cheap, shared), an owned `Mrf`, or `&Mrf` (which
    /// clones into a fresh handle, mirroring how
    /// [`lsl_mrf::models`] constructors take `impl Into<Arc<Graph>>`).
    /// The built [`Sampler`] owns the model, so it is `'static + Send`:
    /// it can outlive the call site, move to a worker thread, and be
    /// served concurrently (see [`Service`](crate::service::Service)).
    pub fn for_mrf(mrf: impl Into<Arc<Mrf>>) -> SamplerBuilder {
        SamplerBuilder {
            model: Model::Mrf(mrf.into()),
            algorithm: Algorithm::LocalMetropolis,
            scheduler: None,
            backend: Backend::Sequential,
            partitioner: lsl_graph::partition::Partitioner::Contiguous,
            hotpath: None,
            seed: 0,
            burn_in: 0,
            start: None,
        }
    }

    /// Opens a builder over a weighted local CSP (LubyGlauber on
    /// strongly independent sets, or the per-constraint
    /// LocalMetropolis). CSPs require an explicit `.start(..)`. Takes
    /// `impl Into<Arc<Csp>>`, exactly like [`Sampler::for_mrf`].
    pub fn for_csp(csp: impl Into<Arc<Csp>>) -> SamplerBuilder {
        SamplerBuilder {
            model: Model::Csp(csp.into()),
            algorithm: Algorithm::LubyGlauber,
            scheduler: None,
            backend: Backend::Sequential,
            partitioner: lsl_graph::partition::Partitioner::Contiguous,
            hotpath: None,
            seed: 0,
            burn_in: 0,
            start: None,
        }
    }

    /// Advances one round (randomness keyed by the builder's seed and
    /// the round index).
    pub fn step(&mut self) {
        self.inner.step();
    }

    /// Advances one round keyed by an externally supplied master seed —
    /// feed identical keys to coupled samplers to realize a grand
    /// coupling, exactly like stepping the legacy wrappers with
    /// identically seeded generators. The round index is mixed into the
    /// key (as the legacy wrappers mix their internal round counter),
    /// so coupled partners must be at equal round counts — couple fresh
    /// builds, not one burnt-in and one not.
    pub fn step_keyed(&mut self, master: u64) {
        self.inner.step_keyed(master);
    }

    /// Advances `t` rounds.
    pub fn run(&mut self, t: usize) {
        for _ in 0..t {
            self.inner.step();
        }
    }

    /// The current configuration.
    pub fn state(&self) -> &[Spin] {
        self.inner.state()
    }

    /// Overwrites the current configuration.
    ///
    /// # Panics
    /// Panics if the length is wrong (programming error, not a
    /// configuration error — lengths are validated at build time).
    pub fn set_state(&mut self, state: &[Spin]) {
        self.inner.set_state(state);
    }

    /// Rounds executed so far (including burn-in).
    pub fn round(&self) -> u64 {
        self.inner.round()
    }

    /// The algorithm this sampler runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The execution backend in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The chain's experiment-output name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// The MRF being sampled (`None` for CSP samplers).
    pub fn mrf(&self) -> Option<&Arc<Mrf>> {
        self.mrf.as_ref()
    }

    /// Boundary-communication accounting when running on
    /// [`Backend::Sharded`] (`None` on the flat backends, whose rounds
    /// cross no shard boundaries). See [`CommStats`] for the
    /// per-round records and totals.
    pub fn comm_stats(&self) -> Option<&CommStats> {
        self.inner.comm()
    }

    /// Clears the boundary-communication record, e.g. after burn-in
    /// (no-op on the flat backends).
    pub fn reset_comm_stats(&mut self) {
        self.inner.reset_comm();
    }

    /// Advances `rounds` rounds, feeding every finished configuration to
    /// the observers. Observers see `(round, before, after)` slices only
    /// — they cannot touch the randomness streams, so observing never
    /// changes a trajectory (see DESIGN.md, "The sampler facade").
    pub fn observe(&mut self, rounds: usize, observers: &mut [&mut dyn Observer]) {
        let mut before = self.inner.state().to_vec();
        for _ in 0..rounds {
            self.inner.step();
            let round = self.inner.round() - 1;
            for obs in observers.iter_mut() {
                obs.record(round, &before, self.inner.state());
            }
            before.copy_from_slice(self.inner.state());
        }
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("algorithm", &self.algorithm)
            .field("backend", &self.backend)
            .field("round", &self.inner.round())
            .field("n", &self.inner.state().len())
            .finish()
    }
}

/// Object-safe surface of a replica batch.
trait DynReplicas {
    fn step_all(&mut self);
    fn state(&self, b: usize) -> &[Spin];
    fn count(&self) -> usize;
    fn coalesced(&self) -> bool;
    fn round(&self) -> u64;
    fn set_backend(&mut self, backend: Backend);
    fn set_hotpath(&mut self, hotpath: HotPath);
}

impl<R: SyncRule> DynReplicas for ReplicaSet<R> {
    fn step_all(&mut self) {
        ReplicaSet::step_all(self);
    }
    fn state(&self, b: usize) -> &[Spin] {
        ReplicaSet::state(self, b)
    }
    fn count(&self) -> usize {
        ReplicaSet::count(self)
    }
    fn coalesced(&self) -> bool {
        ReplicaSet::coalesced(self)
    }
    fn round(&self) -> u64 {
        ReplicaSet::round(self)
    }
    fn set_backend(&mut self, backend: Backend) {
        ReplicaSet::set_backend(self, backend);
    }
    fn set_hotpath(&mut self, hotpath: HotPath) {
        ReplicaSet::set_hotpath(self, hotpath);
    }
}

/// A batch of replicas built by the facade — iid copies (TV estimation)
/// or a grand coupling ([`ReplicaBuilder::coupled`]).
pub struct ReplicaSampler {
    inner: Box<dyn DynReplicas + Send>,
    algorithm: Algorithm,
    backend: Backend,
}

impl ReplicaSampler {
    /// Advances every replica by one round.
    pub fn step(&mut self) {
        self.inner.step_all();
    }

    /// Advances every replica by `t` rounds.
    pub fn run(&mut self, t: usize) {
        for _ in 0..t {
            self.inner.step_all();
        }
    }

    /// Replica `b`'s configuration.
    pub fn state(&self, b: usize) -> &[Spin] {
        self.inner.state(b)
    }

    /// All configurations, in replica order.
    pub fn states(&self) -> impl ExactSizeIterator<Item = &[Spin]> {
        (0..self.inner.count()).map(|b| self.inner.state(b))
    }

    /// Number of replicas.
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Whether all replicas coincide (a coupled batch has coalesced).
    pub fn coalesced(&self) -> bool {
        self.inner.coalesced()
    }

    /// Rounds executed so far (including burn-in).
    pub fn round(&self) -> u64 {
        self.inner.round()
    }

    /// The algorithm this batch runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The execution backend in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

impl std::fmt::Debug for ReplicaSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSampler")
            .field("algorithm", &self.algorithm)
            .field("backend", &self.backend)
            .field("replicas", &self.inner.count())
            .field("round", &self.inner.round())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Observers: a read-only per-round recorder pipeline.
// ---------------------------------------------------------------------

/// A per-round recorder fed by [`Sampler::observe`]. Observers receive
/// finished configurations only — by the determinism contract, round
/// `r`'s randomness is a pure function of `(master, r)`, so nothing an
/// observer does can perturb the trajectory.
pub trait Observer {
    /// Trace name for output.
    fn name(&self) -> &'static str;

    /// Called once per observed round with the configurations before
    /// and after the round.
    fn record(&mut self, round: u64, before: &[Spin], after: &[Spin]);
}

/// Records the model's log-weight (negative energy) per round.
#[derive(Debug)]
pub struct EnergyObserver<'a> {
    mrf: &'a Mrf,
    series: Vec<f64>,
}

impl<'a> EnergyObserver<'a> {
    /// An energy recorder for `mrf`.
    pub fn new(mrf: &'a Mrf) -> Self {
        EnergyObserver {
            mrf,
            series: Vec::new(),
        }
    }

    /// The recorded per-round log-weights.
    pub fn series(&self) -> &[f64] {
        &self.series
    }
}

impl Observer for EnergyObserver<'_> {
    fn name(&self) -> &'static str {
        "log_weight"
    }

    fn record(&mut self, _round: u64, _before: &[Spin], after: &[Spin]) {
        self.series.push(self.mrf.log_weight(after));
    }
}

/// Records the Hamming distance to a fixed reference configuration per
/// round (e.g. distance to a coupled partner's known trajectory, or to
/// the start).
#[derive(Clone, Debug)]
pub struct HammingObserver {
    reference: Vec<Spin>,
    series: Vec<f64>,
}

impl HammingObserver {
    /// A recorder of distances to `reference`.
    pub fn new(reference: Vec<Spin>) -> Self {
        HammingObserver {
            reference,
            series: Vec::new(),
        }
    }

    /// The recorded per-round distances.
    pub fn series(&self) -> &[f64] {
        &self.series
    }
}

impl Observer for HammingObserver {
    fn name(&self) -> &'static str {
        "hamming_to_reference"
    }

    fn record(&mut self, _round: u64, _before: &[Spin], after: &[Spin]) {
        self.series
            .push(crate::coupling::hamming(&self.reference, after) as f64);
    }
}

/// Records how many vertices changed spin per round — for
/// LocalMetropolis this counts accepted proposals, for LubyGlauber
/// effective updates on the scheduled set.
#[derive(Clone, Debug, Default)]
pub struct AcceptanceObserver {
    series: Vec<f64>,
    total: u64,
}

impl AcceptanceObserver {
    /// A fresh acceptance counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded per-round accepted-update counts.
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// Total accepted updates over all observed rounds.
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl Observer for AcceptanceObserver {
    fn name(&self) -> &'static str {
        "accepted_updates"
    }

    fn record(&mut self, _round: u64, before: &[Spin], after: &[Spin]) {
        let changed = crate::coupling::hamming(before, after);
        self.total += changed as u64;
        self.series.push(changed as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_graph::generators;
    use lsl_mrf::models;
    use std::sync::Arc;

    #[test]
    fn builder_runs_every_algorithm() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 10);
        for alg in [
            Algorithm::LocalMetropolis,
            Algorithm::LocalMetropolisNoRule3,
            Algorithm::LubyGlauber,
            Algorithm::Glauber,
            Algorithm::Metropolis,
        ] {
            let mut s = Sampler::for_mrf(&mrf)
                .algorithm(alg)
                .seed(3)
                .build()
                .unwrap();
            s.run(40);
            assert_eq!(s.state().len(), 16);
            assert_eq!(s.round(), 40);
            assert_eq!(s.algorithm(), alg);
        }
    }

    #[test]
    fn builder_runs_every_scheduler() {
        let mrf = models::proper_coloring(generators::cycle(9), 6);
        for sched in [
            Sched::Luby,
            Sched::Singleton,
            Sched::Bernoulli(0.3),
            Sched::Chromatic,
        ] {
            let mut s = Sampler::for_mrf(&mrf)
                .algorithm(Algorithm::LubyGlauber)
                .scheduler(sched)
                .seed(5)
                .build()
                .unwrap();
            s.run(60);
            assert!(mrf.is_feasible(s.state()), "{:?} left feasibility", sched);
        }
    }

    #[test]
    fn burn_in_advances_rounds() {
        let mrf = models::proper_coloring(generators::cycle(6), 4);
        let s = Sampler::for_mrf(&mrf).burn_in(25).build().unwrap();
        assert_eq!(s.round(), 25);
    }

    #[test]
    fn seeds_key_trajectories() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let build = |seed| {
            let mut s = Sampler::for_mrf(&mrf).seed(seed).build().unwrap();
            s.run(30);
            s.state().to_vec()
        };
        assert_eq!(build(7), build(7), "same seed must reproduce");
        assert_ne!(build(7), build(8), "different seeds should diverge");
    }

    #[test]
    fn replica_batch_iid_and_coupled() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 12);
        let mut iid = Sampler::for_mrf(&mrf)
            .algorithm(Algorithm::LubyGlauber)
            .seed(3)
            .replicas(4)
            .build()
            .unwrap();
        iid.run(30);
        assert_eq!(iid.count(), 4);
        assert!(!iid.coalesced(), "iid replicas should differ");

        let starts = crate::coupling::adversarial_starts(&mrf, 1, 3);
        let k = starts.len();
        let mut coupled = Sampler::for_mrf(&mrf)
            .seed(9)
            .replicas(k)
            .starts(starts)
            .coupled()
            .build()
            .unwrap();
        let mut done = false;
        for _ in 0..3000 {
            if coupled.coalesced() {
                done = true;
                break;
            }
            coupled.step();
        }
        assert!(done, "grand coupling never coalesced");
    }

    #[test]
    fn csp_sampler_stays_feasible() {
        let csp = Csp::dominating_set(Arc::new(generators::path(4)));
        let n = csp.graph().num_vertices();
        let mut s = Sampler::for_csp(&csp)
            .start(vec![1; n])
            .seed(11)
            .build()
            .unwrap();
        s.run(80);
        assert!(csp.is_feasible(s.state()));
        assert_eq!(s.name(), "CspLubyGlauber");
        assert!(s.mrf().is_none());
    }

    #[test]
    fn observers_record_without_perturbing() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let build = || Sampler::for_mrf(&mrf).seed(21).build().unwrap();

        let mut plain = build();
        plain.run(30);

        let mut observed = build();
        let mut energy = EnergyObserver::new(&mrf);
        let mut hamming = HammingObserver::new(observed.state().to_vec());
        let mut accepts = AcceptanceObserver::new();
        observed.observe(30, &mut [&mut energy, &mut hamming, &mut accepts]);

        assert_eq!(
            plain.state(),
            observed.state(),
            "observation changed the trajectory"
        );
        assert_eq!(energy.series().len(), 30);
        assert_eq!(hamming.series().len(), 30);
        assert_eq!(accepts.series().len(), 30);
        // A feasible coloring has weight 1 → log-weight 0.
        assert_eq!(*energy.series().last().unwrap(), 0.0);
        assert!(accepts.total() > 0, "no update ever accepted");
    }

    #[test]
    fn jobs_match_free_functions_bit_for_bit() {
        // The job verbs are the same computation as the batched free
        // functions — identical seeds must give identical numbers.
        let mrf = Arc::new(models::proper_coloring(generators::cycle(4), 3));
        let exact = Enumeration::new(&mrf).unwrap();
        let builder = Sampler::for_mrf(Arc::clone(&mrf))
            .algorithm(Algorithm::LubyGlauber)
            .seed(99);
        let job = builder.tv_curve(&exact, &[0, 5, 40], 2000).unwrap();
        let free = crate::mixing::empirical_tv_curve_batched(
            &mrf,
            &LubyGlauberRule::luby(),
            &exact,
            &[0, 5, 40],
            2000,
            99,
        );
        assert_eq!(job, free);

        let report = builder.coalescence(3, 50_000).unwrap();
        let (summary, timeouts) = crate::mixing::coalescence_summary_batched(
            &mrf,
            &LubyGlauberRule::luby(),
            3,
            50_000,
            99,
        );
        assert_eq!(report.timeouts, timeouts);
        assert_eq!(report.summary.mean, summary.mean);
    }

    #[test]
    fn display_messages_are_informative() {
        let e = BuildError::SchedulerNotApplicable {
            algorithm: Algorithm::Glauber,
        };
        assert!(e.to_string().contains("Glauber"));
        let e = BuildError::StartLength {
            expected: 9,
            got: 4,
        };
        assert!(e.to_string().contains('9'));
    }
}
