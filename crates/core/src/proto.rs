//! The wire protocol: a hand-rolled, line-delimited codec putting the
//! service's job protocol on a byte stream.
//!
//! Exactly like the spec grammar, every message round-trips through
//! `Display`/`FromStr` (no serde — and no framing beyond "one frame
//! per line"). A session speaks two frame alphabets:
//!
//! * [`ClientFrame`] — client → server:
//!   `submit id=<id> spec=<spec-or-sweep line>`, `cancel id=<id>`
//!   (stop every member of a submitted id), `shutdown` (ask the
//!   server to drain and exit), `ping nonce=<n>` (liveness probe),
//!   and the cluster frames `shard-init id=<id> shard=<s> of=<k>
//!   spec=<spec line>` / `shard-sync id=<id> round=<r>
//!   blob=<n/q/base64url>` (open a distributed shard session;
//!   deliver one round's halo states);
//! * [`ServerFrame`] — server → client:
//!   `submitted id=<id> jobs=<n>` (the submit ack, carrying the sweep
//!   expansion size), `event id=<id> index=<k> <event>` (one member
//!   job's [`JobEvent`]), `error [id=<id>] message=<..>` (a typed
//!   protocol error; the session stays alive), `pong nonce=<n>`, and
//!   the cluster answers `shard-sync id=<id> round=<r> blob=<..>` /
//!   `shard-done id=<id> rounds=<r> blob=<..>` (one round's boundary
//!   states; the shard's final owned states).
//!
//! [`JobEvent`] and [`JobResult`] gain `Display`/`FromStr` here — the
//! printed form **is** the wire form, and `parse ∘ print` is the
//! identity (property-tested in `tests/proto_roundtrip.rs`). Floats
//! are printed with Rust's shortest-round-trip `Display`, so results
//! survive the wire bit-identically; strings inside errors are
//! percent-escaped into single tokens ([`escape`]/[`unescape`]).
//!
//! ## Event ordering over the wire
//!
//! Frames of *different* jobs interleave arbitrarily (they race on the
//! session writer), but frames of one `(id, index)` job preserve the
//! service's stream order: `accepted`, `started`, monotone `progress`,
//! then exactly one terminal `finished`/`failed`/`cancelled` — or a
//! lone terminal `rejected <reason>` when admission refused the member
//! ([`RejectReason`]). The `submitted` ack always precedes every event
//! of its `id`.

use crate::lifecycle::RejectReason;
use crate::sampler::{Algorithm, BuildError};
use crate::service::JobEvent;
use crate::spec::{JobOutput, JobResult, SpecError};
use std::fmt;
use std::str::FromStr;

/// Why a frame failed to parse. The receiving end answers with an
/// `error` frame and keeps the session — a malformed line must never
/// tear down a connection carrying other in-flight jobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the frame.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn wire_err(message: impl Into<String>) -> WireError {
    WireError {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Token escaping
// ---------------------------------------------------------------------

/// Percent-escapes `s` into a single ASCII frame token: `%`,
/// separators (whitespace, `,`, `=`, `:`), control bytes, and every
/// non-ASCII byte become `%XX`, so the result splits cleanly on any
/// separator and survives any transport. [`unescape`] inverts exactly
/// (escaped bytes are UTF-8, reassembled on decode).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for byte in s.bytes() {
        match byte {
            b'%' | b',' | b'=' | b':' => out.push_str(&format!("%{byte:02X}")),
            // Pushing a non-ASCII byte as a `char` would Latin-1-widen
            // it (mojibake after decode); escape everything outside
            // printable ASCII instead.
            b if b.is_ascii_whitespace() || b.is_ascii_control() || !b.is_ascii() => {
                out.push_str(&format!("%{b:02X}"));
            }
            b => out.push(b as char),
        }
    }
    out
}

/// Inverts [`escape`].
///
/// # Errors
/// A [`WireError`] on a truncated or non-hex `%XX` sequence.
pub fn unescape(s: &str) -> Result<String, WireError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| wire_err(format!("truncated escape in {s:?}")))?;
            let hex = std::str::from_utf8(hex).map_err(|_| wire_err("non-ascii escape"))?;
            let byte = u8::from_str_radix(hex, 16)
                .map_err(|_| wire_err(format!("bad escape %{hex} in {s:?}")))?;
            out.push(byte);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| wire_err("escape decodes to invalid utf-8"))
}

/// Splits `key=value` with the exact expected key.
fn field<'a>(token: &'a str, key: &str) -> Result<&'a str, WireError> {
    token
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| wire_err(format!("expected {key}=.., got {token:?}")))
}

fn parse_num<T: FromStr>(token: &str, key: &str) -> Result<T, WireError> {
    field(token, key)?
        .parse::<T>()
        .map_err(|_| wire_err(format!("bad number in {token:?}")))
}

// ---------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------

/// `&'static str` fields cross the wire by value and must decode back
/// to statics; the codec only accepts the strings the crate actually
/// produces (anything else is a [`WireError`], never a leak).
fn known_static(s: &str, table: &[&'static str]) -> Result<&'static str, WireError> {
    table
        .iter()
        .find(|&&k| k == s)
        .copied()
        .ok_or_else(|| wire_err(format!("unknown static string {s:?}")))
}

/// Every `what` the facade puts into [`BuildError::UnsupportedOnCsp`].
const KNOWN_WHATS: &[&str] = &[
    "LocalMetropolis",
    "LocalMetropolis(no rule 3)",
    "LubyGlauber",
    "Glauber",
    "Metropolis",
    "the distribution job",
    "the tv_curve job",
    "the coalescence job",
    "replica batching",
];

/// Encodes a [`BuildError`] as one token (the `combo-*` family).
fn encode_build_error(e: &BuildError) -> String {
    match e {
        BuildError::ZeroReplicas => "combo-zero-replicas".into(),
        BuildError::SchedulerNotApplicable { algorithm } => {
            format!("combo-scheduler:algorithm={algorithm}")
        }
        BuildError::InvalidBernoulliProbability { p } => format!("combo-bernoulli:p={p}"),
        BuildError::StartLength { expected, got } => {
            format!("combo-start-length:expected={expected},got={got}")
        }
        BuildError::StartCount { expected, got } => {
            format!("combo-start-count:expected={expected},got={got}")
        }
        BuildError::EmptyModel => "combo-empty-model".into(),
        BuildError::StartRequiredForCsp => "combo-start-required".into(),
        BuildError::UnsupportedOnCsp { what } => {
            format!("combo-unsupported-on-csp:what={}", escape(what))
        }
        BuildError::InvalidHotPath { reason } => {
            format!("combo-invalid-hotpath:reason={}", escape(reason))
        }
    }
}

/// Splits an error token into `(kind, args)` and the args into the
/// expected `key=value` list.
fn error_args<'a>(args: &'a str, expected: &[&str]) -> Result<Vec<&'a str>, WireError> {
    let pieces: Vec<&str> = if args.is_empty() {
        Vec::new()
    } else {
        args.split(',').collect()
    };
    if pieces.len() != expected.len() {
        return Err(wire_err(format!(
            "expected arguments {expected:?}, got {args:?}"
        )));
    }
    pieces
        .iter()
        .zip(expected)
        .map(|(piece, key)| field(piece, key))
        .collect()
}

fn decode_build_error(kind: &str, args: &str) -> Result<BuildError, WireError> {
    Ok(match kind {
        "combo-zero-replicas" => BuildError::ZeroReplicas,
        "combo-scheduler" => {
            let v = error_args(args, &["algorithm"])?;
            BuildError::SchedulerNotApplicable {
                algorithm: v[0].parse::<Algorithm>().map_err(wire_err)?,
            }
        }
        "combo-bernoulli" => {
            let v = error_args(args, &["p"])?;
            BuildError::InvalidBernoulliProbability {
                p: v[0].parse().map_err(|_| wire_err("bad p"))?,
            }
        }
        "combo-start-length" => {
            let v = error_args(args, &["expected", "got"])?;
            BuildError::StartLength {
                expected: v[0].parse().map_err(|_| wire_err("bad expected"))?,
                got: v[1].parse().map_err(|_| wire_err("bad got"))?,
            }
        }
        "combo-start-count" => {
            let v = error_args(args, &["expected", "got"])?;
            BuildError::StartCount {
                expected: v[0].parse().map_err(|_| wire_err("bad expected"))?,
                got: v[1].parse().map_err(|_| wire_err("bad got"))?,
            }
        }
        "combo-empty-model" => BuildError::EmptyModel,
        "combo-start-required" => BuildError::StartRequiredForCsp,
        "combo-unsupported-on-csp" => {
            let v = error_args(args, &["what"])?;
            // Unlike the small closed `key`/`kind` vocabularies, the
            // `what` set grows with the facade; an unrecognized value
            // (a newer server) degrades to a generic static instead of
            // failing the frame — one drifted string must not cost a
            // client its whole session of results.
            let what = known_static(&unescape(v[0])?, KNOWN_WHATS)
                .unwrap_or("a job the remote end rejected");
            BuildError::UnsupportedOnCsp { what }
        }
        "combo-invalid-hotpath" => {
            let v = error_args(args, &["reason"])?;
            BuildError::InvalidHotPath {
                reason: unescape(v[0])?,
            }
        }
        other => return Err(wire_err(format!("unknown combo error {other:?}"))),
    })
}

/// Encodes a [`SpecError`] as one token; [`decode_spec_error`]
/// inverts it exactly (the typed error, not just its message, crosses
/// the wire).
#[must_use]
pub fn encode_spec_error(e: &SpecError) -> String {
    match e {
        SpecError::NotKeyValue { token } => format!("not-key-value:token={}", escape(token)),
        SpecError::UnknownKey { key } => format!("unknown-key:key={}", escape(key)),
        SpecError::DuplicateKey { key } => format!("duplicate-key:key={}", escape(key)),
        SpecError::MissingKey { key } => format!("missing-key:key={}", escape(key)),
        SpecError::UnknownScenario { kind, name } => {
            format!(
                "unknown-scenario:kind={},name={}",
                escape(kind),
                escape(name)
            )
        }
        SpecError::BadValue { key, message } => {
            format!("bad-value:key={},message={}", escape(key), escape(message))
        }
        SpecError::Combo(e) => encode_build_error(e),
        SpecError::Unsupported { message } => format!("unsupported:message={}", escape(message)),
        SpecError::JobPanicked { message } => {
            format!("job-panicked:message={}", escape(message))
        }
        SpecError::ServiceStopped => "service-stopped".into(),
        SpecError::Cancelled => "cancelled".into(),
        SpecError::Rejected(reason) => format!("rejected:{}", encode_reject_reason(reason)),
    }
}

/// Encodes a [`RejectReason`] as one token; [`decode_reject_reason`]
/// inverts it. Nested inside `rejected:` spec errors and `rejected`
/// job events.
#[must_use]
pub fn encode_reject_reason(reason: &RejectReason) -> String {
    match reason {
        RejectReason::QueueFull { cap } => format!("queue-full:cap={cap}"),
        RejectReason::SessionBusy { cap } => format!("session-busy:cap={cap}"),
        RejectReason::RoundBudget { budget, cap } => {
            format!("round-budget:budget={budget},cap={cap}")
        }
        RejectReason::Draining => "draining".into(),
    }
}

/// Inverts [`encode_reject_reason`].
///
/// # Errors
/// A [`WireError`] on an unknown kind or bad arity.
pub fn decode_reject_reason(token: &str) -> Result<RejectReason, WireError> {
    let (kind, args) = match token.split_once(':') {
        Some((k, a)) => (k, a),
        None => (token, ""),
    };
    Ok(match kind {
        "queue-full" => {
            let v = error_args(args, &["cap"])?;
            RejectReason::QueueFull {
                cap: v[0].parse().map_err(|_| wire_err("bad cap"))?,
            }
        }
        "session-busy" => {
            let v = error_args(args, &["cap"])?;
            RejectReason::SessionBusy {
                cap: v[0].parse().map_err(|_| wire_err("bad cap"))?,
            }
        }
        "round-budget" => {
            let v = error_args(args, &["budget", "cap"])?;
            RejectReason::RoundBudget {
                budget: v[0].parse().map_err(|_| wire_err("bad budget"))?,
                cap: v[1].parse().map_err(|_| wire_err("bad cap"))?,
            }
        }
        "draining" => {
            if !args.is_empty() {
                return Err(wire_err("draining takes no arguments"));
            }
            RejectReason::Draining
        }
        other => return Err(wire_err(format!("unknown reject reason {other:?}"))),
    })
}

/// Inverts [`encode_spec_error`].
///
/// # Errors
/// A [`WireError`] on an unknown kind, bad arity, or a `&'static str`
/// field whose value the crate never produces.
pub fn decode_spec_error(token: &str) -> Result<SpecError, WireError> {
    let (kind, args) = match token.split_once(':') {
        Some((k, a)) => (k, a),
        None => (token, ""),
    };
    Ok(match kind {
        "not-key-value" => {
            let v = error_args(args, &["token"])?;
            SpecError::NotKeyValue {
                token: unescape(v[0])?,
            }
        }
        "unknown-key" => {
            let v = error_args(args, &["key"])?;
            SpecError::UnknownKey {
                key: unescape(v[0])?,
            }
        }
        "duplicate-key" => {
            let v = error_args(args, &["key"])?;
            SpecError::DuplicateKey {
                key: unescape(v[0])?,
            }
        }
        "missing-key" => {
            let v = error_args(args, &["key"])?;
            SpecError::MissingKey {
                key: known_static(&unescape(v[0])?, &["graph", "model"])?,
            }
        }
        "unknown-scenario" => {
            let v = error_args(args, &["kind", "name"])?;
            SpecError::UnknownScenario {
                kind: known_static(&unescape(v[0])?, &["graph family", "model", "job"])?,
                name: unescape(v[1])?,
            }
        }
        "bad-value" => {
            let v = error_args(args, &["key", "message"])?;
            SpecError::BadValue {
                key: unescape(v[0])?,
                message: unescape(v[1])?,
            }
        }
        "unsupported" => {
            let v = error_args(args, &["message"])?;
            SpecError::Unsupported {
                message: unescape(v[0])?,
            }
        }
        "job-panicked" => {
            let v = error_args(args, &["message"])?;
            SpecError::JobPanicked {
                message: unescape(v[0])?,
            }
        }
        "service-stopped" => {
            if !args.is_empty() {
                return Err(wire_err("service-stopped takes no arguments"));
            }
            SpecError::ServiceStopped
        }
        "cancelled" => {
            if !args.is_empty() {
                return Err(wire_err("cancelled takes no arguments"));
            }
            SpecError::Cancelled
        }
        "rejected" => SpecError::Rejected(decode_reject_reason(args)?),
        _ if kind.starts_with("combo") => SpecError::Combo(decode_build_error(kind, args)?),
        other => return Err(wire_err(format!("unknown error kind {other:?}"))),
    })
}

// ---------------------------------------------------------------------
// Results on the wire
// ---------------------------------------------------------------------

/// Encodes a [`JobOutput`] as one token. Floats use shortest-round-trip
/// `Display`, so the decode is bit-identical.
fn encode_output(output: &JobOutput) -> String {
    match output {
        JobOutput::Run {
            rounds,
            n,
            feasible,
            fingerprint,
            comm,
        } => {
            let mut s = format!(
                "run:rounds={rounds},n={n},feasible={feasible},fingerprint={fingerprint:016x}"
            );
            if let Some(c) = comm {
                s.push_str(&format!(
                    ",comm={}/{}/{}/{}",
                    c.rounds_seen, c.total_messages, c.total_bytes, c.total_changed
                ));
            }
            s
        }
        JobOutput::Distribution { replicas, support } => {
            format!("distribution:replicas={replicas},support={support}")
        }
        JobOutput::Tv {
            rounds,
            replicas,
            tv,
        } => format!("tv:rounds={rounds},replicas={replicas},tv={tv}"),
        JobOutput::Coalescence {
            trials,
            mean_rounds,
            std_error,
            timeouts,
        } => format!(
            "coalescence:trials={trials},mean-rounds={mean_rounds},std-error={std_error},\
             timeouts={timeouts}"
        ),
        JobOutput::Sample { rounds, states } => {
            // The text fallback base64s each blob (`n/q/<base64url>`);
            // the alphabet is free of the separators `,` `=` `:` `;`,
            // so tokens join safely.
            let blobs: Vec<String> = states.iter().map(|b| b.to_token()).collect();
            format!("sample:rounds={rounds},states={}", blobs.join(";"))
        }
        JobOutput::Stream {
            rounds,
            every,
            n,
            states,
            fingerprint,
        } => format!(
            "stream:rounds={rounds},every={every},n={n},states={states},\
             fingerprint={fingerprint:016x}"
        ),
    }
}

fn decode_output(token: &str) -> Result<JobOutput, WireError> {
    let (kind, args) = token
        .split_once(':')
        .ok_or_else(|| wire_err(format!("expected kind:args output, got {token:?}")))?;
    let pieces: Vec<&str> = args.split(',').collect();
    match kind {
        "run" => {
            if pieces.len() != 4 && pieces.len() != 5 {
                return Err(wire_err(format!("run output has 4-5 fields: {token:?}")));
            }
            let fingerprint = field(pieces[3], "fingerprint")?;
            let comm = match pieces.get(4) {
                None => None,
                Some(piece) => {
                    let parts: Vec<&str> = field(piece, "comm")?.split('/').collect();
                    if parts.len() != 4 {
                        return Err(wire_err(format!("comm has 4 fields: {piece:?}")));
                    }
                    let num = |s: &str| -> Result<u64, WireError> {
                        s.parse()
                            .map_err(|_| wire_err(format!("bad comm count {s:?}")))
                    };
                    Some(crate::spec::CommSummary {
                        rounds_seen: num(parts[0])?,
                        total_messages: num(parts[1])?,
                        total_bytes: num(parts[2])?,
                        total_changed: num(parts[3])?,
                    })
                }
            };
            Ok(JobOutput::Run {
                rounds: parse_num(pieces[0], "rounds")?,
                n: parse_num(pieces[1], "n")?,
                feasible: parse_num(pieces[2], "feasible")?,
                fingerprint: u64::from_str_radix(fingerprint, 16)
                    .map_err(|_| wire_err(format!("bad fingerprint {fingerprint:?}")))?,
                comm,
            })
        }
        "distribution" => {
            if pieces.len() != 2 {
                return Err(wire_err(format!("distribution has 2 fields: {token:?}")));
            }
            Ok(JobOutput::Distribution {
                replicas: parse_num(pieces[0], "replicas")?,
                support: parse_num(pieces[1], "support")?,
            })
        }
        "tv" => {
            if pieces.len() != 3 {
                return Err(wire_err(format!("tv has 3 fields: {token:?}")));
            }
            Ok(JobOutput::Tv {
                rounds: parse_num(pieces[0], "rounds")?,
                replicas: parse_num(pieces[1], "replicas")?,
                tv: parse_num(pieces[2], "tv")?,
            })
        }
        "coalescence" => {
            if pieces.len() != 4 {
                return Err(wire_err(format!("coalescence has 4 fields: {token:?}")));
            }
            Ok(JobOutput::Coalescence {
                trials: parse_num(pieces[0], "trials")?,
                mean_rounds: parse_num(pieces[1], "mean-rounds")?,
                std_error: parse_num(pieces[2], "std-error")?,
                timeouts: parse_num(pieces[3], "timeouts")?,
            })
        }
        "sample" => {
            if pieces.len() != 2 {
                return Err(wire_err(format!("sample has 2 fields: {token:?}")));
            }
            let blobs = field(pieces[1], "states")?;
            let states = blobs
                .split(';')
                .filter(|t| !t.is_empty())
                .map(|t| {
                    t.parse::<crate::codec::StateBlob>()
                        .map_err(|e| wire_err(e.to_string()))
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(JobOutput::Sample {
                rounds: parse_num(pieces[0], "rounds")?,
                states,
            })
        }
        "stream" => {
            if pieces.len() != 5 {
                return Err(wire_err(format!("stream has 5 fields: {token:?}")));
            }
            let fingerprint = field(pieces[4], "fingerprint")?;
            Ok(JobOutput::Stream {
                rounds: parse_num(pieces[0], "rounds")?,
                every: parse_num(pieces[1], "every")?,
                n: parse_num(pieces[2], "n")?,
                states: parse_num(pieces[3], "states")?,
                fingerprint: u64::from_str_radix(fingerprint, 16)
                    .map_err(|_| wire_err(format!("bad fingerprint {fingerprint:?}")))?,
            })
        }
        other => Err(wire_err(format!("unknown output kind {other:?}"))),
    }
}

/// The wire form: `elapsed=<secs> output=<output> spec=<canonical spec
/// line>`. The spec comes last and runs to the end of the line (it
/// contains spaces).
impl fmt::Display for JobResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "elapsed={} output={} spec={}",
            self.elapsed_secs,
            encode_output(&self.output),
            self.spec
        )
    }
}

impl FromStr for JobResult {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (elapsed, rest) = s
            .split_once(' ')
            .ok_or_else(|| wire_err(format!("result needs 3 fields: {s:?}")))?;
        let (output, rest) = rest
            .split_once(' ')
            .ok_or_else(|| wire_err(format!("result needs 3 fields: {s:?}")))?;
        Ok(JobResult {
            elapsed_secs: parse_num(elapsed, "elapsed")?,
            output: decode_output(field(output, "output")?)?,
            spec: field(rest, "spec")?.to_string(),
        })
    }
}

// ---------------------------------------------------------------------
// Events on the wire
// ---------------------------------------------------------------------

/// The wire form: `accepted`, `rejected <reason>`, `started`,
/// `progress round=<r> of=<n>`, `finished <result>`, `failed <error>`,
/// `cancelled`, `state round=<r> blob=<n/q/base64url>` (the text
/// fallback for full-state delivery).
impl fmt::Display for JobEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobEvent::Accepted => f.write_str("accepted"),
            JobEvent::Rejected { reason } => {
                write!(f, "rejected {}", encode_reject_reason(reason))
            }
            JobEvent::Started => f.write_str("started"),
            JobEvent::Progress { round, of } => write!(f, "progress round={round} of={of}"),
            JobEvent::Finished(result) => write!(f, "finished {result}"),
            JobEvent::Failed(e) => write!(f, "failed {}", encode_spec_error(e)),
            JobEvent::Cancelled => f.write_str("cancelled"),
            JobEvent::State { round, blob } => {
                write!(f, "state round={round} blob={}", blob.to_token())
            }
        }
    }
}

impl FromStr for JobEvent {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, rest) = match s.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (s, ""),
        };
        match kind {
            "accepted" | "started" | "cancelled" => {
                if !rest.is_empty() {
                    return Err(wire_err(format!("{kind} takes no arguments: {s:?}")));
                }
                Ok(match kind {
                    "accepted" => JobEvent::Accepted,
                    "started" => JobEvent::Started,
                    _ => JobEvent::Cancelled,
                })
            }
            "rejected" => {
                if rest.contains(' ') {
                    return Err(wire_err(format!("rejected takes one reason token: {s:?}")));
                }
                Ok(JobEvent::Rejected {
                    reason: decode_reject_reason(rest)?,
                })
            }
            "progress" => {
                let (round, of) = rest
                    .split_once(' ')
                    .ok_or_else(|| wire_err(format!("progress needs round and of: {s:?}")))?;
                Ok(JobEvent::Progress {
                    round: parse_num(round, "round")?,
                    of: parse_num(of, "of")?,
                })
            }
            "finished" => Ok(JobEvent::Finished(rest.parse()?)),
            "failed" => {
                if rest.contains(' ') {
                    return Err(wire_err(format!("failed takes one error token: {s:?}")));
                }
                Ok(JobEvent::Failed(decode_spec_error(rest)?))
            }
            "state" => {
                let (round, blob) = rest
                    .split_once(' ')
                    .ok_or_else(|| wire_err(format!("state needs round and blob: {s:?}")))?;
                Ok(JobEvent::State {
                    round: parse_num(round, "round")?,
                    blob: field(blob, "blob")?
                        .parse()
                        .map_err(|e: crate::codec::CodecError| wire_err(e.to_string()))?,
                })
            }
            other => Err(wire_err(format!("unknown event {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Session frames
// ---------------------------------------------------------------------

/// A client → server frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientFrame {
    /// Submit a spec (or sweep) line under a client-chosen id; the
    /// server acks with [`ServerFrame::Submitted`] and then streams
    /// one event sequence per member job.
    Submit {
        /// Client-chosen job id (scoped to the session; reusing an id
        /// interleaves two event streams — don't).
        id: u64,
        /// The spec/sweep line, verbatim (parsed server-side).
        spec: String,
    },
    /// Cancel every member job of a previously submitted id. Each
    /// still-unresolved member terminates with
    /// [`JobEvent::Cancelled`]
    /// within one progress interval; an unknown id gets a
    /// [`ServerFrame::Error`] carrying it.
    Cancel {
        /// The submit id to cancel.
        id: u64,
    },
    /// Ask the server to drain and shut down: stop accepting
    /// connections, reject new submissions, let in-flight jobs finish
    /// (or cancel them past the grace deadline), then exit.
    Shutdown,
    /// Negotiate the session's wire format (`hello codec=binary`). The
    /// server acks with [`ServerFrame::Hello`] *in the session's
    /// current codec*, then both directions switch — every frame
    /// before the ack is old-codec, every frame after is new-codec.
    Hello {
        /// The requested codec.
        codec: crate::codec::Codec,
    },
    /// Liveness probe: the server answers immediately with a
    /// [`ServerFrame::Pong`] echoing the nonce, ahead of any queued
    /// work — what a coordinator uses to tell a slow worker from a
    /// dead one.
    Ping {
        /// Caller-chosen nonce, echoed verbatim in the pong.
        nonce: u64,
    },
    /// Open a distributed-shard session: this connection now owns
    /// shard `shard` of `of` of the partition that `spec` describes,
    /// and will exchange per-round boundary states as `shard-sync`
    /// frames until it reports [`ServerFrame::ShardDone`].
    ShardInit {
        /// Coordinator-chosen shard-session id (scoped to the
        /// session, like submit ids).
        id: u64,
        /// The shard this connection owns.
        shard: u32,
        /// Total shard count (the partition's `k`).
        of: u32,
        /// The spec line naming the workload, verbatim (parsed
        /// worker-side; graph, model, rule, and partition are all
        /// derived from it deterministically).
        spec: String,
    },
    /// The coordinator's half of one round barrier: the halo states
    /// (this shard's out-of-shard neighbors, ascending vertex order)
    /// after round `round` committed everywhere.
    ShardSync {
        /// The shard-session id.
        id: u64,
        /// The round these states close (0-based).
        round: u64,
        /// Halo-vertex spins, packed in ascending vertex order.
        blob: crate::codec::StateBlob,
    },
}

impl fmt::Display for ClientFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientFrame::Submit { id, spec } => write!(f, "submit id={id} spec={spec}"),
            ClientFrame::Cancel { id } => write!(f, "cancel id={id}"),
            ClientFrame::Shutdown => f.write_str("shutdown"),
            ClientFrame::Hello { codec } => write!(f, "hello codec={codec}"),
            ClientFrame::Ping { nonce } => write!(f, "ping nonce={nonce}"),
            ClientFrame::ShardInit {
                id,
                shard,
                of,
                spec,
            } => write!(f, "shard-init id={id} shard={shard} of={of} spec={spec}"),
            ClientFrame::ShardSync { id, round, blob } => {
                write!(
                    f,
                    "shard-sync id={id} round={round} blob={}",
                    blob.to_token()
                )
            }
        }
    }
}

impl FromStr for ClientFrame {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, rest) = match s.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (s, ""),
        };
        match kind {
            "submit" => {
                let (id, spec) = rest
                    .split_once(' ')
                    .ok_or_else(|| wire_err(format!("submit needs id and spec: {s:?}")))?;
                Ok(ClientFrame::Submit {
                    id: parse_num(id, "id")?,
                    spec: field(spec, "spec")?.to_string(),
                })
            }
            "cancel" => {
                if rest.contains(' ') {
                    return Err(wire_err(format!("cancel takes only an id: {s:?}")));
                }
                Ok(ClientFrame::Cancel {
                    id: parse_num(rest, "id")?,
                })
            }
            "shutdown" => {
                if !rest.is_empty() {
                    return Err(wire_err(format!("shutdown takes no arguments: {s:?}")));
                }
                Ok(ClientFrame::Shutdown)
            }
            "hello" => {
                if rest.contains(' ') || rest.is_empty() {
                    return Err(wire_err(format!("hello takes codec=<name>: {s:?}")));
                }
                Ok(ClientFrame::Hello {
                    codec: field(rest, "codec")?.parse().map_err(wire_err)?,
                })
            }
            "ping" => {
                if rest.contains(' ') || rest.is_empty() {
                    return Err(wire_err(format!("ping takes nonce=<n>: {s:?}")));
                }
                Ok(ClientFrame::Ping {
                    nonce: parse_num(rest, "nonce")?,
                })
            }
            "shard-init" => {
                let mut pieces = rest.splitn(4, ' ');
                let (id, shard, of, spec) =
                    match (pieces.next(), pieces.next(), pieces.next(), pieces.next()) {
                        (Some(id), Some(shard), Some(of), Some(spec)) => (id, shard, of, spec),
                        _ => {
                            return Err(wire_err(format!(
                                "shard-init needs id, shard, of, spec: {s:?}"
                            )))
                        }
                    };
                Ok(ClientFrame::ShardInit {
                    id: parse_num(id, "id")?,
                    shard: parse_num(shard, "shard")?,
                    of: parse_num(of, "of")?,
                    spec: field(spec, "spec")?.to_string(),
                })
            }
            "shard-sync" => {
                let (id, round, blob) = split3(s, rest, "shard-sync")?;
                Ok(ClientFrame::ShardSync {
                    id: parse_num(id, "id")?,
                    round: parse_num(round, "round")?,
                    blob: parse_blob(blob)?,
                })
            }
            other => Err(wire_err(format!(
                "unknown client frame {other:?} (expected submit | cancel | shutdown | hello \
                 | ping | shard-init | shard-sync)"
            ))),
        }
    }
}

/// Splits a frame body into exactly three space-separated tokens.
fn split3<'a>(
    s: &str,
    rest: &'a str,
    kind: &str,
) -> Result<(&'a str, &'a str, &'a str), WireError> {
    let mut pieces = rest.split(' ');
    match (pieces.next(), pieces.next(), pieces.next(), pieces.next()) {
        (Some(a), Some(b), Some(c), None) => Ok((a, b, c)),
        _ => Err(wire_err(format!("{kind} needs exactly 3 fields: {s:?}"))),
    }
}

/// Parses a `blob=<n/q/base64url>` token.
fn parse_blob(token: &str) -> Result<crate::codec::StateBlob, WireError> {
    field(token, "blob")?
        .parse()
        .map_err(|e: crate::codec::CodecError| wire_err(e.to_string()))
}

/// A server → client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerFrame {
    /// Ack: the submitted line parsed and expanded into `jobs` member
    /// jobs, all enqueued. Precedes every event of its id.
    Submitted {
        /// The echoed submit id.
        id: u64,
        /// Member-job count (1 for a single spec).
        jobs: u64,
    },
    /// One member job's event, tagged with the submit id and the
    /// member's expansion index.
    Event {
        /// The echoed submit id.
        id: u64,
        /// The member's expansion index (0 for a single spec).
        index: u64,
        /// The event.
        event: JobEvent,
    },
    /// A typed protocol error (malformed frame, rejected spec line).
    /// The session stays alive; only the offending frame is dropped.
    Error {
        /// The submit id the error belongs to, when attributable.
        id: Option<u64>,
        /// What was wrong.
        message: String,
    },
    /// Ack of a [`ClientFrame::Hello`]: the codec the session now
    /// speaks. Sent in the codec that was active *before* the switch.
    Hello {
        /// The codec in effect for every subsequent frame.
        codec: crate::codec::Codec,
    },
    /// Answer to a [`ClientFrame::Ping`], echoing its nonce. Sent
    /// inline from the session loop, so it overtakes queued job work.
    Pong {
        /// The echoed nonce.
        nonce: u64,
    },
    /// The worker's half of one round barrier: its boundary-vertex
    /// states (owned vertices with an out-of-shard neighbor, ascending
    /// vertex order) after round `round` committed locally.
    ShardSync {
        /// The shard-session id.
        id: u64,
        /// The round these states close (0-based).
        round: u64,
        /// Boundary-vertex spins, packed in ascending vertex order.
        blob: crate::codec::StateBlob,
    },
    /// A shard session finished: every round ran and these are the
    /// final states of the shard's owned vertices (ascending vertex
    /// order).
    ShardDone {
        /// The shard-session id.
        id: u64,
        /// Total rounds executed (burn-in included).
        rounds: u64,
        /// Owned-vertex spins, packed in ascending vertex order.
        blob: crate::codec::StateBlob,
    },
}

impl fmt::Display for ServerFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerFrame::Submitted { id, jobs } => write!(f, "submitted id={id} jobs={jobs}"),
            ServerFrame::Event { id, index, event } => {
                write!(f, "event id={id} index={index} {event}")
            }
            ServerFrame::Error { id, message } => {
                write!(f, "error id=")?;
                match id {
                    Some(id) => write!(f, "{id}")?,
                    None => write!(f, "-")?,
                }
                write!(f, " message={}", escape(message))
            }
            ServerFrame::Hello { codec } => write!(f, "hello codec={codec}"),
            ServerFrame::Pong { nonce } => write!(f, "pong nonce={nonce}"),
            ServerFrame::ShardSync { id, round, blob } => {
                write!(
                    f,
                    "shard-sync id={id} round={round} blob={}",
                    blob.to_token()
                )
            }
            ServerFrame::ShardDone { id, rounds, blob } => {
                write!(
                    f,
                    "shard-done id={id} rounds={rounds} blob={}",
                    blob.to_token()
                )
            }
        }
    }
}

impl FromStr for ServerFrame {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, rest) = match s.split_once(' ') {
            Some((k, r)) => (k, r),
            None => (s, ""),
        };
        match kind {
            "submitted" => {
                let (id, jobs) = rest
                    .split_once(' ')
                    .ok_or_else(|| wire_err(format!("submitted needs id and jobs: {s:?}")))?;
                Ok(ServerFrame::Submitted {
                    id: parse_num(id, "id")?,
                    jobs: parse_num(jobs, "jobs")?,
                })
            }
            "event" => {
                let (id, rest) = rest
                    .split_once(' ')
                    .ok_or_else(|| wire_err(format!("event needs id, index, body: {s:?}")))?;
                let (index, body) = rest
                    .split_once(' ')
                    .ok_or_else(|| wire_err(format!("event needs id, index, body: {s:?}")))?;
                Ok(ServerFrame::Event {
                    id: parse_num(id, "id")?,
                    index: parse_num(index, "index")?,
                    event: body.parse()?,
                })
            }
            "error" => {
                let (id, message) = rest
                    .split_once(' ')
                    .ok_or_else(|| wire_err(format!("error needs id and message: {s:?}")))?;
                let id = match field(id, "id")? {
                    "-" => None,
                    n => Some(
                        n.parse()
                            .map_err(|_| wire_err(format!("bad error id {n:?}")))?,
                    ),
                };
                Ok(ServerFrame::Error {
                    id,
                    message: unescape(field(message, "message")?)?,
                })
            }
            "hello" => {
                if rest.contains(' ') || rest.is_empty() {
                    return Err(wire_err(format!("hello takes codec=<name>: {s:?}")));
                }
                Ok(ServerFrame::Hello {
                    codec: field(rest, "codec")?.parse().map_err(wire_err)?,
                })
            }
            "pong" => {
                if rest.contains(' ') || rest.is_empty() {
                    return Err(wire_err(format!("pong takes nonce=<n>: {s:?}")));
                }
                Ok(ServerFrame::Pong {
                    nonce: parse_num(rest, "nonce")?,
                })
            }
            "shard-sync" => {
                let (id, round, blob) = split3(s, rest, "shard-sync")?;
                Ok(ServerFrame::ShardSync {
                    id: parse_num(id, "id")?,
                    round: parse_num(round, "round")?,
                    blob: parse_blob(blob)?,
                })
            }
            "shard-done" => {
                let (id, rounds, blob) = split3(s, rest, "shard-done")?;
                Ok(ServerFrame::ShardDone {
                    id: parse_num(id, "id")?,
                    rounds: parse_num(rounds, "rounds")?,
                    blob: parse_blob(blob)?,
                })
            }
            other => Err(wire_err(format!("unknown server frame {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CommSummary;

    fn result(spec: &str, output: JobOutput) -> JobResult {
        JobResult {
            spec: spec.to_string(),
            output,
            elapsed_secs: 0.25,
        }
    }

    #[test]
    fn known_whats_track_the_facade() {
        // Ties KNOWN_WHATS to the values sampler.rs actually produces:
        // every algorithm name (the `other.name()` rejection path)
        // must decode back to its exact static.
        for alg in [
            Algorithm::LocalMetropolis,
            Algorithm::LocalMetropolisNoRule3,
            Algorithm::LubyGlauber,
            Algorithm::Glauber,
            Algorithm::Metropolis,
        ] {
            assert!(
                KNOWN_WHATS.contains(&alg.name()),
                "add {:?} to KNOWN_WHATS",
                alg.name()
            );
        }
        // And an unknown value degrades to the documented fallback
        // instead of failing the frame.
        let drifted = "combo-unsupported-on-csp:what=some-future-verb";
        match decode_spec_error(drifted).unwrap() {
            SpecError::Combo(BuildError::UnsupportedOnCsp { what }) => {
                assert_eq!(what, "a job the remote end rejected");
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "",
            "plain",
            "a b,c=d:e%f",
            "line\nbreak\ttab",
            "100%,=:%",
            // Non-ASCII must survive byte-exactly (β is two UTF-8
            // bytes; a char-wise escape would mojibake it).
            "β=0.4 and λ≥1 — ünïcode",
        ] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
            assert!(escape(s).is_ascii());
            assert!(!escape(s).contains(' '));
        }
        assert!(unescape("bad%zz").is_err());
        assert!(unescape("trunc%2").is_err());
    }

    #[test]
    fn events_round_trip() {
        let comm = CommSummary {
            rounds_seen: 30,
            total_messages: 1200,
            total_bytes: 2400,
            total_changed: 7,
        };
        let events = vec![
            JobEvent::Accepted,
            JobEvent::Started,
            JobEvent::Progress { round: 5, of: 100 },
            JobEvent::Finished(result(
                "graph=torus:6x6 model=coloring:q=12 seed=5 job=run:rounds=30",
                JobOutput::Run {
                    rounds: 30,
                    n: 36,
                    feasible: true,
                    fingerprint: 0xdead_beef,
                    comm: Some(comm),
                },
            )),
            JobEvent::Finished(result(
                "graph=cycle:4 model=coloring:q=3 job=tv:rounds=40,replicas=2000",
                JobOutput::Tv {
                    rounds: 40,
                    replicas: 2000,
                    tv: 0.012_345_678_901_234_5,
                },
            )),
            JobEvent::Failed(SpecError::Combo(BuildError::SchedulerNotApplicable {
                algorithm: Algorithm::Glauber,
            })),
            JobEvent::Failed(SpecError::JobPanicked {
                message: "index out of bounds: the len is 3".into(),
            }),
        ];
        for event in events {
            let printed = event.to_string();
            assert_eq!(printed.parse::<JobEvent>().unwrap(), event, "{printed}");
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            ServerFrame::Submitted { id: 7, jobs: 32 },
            ServerFrame::Event {
                id: 7,
                index: 31,
                event: JobEvent::Progress { round: 1, of: 2 },
            },
            ServerFrame::Error {
                id: None,
                message: "malformed frame: unknown client frame \"hello\"".into(),
            },
            ServerFrame::Error {
                id: Some(3),
                message: "unknown model \"isng\"".into(),
            },
        ];
        for frame in frames {
            assert_eq!(frame.to_string().parse::<ServerFrame>().unwrap(), frame);
        }
        let submit = ClientFrame::Submit {
            id: 9,
            spec: "graph=cycle:12 model=coloring:q=5 seeds=0..4".into(),
        };
        assert_eq!(submit.to_string().parse::<ClientFrame>().unwrap(), submit);
    }

    #[test]
    fn floats_survive_the_wire_bit_identically() {
        for tv in [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, 0.0] {
            let r = result(
                "graph=cycle:4 model=coloring:q=3 job=tv:rounds=1,replicas=1",
                JobOutput::Tv {
                    rounds: 1,
                    replicas: 1,
                    tv,
                },
            );
            let back: JobResult = r.to_string().parse().unwrap();
            match back.output {
                JobOutput::Tv { tv: t, .. } => assert_eq!(t.to_bits(), tv.to_bits()),
                _ => unreachable!(),
            }
        }
        // NaN compares unequal but must still cross the wire as NaN.
        let r = result(
            "graph=cycle:4 model=coloring:q=3 job=coalescence:trials=1,max-rounds=1",
            JobOutput::Coalescence {
                trials: 1,
                mean_rounds: f64::NAN,
                std_error: f64::INFINITY,
                timeouts: 1,
            },
        );
        let back: JobResult = r.to_string().parse().unwrap();
        match back.output {
            JobOutput::Coalescence {
                mean_rounds,
                std_error,
                ..
            } => {
                assert!(mean_rounds.is_nan());
                assert_eq!(std_error, f64::INFINITY);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        for bad in [
            "hello",
            "hello codec=morse",
            "hello codec=binary extra=1",
            "submit id=x spec=graph=cycle:3 model=mis",
            "event id=1 index=0 exploded",
            "event id=1 index=0 finished elapsed=zz output=tv:rounds=1,replicas=1,tv=0 spec=x",
            "event id=1 index=0 state round=5 blob=2/3/!!!",
            "error id=7 message=bad%GG",
        ] {
            assert!(bad.parse::<ServerFrame>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn state_outputs_and_events_round_trip() {
        use crate::codec::StateBlob;
        let blob = StateBlob::pack(&[0, 2, 1, 2, 0, 1], 3);
        let wide = StateBlob::pack(&[1, 300, 0, 299], 301);
        let bits = StateBlob::pack(&[1, 0, 1, 1, 0, 0, 1, 0, 1], 2);

        let sample = result(
            "graph=cycle:6 model=coloring:q=3 seed=1 job=sample:rounds=10,count=3",
            JobOutput::Sample {
                rounds: 10,
                states: vec![blob.clone(), wide, bits],
            },
        );
        assert_eq!(sample.to_string().parse::<JobResult>().unwrap(), sample);

        let stream = result(
            "graph=cycle:6 model=coloring:q=3 seed=1 job=stream:rounds=10,every=2",
            JobOutput::Stream {
                rounds: 10,
                every: 2,
                n: 6,
                states: 5,
                fingerprint: 0x0123_4567_89ab_cdef,
            },
        );
        assert_eq!(stream.to_string().parse::<JobResult>().unwrap(), stream);

        let event = JobEvent::State { round: 4, blob };
        assert_eq!(event.to_string().parse::<JobEvent>().unwrap(), event);
    }

    #[test]
    fn hello_frames_round_trip() {
        use crate::codec::Codec;
        for codec in [Codec::Text, Codec::Binary] {
            let client = ClientFrame::Hello { codec };
            assert_eq!(client.to_string().parse::<ClientFrame>().unwrap(), client);
            let server = ServerFrame::Hello { codec };
            assert_eq!(server.to_string().parse::<ServerFrame>().unwrap(), server);
        }
        assert!("hello".parse::<ClientFrame>().is_err(), "codec is required");
    }

    #[test]
    fn cluster_frames_round_trip() {
        use crate::codec::StateBlob;
        let blob = StateBlob::pack(&[0, 2, 1, 2], 3);
        let empty = StateBlob::pack(&[], 3);
        let client_frames = [
            ClientFrame::Ping { nonce: 42 },
            ClientFrame::ShardInit {
                id: 3,
                shard: 1,
                of: 4,
                spec: "graph=torus:6x6 model=coloring:q=12 backend=cluster:4 \
                       job=run:rounds=30"
                    .into(),
            },
            ClientFrame::ShardSync {
                id: 3,
                round: 7,
                blob: blob.clone(),
            },
            ClientFrame::ShardSync {
                id: 3,
                round: 0,
                blob: empty.clone(),
            },
        ];
        for frame in client_frames {
            assert_eq!(frame.to_string().parse::<ClientFrame>().unwrap(), frame);
        }
        let server_frames = [
            ServerFrame::Pong { nonce: 42 },
            ServerFrame::ShardSync {
                id: 3,
                round: 7,
                blob: blob.clone(),
            },
            ServerFrame::ShardDone {
                id: 3,
                rounds: 30,
                blob,
            },
            ServerFrame::ShardSync {
                id: 3,
                round: 0,
                blob: empty,
            },
        ];
        for frame in server_frames {
            assert_eq!(frame.to_string().parse::<ServerFrame>().unwrap(), frame);
        }
        for bad in [
            "ping",
            "ping nonce=7 extra=1",
            "shard-init id=1 shard=0 of=2",
            "shard-sync id=1 round=0",
            "shard-sync id=1 round=0 blob=2/3/!!!",
        ] {
            assert!(bad.parse::<ClientFrame>().is_err(), "{bad:?}");
        }
        assert!("pong".parse::<ServerFrame>().is_err());
        assert!("shard-done id=1 rounds=2".parse::<ServerFrame>().is_err());
    }
}
