//! The paper's contribution: distributed Markov chains for sampling from
//! Gibbs distributions in the LOCAL model.
//!
//! "What can be sampled locally?" (Feng, Sun, Yin, PODC 2017) gives two
//! distributed samplers and proves matching lower bounds; this crate
//! implements the samplers, the sequential baselines they parallelize, and
//! the measurement machinery their theorems call for:
//!
//! * [`sampler`] — the **facade**: one typed builder over models ×
//!   algorithms × schedulers × backends, with measurement jobs
//!   (TV curves, coalescence) and a read-only observer pipeline — start
//!   here;
//! * [`engine`] — the **step engine**: chain logic as per-vertex rules
//!   over counter-style randomness streams, executed by swappable
//!   backends (sequential, parallel, owner-computes sharded, batched
//!   replicas) with bit-identical trajectories — see `DESIGN.md` for
//!   the layering and the determinism contract;
//! * [`single_site`] — the classic sequential chains: heat-bath **Glauber
//!   dynamics**, single-site **Metropolis**, and **systematic scan**;
//! * [`schedule`] — the paper's "Luby step" and the other
//!   independent-set schedulers its Theorem 3.2 remark allows
//!   (chromatic classes, singletons, filtered-Bernoulli);
//! * [`luby_glauber`] — **Algorithm 1 (LubyGlauber)**: heat-bath updates on
//!   a scheduled independent set each round, plus the weighted-CSP variant
//!   on strongly independent sets;
//! * [`local_metropolis`] — **Algorithm 2 (LocalMetropolis)**: simultaneous
//!   proposals at every vertex filtered by per-edge coins, with the
//!   rule-three ablation the paper warns about;
//! * [`programs`] — both algorithms as LOCAL-model vertex programs with
//!   message-size accounting (one LOCAL round per chain step);
//! * [`kernel`] — *exact* transition kernels of all three chains on small
//!   instances, enabling exact verification of Proposition 3.1 and
//!   Theorem 4.1 (reversibility, stationarity) and exact mixing curves;
//! * [`coupling`] — grand couplings and coalescence-time measurement (the
//!   experimental counterpart of the path-coupling theorems);
//! * [`mixing`] — empirical total-variation estimation against exact
//!   ground truth;
//! * [`spec`] / [`service`] / [`proto`] / [`codec`] / [`net`] — the
//!   **serving stack**: declarative job specs with seed/parameter
//!   sweeps, the event-streaming worker-pool service, the
//!   line-delimited wire codec, the negotiated binary frame codec with
//!   bit-packed full-state delivery, and the TCP server/client putting
//!   sessions on the network;
//! * [`cluster`] — the **cluster layer** on top of the serving stack: a
//!   sweep coordinator fanning member jobs over a worker fleet (with
//!   liveness probing and deterministic replay after worker loss), and
//!   cross-process sharded chains exchanging boundary states as
//!   `shard-sync` frames — bit-identical to the in-process backends.
//!
//! # Example: sample a proper coloring with LocalMetropolis
//!
//! The [`sampler`] facade is the one front door — pick a model, an
//! algorithm, a scheduler, and a backend, and build:
//!
//! ```
//! use lsl_core::prelude::*;
//! use lsl_graph::generators;
//! use lsl_mrf::models;
//!
//! let mrf = models::proper_coloring(generators::torus(5, 5), 16);
//! let mut sampler = Sampler::for_mrf(&mrf)
//!     .algorithm(Algorithm::LocalMetropolis)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! sampler.run(60);
//! assert!(mrf.is_feasible(sampler.state()));
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod codec;
pub mod coupling;
pub mod csp_metropolis;
pub mod engine;
pub mod kernel;
pub mod labeling;
pub mod lifecycle;
pub mod local_metropolis;
pub mod luby_glauber;
pub mod mixing;
pub mod net;
pub mod programs;
pub mod proto;
pub mod sampler;
pub mod schedule;
pub mod service;
pub mod single_site;
pub mod spec;
pub mod store;
pub mod update;

/// The facade in one `use`: the [`sampler`] builder types, the
/// declarative [`spec`] layer and its serving [`service`], the legacy
/// [`Chain`] trait, the engine [`Backend`](engine::Backend), and the
/// workspace PRNG.
pub mod prelude {
    pub use crate::cluster::{ClusterError, ClusterEvent, ClusterRun, Coordinator};
    pub use crate::codec::{Codec, StateBlob};
    pub use crate::engine::Backend;
    pub use crate::lifecycle::{CancelToken, Limits, RejectReason};
    pub use crate::net::{Client, ConnectError, Server};
    pub use crate::sampler::{
        AcceptanceObserver, Algorithm, BuildError, CoalescenceReport, EnergyObserver,
        HammingObserver, Observer, ReplicaBuilder, ReplicaSampler, Sampler, SamplerBuilder, Sched,
    };
    pub use crate::service::{CacheStats, JobEvent, JobHandle, Service, SweepHandle};
    pub use crate::spec::{
        JobOutput, JobResult, JobSpec, ScenarioRegistry, SpecError, SweepResult, SweepSpec,
    };
    pub use crate::store::{ResultStore, StoreStats};
    pub use crate::Chain;
    pub use lsl_local::rng::Xoshiro256pp;
}

use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::Spin;

/// A Markov chain over spin configurations, stepped with an explicit PRNG.
///
/// The concrete [`Xoshiro256pp`] generator (rather than a generic `Rng`)
/// makes *grand couplings* trivial: stepping two chains with identically
/// seeded generators realizes the shared-randomness coupling used in all
/// coalescence experiments.
pub trait Chain {
    /// The current configuration.
    fn state(&self) -> &[Spin];

    /// Overwrites the current configuration.
    ///
    /// # Panics
    /// Implementations panic if the length or spin range is wrong.
    fn set_state(&mut self, state: &[Spin]);

    /// Advances the chain by one step.
    fn step(&mut self, rng: &mut Xoshiro256pp);

    /// Human-readable chain name for experiment output.
    fn name(&self) -> &'static str;

    /// Advances the chain by `t` steps.
    fn run(&mut self, t: usize, rng: &mut Xoshiro256pp) {
        for _ in 0..t {
            self.step(rng);
        }
    }
}
