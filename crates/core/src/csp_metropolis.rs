//! The weighted-CSP extension of LocalMetropolis (Remark after
//! Algorithm 2).
//!
//! "The local filtering now occurs on each local constraint, such that a
//! k-ary constraint c = (f_c, S_c) passes the check with the probability
//! which is a product of 2^k − 1 normalized factors f̃_c(τ) for the
//! τ ∈ \[q\]^{S_c} obtained from 2^k − 1 ways of mixing σ_{S_c} with
//! X_{S_c} except the X_{S_c} itself."
//!
//! Each step: every vertex proposes a uniform spin; every constraint
//! flips one shared coin with the mixture-product pass probability; a
//! vertex accepts iff *all* constraints containing it pass. For binary
//! edge constraints the mixture product is exactly the three-factor
//! filter of Algorithm 2, which [`csp_local_metropolis_kernel`]'s tests
//! verify by comparing kernels entrywise against the MRF chain.

use crate::Chain;
use lsl_analysis::Kernel;
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::csp::{Constraint, Csp};
use lsl_mrf::gibbs::{checked_pow, decode_config};
use lsl_mrf::Spin;
use std::collections::HashMap;
use std::sync::Arc;

/// The mixture-product pass probability of constraint `c` given the
/// current spins and proposals of its scope: `Π_{∅ ≠ S ⊆ [k]} f̃(τ_S)`
/// where `τ_S` takes `σ` on `S` and `X` elsewhere.
pub fn constraint_pass_probability(
    c: &Constraint,
    q: usize,
    current: &[Spin],
    proposals: &[Spin],
) -> f64 {
    let k = c.scope().len();
    debug_assert!(k <= 16, "scope too large for mixture enumeration");
    let max = c.max_value();
    if max == 0.0 {
        return 0.0;
    }
    let mut local = vec![0 as Spin; k];
    let mut p = 1.0;
    for mask in 1u32..(1 << k) {
        for (i, slot) in local.iter_mut().enumerate() {
            let v = c.scope()[i] as usize;
            *slot = if (mask >> i) & 1 == 1 {
                proposals[v]
            } else {
                current[v]
            };
        }
        p *= c.evaluate_local(q, &local) / max;
        if p == 0.0 {
            return 0.0;
        }
    }
    p
}

/// LocalMetropolis over a weighted local CSP.
///
/// # Example (preferred construction: the sampler facade)
/// ```
/// use lsl_core::prelude::*;
/// use lsl_graph::generators;
/// use lsl_mrf::csp::Csp;
/// use std::sync::Arc;
///
/// let csp = Csp::dominating_set(Arc::new(generators::cycle(6)));
/// let mut sampler = Sampler::for_csp(&csp)
///     .algorithm(Algorithm::LocalMetropolis)
///     .start(vec![1; 6])
///     .seed(4)
///     .build()
///     .unwrap();
/// sampler.run(50);
/// assert!(csp.is_feasible(sampler.state()));
/// ```
#[derive(Clone, Debug)]
pub struct CspLocalMetropolis {
    csp: Arc<Csp>,
    state: Vec<Spin>,
    proposals: Vec<Spin>,
    accept: Vec<bool>,
}

impl CspLocalMetropolis {
    /// Creates the chain from an explicit start.
    ///
    /// # Panics
    /// Panics if the start has the wrong length.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_csp(&csp).algorithm(Algorithm::LocalMetropolis).start(start).build()`")]
    pub fn new(csp: impl Into<Arc<Csp>>, start: Vec<Spin>) -> Self {
        let csp = csp.into();
        assert_eq!(start.len(), csp.graph().num_vertices());
        let n = start.len();
        CspLocalMetropolis {
            csp,
            state: start,
            proposals: vec![0; n],
            accept: vec![false; n],
        }
    }

    /// The CSP this chain samples from.
    pub fn csp(&self) -> &Csp {
        &self.csp
    }
}

impl Chain for CspLocalMetropolis {
    fn state(&self) -> &[Spin] {
        &self.state
    }

    fn set_state(&mut self, state: &[Spin]) {
        assert_eq!(state.len(), self.state.len());
        self.state.copy_from_slice(state);
    }

    fn step(&mut self, rng: &mut Xoshiro256pp) {
        let q = self.csp.q();
        for slot in self.proposals.iter_mut() {
            *slot = (rng.uniform_f64() * q as f64) as Spin;
        }
        self.accept.fill(true);
        for c in self.csp.constraints() {
            let p = constraint_pass_probability(c, q, &self.state, &self.proposals);
            let coin = rng.uniform_f64();
            if coin >= p {
                for &v in c.scope() {
                    self.accept[v as usize] = false;
                }
            }
        }
        for v in 0..self.state.len() {
            if self.accept[v] {
                self.state[v] = self.proposals[v];
            }
        }
    }

    fn name(&self) -> &'static str {
        "CspLocalMetropolis"
    }
}

/// The exact transition kernel of [`CspLocalMetropolis`] on a small CSP,
/// by enumerating proposal vectors and constraint-coin patterns.
///
/// # Panics
/// Panics if `q^n > 729` or the CSP has more than 12 constraints.
pub fn csp_local_metropolis_kernel(csp: &Csp) -> Kernel {
    let n = csp.graph().num_vertices();
    let q = csp.q();
    let total = checked_pow(q, n)
        .filter(|&t| t <= 729)
        .expect("state space too large");
    let m = csp.constraints().len();
    assert!(m <= 12, "too many constraints for coin enumeration");
    let proposal_prob = 1.0 / total as f64; // uniform over [q]^n
    let mut maps: Vec<HashMap<usize, f64>> = vec![HashMap::new(); total];
    let mut x_cfg = vec![0 as Spin; n];
    let mut s_cfg = vec![0 as Spin; n];
    for x in 0..total {
        decode_config(x, q, &mut x_cfg);
        let row = &mut maps[x];
        for s in 0..total {
            decode_config(s, q, &mut s_cfg);
            let pass: Vec<f64> = csp
                .constraints()
                .iter()
                .map(|c| constraint_pass_probability(c, q, &x_cfg, &s_cfg))
                .collect();
            let mut stack: Vec<(usize, f64, u32)> = vec![(0, proposal_prob, 0)];
            while let Some((ci, p, fail_mask)) = stack.pop() {
                if ci == m {
                    let mut y = 0usize;
                    let mut stride = 1usize;
                    for v in 0..n {
                        let rejected = csp.constraints().iter().enumerate().any(|(idx, c)| {
                            (fail_mask >> idx) & 1 == 1 && c.scope().contains(&(v as u32))
                        });
                        let spin = if rejected { x_cfg[v] } else { s_cfg[v] };
                        y += spin as usize * stride;
                        stride *= q;
                    }
                    *row.entry(y).or_insert(0.0) += p;
                    continue;
                }
                let pp = pass[ci];
                if pp > 0.0 {
                    stack.push((ci + 1, p * pp, fail_mask));
                }
                if pp < 1.0 {
                    stack.push((ci + 1, p * (1.0 - pp), fail_mask | (1 << ci)));
                }
            }
        }
    }
    let rows = maps
        .into_iter()
        .map(|mrow| {
            let mut row: Vec<(usize, f64)> = mrow.into_iter().filter(|&(_, p)| p > 0.0).collect();
            row.sort_by_key(|&(j, _)| j);
            let sum: f64 = row.iter().map(|&(_, p)| p).sum();
            for (_, p) in &mut row {
                *p /= sum;
            }
            row
        })
        .collect();
    Kernel::new(rows).expect("stochastic kernel")
}

#[cfg(test)]
mod tests {
    // The legacy constructor is the surface under test here.
    #![allow(deprecated)]

    use super::*;
    use lsl_graph::generators;
    use lsl_mrf::models;
    use std::sync::Arc;

    /// Mirror a proper-coloring MRF as an edge-constraint CSP.
    fn coloring_csp(g: lsl_graph::Graph, q: usize) -> Csp {
        let g = Arc::new(g);
        let constraints = g
            .edges()
            .map(|(_, u, v)| {
                Constraint::from_predicate(q, vec![u.0, v.0], |local| local[0] != local[1])
                    .expect("valid")
            })
            .collect();
        Csp::new(g, q, constraints)
    }

    #[test]
    fn binary_constraints_recover_algorithm_2() {
        // On an MRF expressed as binary constraints, the CSP chain's
        // kernel equals the MRF LocalMetropolis kernel entrywise — the
        // 2^2−1 mixtures are exactly the three factors of Algorithm 2.
        let g = generators::path(3);
        let q = 3;
        let csp = coloring_csp(g.clone(), q);
        let mrf = models::proper_coloring(g, q);
        let a = csp_local_metropolis_kernel(&csp);
        let b = crate::kernel::local_metropolis_kernel(&mrf, true);
        assert_eq!(a.num_states(), b.num_states());
        for i in 0..a.num_states() {
            for &(j, p) in a.row(i) {
                assert!((p - b.prob(i, j)).abs() < 1e-12, "P({i},{j})");
            }
        }
    }

    #[test]
    fn ternary_soft_constraint_reversible() {
        // A genuinely multivariate soft factor: the kernel must be
        // reversible w.r.t. the CSP's weighted distribution (Remark
        // after Thm 4.1, extended).
        let g = Arc::new(generators::path(3));
        let c = Constraint::new(
            2,
            vec![0, 1, 2],
            // weight 2 when the three spins are not all equal, else 1.
            vec![1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 1.0],
        )
        .unwrap();
        let csp = Csp::new(g, 2, vec![c]);
        let k = csp_local_metropolis_kernel(&csp);
        // Stationary candidate: normalized weights.
        let sols: Vec<f64> = (0..8)
            .map(|idx| {
                let mut cfg = vec![0 as Spin; 3];
                decode_config(idx, 2, &mut cfg);
                csp.weight(&cfg)
            })
            .collect();
        let z: f64 = sols.iter().sum();
        let pi: Vec<f64> = sols.iter().map(|w| w / z).collect();
        assert!(k.stationarity_residual(&pi) < 1e-12);
        assert!(k.detailed_balance_residual(&pi) < 1e-12);
    }

    #[test]
    fn mixed_arity_reversible() {
        // Unary + binary soft constraints together.
        let g = Arc::new(generators::path(2));
        let unary = Constraint::new(2, vec![0], vec![1.0, 3.0]).unwrap();
        let binary = Constraint::new(2, vec![0, 1], vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let csp = Csp::new(g, 2, vec![unary, binary]);
        let k = csp_local_metropolis_kernel(&csp);
        let sols: Vec<f64> = (0..4)
            .map(|idx| {
                let mut cfg = vec![0 as Spin; 2];
                decode_config(idx, 2, &mut cfg);
                csp.weight(&cfg)
            })
            .collect();
        let z: f64 = sols.iter().sum();
        let pi: Vec<f64> = sols.iter().map(|w| w / z).collect();
        assert!(k.stationarity_residual(&pi) < 1e-12);
        assert!(k.detailed_balance_residual(&pi) < 1e-12);
    }

    #[test]
    fn hard_constraints_preserve_feasibility() {
        let csp = Csp::maximal_independent_set(Arc::new(generators::cycle(5)));
        let sols = csp.enumerate();
        let mut chain = CspLocalMetropolis::new(&csp, sols[0].0.clone());
        let mut rng = Xoshiro256pp::seed_from(5);
        for _ in 0..200 {
            chain.step(&mut rng);
            assert!(csp.is_feasible(chain.state()));
        }
    }

    #[test]
    fn dominating_set_sampling_converges() {
        use lsl_analysis::EmpiricalDistribution;
        use lsl_mrf::gibbs::encode_config;
        let csp = Csp::dominating_set(Arc::new(generators::path(3)));
        let sols = csp.enumerate();
        let mut emp = EmpiricalDistribution::new();
        let reps = 20_000u64;
        for rep in 0..reps {
            let mut rng = Xoshiro256pp::seed_from(2_000 + rep);
            let mut chain = CspLocalMetropolis::new(&csp, vec![1, 1, 1]);
            chain.run(80, &mut rng);
            emp.record(encode_config(chain.state(), 2));
        }
        for (sol, _) in &sols {
            let f = emp.frequency(encode_config(sol, 2));
            assert!((f - 0.2).abs() < 0.02, "sol {sol:?}: freq {f}");
        }
    }

    #[test]
    fn pass_probability_binary_matches_three_factors() {
        let q = 4;
        let c = Constraint::from_predicate(q, vec![0, 1], |l| l[0] != l[1]).unwrap();
        // current (0, 1), proposals (2, 3): all mixtures proper → pass.
        assert_eq!(constraint_pass_probability(&c, q, &[0, 1], &[2, 3]), 1.0);
        // proposals (1, 3): mixture (σ_u, X_v) = (1, 1) improper → fail.
        assert_eq!(constraint_pass_probability(&c, q, &[0, 1], &[1, 3]), 0.0);
        // proposals (2, 2): σσ mixture improper → fail.
        assert_eq!(constraint_pass_probability(&c, q, &[0, 1], &[2, 2]), 0.0);
    }
}
