//! Admission control and cancellation for the job lifecycle.
//!
//! The service used to accept everything and finish everything: an
//! unbounded queue, no way to stop a running chain, and handles whose
//! drop merely abandoned the event stream while the worker kept
//! burning. This module is the missing vocabulary:
//!
//! - [`Limits`] bounds what a [`Service`](crate::service::Service)
//!   admits — queue depth, per-session in-flight jobs, and a round
//!   budget per job. Overflow is answered with a *typed*
//!   [`JobEvent::Rejected`](crate::service::JobEvent::Rejected)
//!   carrying a [`RejectReason`], not a hang and not an `io::Error`.
//! - [`CancelToken`] is the cancel/abandon handshake between the
//!   submitting side (handles, sessions) and the worker that runs the
//!   job. Cancellation is *cooperative*: the worker polls the token at
//!   every progress-sink call, which the batched kernels already hit
//!   at bounded intervals — so a cancel lands within one progress
//!   interval without a single extra branch in the hot loops.
//!
//! The token doubles as the queue-slot ledger. A job holds a slot from
//! admission until a worker dequeues it (or until every handle is
//! dropped first), so `queue_cap` bounds *waiting* jobs — exactly the
//! resource a misbehaving client can exhaust.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// ----- limits ---------------------------------------------------------

/// Admission bounds for a [`Service`](crate::service::Service).
///
/// The default is fully open (every field at its type's maximum) so
/// `Service::new` keeps its historical behaviour; construct with
/// struct-update syntax to bound one axis at a time:
///
/// ```
/// use lsl_core::lifecycle::Limits;
/// let limits = Limits { queue_cap: 8, ..Limits::default() };
/// assert_eq!(limits.queue_cap, 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum jobs waiting in the queue (admitted but not yet picked
    /// up by a worker). The job a worker is running does not count.
    pub queue_cap: usize,
    /// Maximum unresolved jobs a single network session may have in
    /// flight; enforced by `net` sessions, not by the service itself.
    pub per_session_inflight: usize,
    /// Maximum per-job round budget
    /// ([`JobSpec::round_budget`](crate::spec::JobSpec::round_budget));
    /// a cheap static proxy for "how long can this job possibly run".
    pub max_rounds: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            queue_cap: usize::MAX,
            per_session_inflight: usize::MAX,
            max_rounds: u64::MAX,
        }
    }
}

/// Why a submission was turned away at the door.
///
/// Round-trips through [`proto`](crate::proto) inside
/// [`JobEvent::Rejected`](crate::service::JobEvent::Rejected) so remote
/// clients see the same typed reason as in-process callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The service queue already holds `cap` waiting jobs.
    QueueFull {
        /// The configured [`Limits::queue_cap`].
        cap: usize,
    },
    /// The submitting session already has `cap` jobs in flight.
    SessionBusy {
        /// The configured [`Limits::per_session_inflight`].
        cap: usize,
    },
    /// The job's static round budget exceeds the per-job cap.
    RoundBudget {
        /// The job's [`JobSpec::round_budget`](crate::spec::JobSpec::round_budget).
        budget: u64,
        /// The configured [`Limits::max_rounds`].
        cap: u64,
    },
    /// The server is draining for shutdown and admits nothing new.
    Draining,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { cap } => {
                write!(f, "the job queue is full ({cap} waiting)")
            }
            RejectReason::SessionBusy { cap } => {
                write!(f, "this session already has {cap} jobs in flight")
            }
            RejectReason::RoundBudget { budget, cap } => {
                write!(f, "the job's round budget {budget} exceeds the cap {cap}")
            }
            RejectReason::Draining => write!(f, "the server is draining for shutdown"),
        }
    }
}

// ----- queue slots ----------------------------------------------------

/// A counting semaphore over queue slots. Shared between the service
/// (acquire on admission) and the tokens (release on dequeue/abandon).
#[derive(Debug)]
pub(crate) struct SlotPool {
    cap: usize,
    used: AtomicUsize,
}

impl SlotPool {
    pub(crate) fn new(cap: usize) -> Arc<Self> {
        Arc::new(SlotPool {
            cap,
            used: AtomicUsize::new(0),
        })
    }

    /// Claims a slot, or reports the pool exhausted. Lock-free CAS so
    /// concurrent submitters never over-admit.
    pub(crate) fn try_acquire(self: &Arc<Self>) -> Option<SlotGuard> {
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used >= self.cap {
                return None;
            }
            match self.used.compare_exchange_weak(
                used,
                used + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(SlotGuard(Arc::clone(self))),
                Err(actual) => used = actual,
            }
        }
    }

    /// Slots currently held (jobs admitted but not yet dequeued).
    pub(crate) fn in_use(&self) -> usize {
        self.used.load(Ordering::Acquire)
    }
}

/// RAII queue slot: dropping it returns the slot to the pool.
#[derive(Debug)]
pub(crate) struct SlotGuard(Arc<SlotPool>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.used.fetch_sub(1, Ordering::AcqRel);
    }
}

// ----- the cancel token -----------------------------------------------

/// Queued: admitted, waiting for a worker (holds its queue slot).
const QUEUED: u8 = 0;
/// Started: a worker dequeued it (slot released, chain may be running).
const STARTED: u8 = 1;
/// Done: the terminal event has been decided.
const DONE: u8 = 2;
/// Abandoned: every handle was dropped while still queued; the worker
/// must skip it without emitting anything.
const ABANDONED: u8 = 3;

#[derive(Debug)]
struct TokenInner {
    phase: AtomicU8,
    cancelled: AtomicBool,
    /// The queue slot travels inside the token so *either* side — the
    /// worker on dequeue, or the last handle's drop — can release it,
    /// whichever comes first.
    slot: Mutex<Option<SlotGuard>>,
}

/// A shared cancel/abandon handle for one submitted job.
///
/// Cloneable and `Send`; every clone addresses the same job. The two
/// observable operations:
///
/// - [`cancel`](CancelToken::cancel) requests cooperative stop. A
///   queued job terminates with `Cancelled` instead of starting; a
///   running job notices at its next progress-sink call and terminates
///   with `Cancelled` within one progress interval. Cancelling a
///   finished (or rejected) job is a no-op.
/// - dropping the *last* [`JobHandle`](crate::service::JobHandle) of a
///   still-queued job abandons it: the slot frees immediately and the
///   job never runs.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("phase", &self.inner.phase.load(Ordering::Relaxed))
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl CancelToken {
    /// A token for a freshly admitted job holding its queue slot.
    pub(crate) fn queued(slot: SlotGuard) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                phase: AtomicU8::new(QUEUED),
                cancelled: AtomicBool::new(false),
                slot: Mutex::new(Some(slot)),
            }),
        }
    }

    /// A token for a submission that was resolved at the door
    /// (rejected): already terminal, holds nothing.
    pub(crate) fn resolved() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                phase: AtomicU8::new(DONE),
                cancelled: AtomicBool::new(false),
                slot: Mutex::new(None),
            }),
        }
    }

    /// Requests cancellation. Idempotent; a no-op once the job is done.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested. Polled by the worker at
    /// every progress-sink call.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the job has reached (or was born in) a terminal state.
    pub fn is_resolved(&self) -> bool {
        self.inner.phase.load(Ordering::Acquire) == DONE
    }

    fn release_slot(&self) {
        if let Ok(mut slot) = self.inner.slot.lock() {
            *slot = None;
        }
    }

    /// Worker side, at dequeue: move QUEUED → STARTED and release the
    /// queue slot (the job no longer waits). Returns `false` when the
    /// job was abandoned while queued — the worker must skip it.
    pub(crate) fn take_for_run(&self) -> bool {
        let taken = self
            .inner
            .phase
            .compare_exchange(QUEUED, STARTED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if taken {
            self.release_slot();
        }
        taken
    }

    /// Handle side, on drop of the last handle: if still queued, mark
    /// abandoned and free the slot so the job never runs. Started jobs
    /// are unaffected (their events just go unread).
    pub(crate) fn abandon(&self) {
        if self
            .inner
            .phase
            .compare_exchange(QUEUED, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.release_slot();
        }
    }

    /// Worker side, after deciding the terminal event.
    pub(crate) fn mark_done(&self) {
        self.inner.phase.store(DONE, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_counted_and_released() {
        let pool = SlotPool::new(2);
        let a = pool.try_acquire().expect("slot 1");
        let _b = pool.try_acquire().expect("slot 2");
        assert!(pool.try_acquire().is_none(), "pool of 2 is exhausted");
        assert_eq!(pool.in_use(), 2);
        drop(a);
        assert_eq!(pool.in_use(), 1);
        assert!(pool.try_acquire().is_some(), "freed slot is reusable");
    }

    #[test]
    fn token_phases_gate_the_worker() {
        let pool = SlotPool::new(1);
        let token = CancelToken::queued(pool.try_acquire().unwrap());
        assert!(!token.is_cancelled());
        assert!(!token.is_resolved());
        assert!(token.take_for_run(), "queued jobs are runnable");
        assert_eq!(pool.in_use(), 0, "dequeue releases the slot");
        assert!(!token.take_for_run(), "a job runs at most once");
        token.mark_done();
        assert!(token.is_resolved());
    }

    #[test]
    fn abandoning_a_queued_job_frees_the_slot_and_blocks_the_run() {
        let pool = SlotPool::new(1);
        let token = CancelToken::queued(pool.try_acquire().unwrap());
        token.abandon();
        assert_eq!(pool.in_use(), 0, "abandon releases the slot");
        assert!(!token.take_for_run(), "abandoned jobs never run");
    }

    #[test]
    fn abandoning_a_started_job_is_a_no_op() {
        let pool = SlotPool::new(1);
        let token = CancelToken::queued(pool.try_acquire().unwrap());
        assert!(token.take_for_run());
        token.abandon();
        token.mark_done();
        assert!(token.is_resolved());
    }

    #[test]
    fn reject_reasons_render() {
        let text = RejectReason::RoundBudget {
            budget: 100,
            cap: 10,
        }
        .to_string();
        assert!(text.contains("100") && text.contains("10"), "{text}");
        assert!(RejectReason::Draining.to_string().contains("draining"));
    }
}
