//! Sequential single-site chains: the baselines the paper parallelizes.
//!
//! * [`GlauberChain`] — the heat-bath Glauber dynamics of §3: pick a
//!   uniform vertex, resample it from the conditional marginal (eq. 2).
//!   Mixes in `O(n/(1−α) · log(n/ε))` under Dobrushin's condition.
//! * [`MetropolisChain`] — the natural single-site Metropolis chain
//!   (footnote 2 of the paper): propose from the vertex activity, accept
//!   with probability `Π_{u∼v} Ã(c, X_u)`. This is exactly LocalMetropolis
//!   restricted to one updating vertex, so it shares its stationary
//!   distribution and connectivity structure.
//! * [`ScanChain`] — systematic scan (Dyer–Goldberg–Jerrum): heat-bath
//!   updates in a fixed vertex order; one [`Chain::step`] = one full sweep.

use crate::engine::rules::{GlauberRule, MetropolisRule};
use crate::engine::{Backend, SyncChain};
use crate::update::Resampler;
use crate::Chain;
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// Samples an arbitrary initial configuration with positive vertex
/// activities (the paper lets chains start from any configuration; spins
/// with `b_v = 0` could never be proposed or kept, so avoid them).
pub fn arbitrary_start(mrf: &Mrf, rng: &mut Xoshiro256pp) -> Vec<Spin> {
    mrf.graph()
        .vertices()
        .map(|v| mrf.vertex_activity(v).sample(rng))
        .collect()
}

/// The single-site heat-bath Glauber dynamics.
///
/// # Example (preferred construction: the sampler facade)
/// ```
/// use lsl_core::prelude::*;
/// use lsl_graph::generators;
/// use lsl_mrf::models;
///
/// let mrf = models::proper_coloring(generators::cycle(8), 5);
/// let mut sampler = Sampler::for_mrf(&mrf)
///     .algorithm(Algorithm::Glauber)
///     .build()
///     .unwrap();
/// sampler.run(200);
/// assert!(mrf.is_feasible(sampler.state()));
/// ```
#[derive(Debug)]
pub struct GlauberChain {
    inner: SyncChain<GlauberRule>,
}

impl GlauberChain {
    /// Creates the chain with a deterministic arbitrary start (spin of
    /// smallest index with positive activity at each vertex).
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::Glauber).build()`")]
    pub fn new(mrf: impl Into<Arc<Mrf>>) -> Self {
        GlauberChain {
            inner: crate::sampler::wire(mrf, GlauberRule, 0, None, Backend::Sequential),
        }
    }

    /// Creates the chain from an explicit start.
    ///
    /// # Panics
    /// Panics if the configuration has the wrong length.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::Glauber).start(state).build()`")]
    pub fn with_state(mrf: impl Into<Arc<Mrf>>, state: Vec<Spin>) -> Self {
        GlauberChain {
            inner: crate::sampler::wire(mrf, GlauberRule, 0, Some(state), Backend::Sequential),
        }
    }

    /// The model this chain samples from.
    pub fn mrf(&self) -> &Mrf {
        self.inner.mrf()
    }
}

impl Chain for GlauberChain {
    fn state(&self) -> &[Spin] {
        self.inner.state()
    }

    fn set_state(&mut self, state: &[Spin]) {
        self.inner.set_state(state);
    }

    fn step(&mut self, rng: &mut Xoshiro256pp) {
        // One draw keys the round: the engine's shared stream picks the
        // vertex and the resolve stream drives the resample, so coupled
        // callers stay aligned by construction.
        self.inner.step_keyed(rng.next());
    }

    fn name(&self) -> &'static str {
        "Glauber"
    }
}

/// The single-site Metropolis chain: propose `c ∼ b_v`, accept with
/// probability `Π_{u ∼ v} Ã_uv(c, X_u)`.
#[derive(Debug)]
pub struct MetropolisChain {
    inner: SyncChain<MetropolisRule>,
}

impl MetropolisChain {
    /// Creates the chain with the deterministic default start.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::Metropolis).build()`")]
    pub fn new(mrf: impl Into<Arc<Mrf>>) -> Self {
        MetropolisChain {
            inner: crate::sampler::wire(mrf, MetropolisRule, 0, None, Backend::Sequential),
        }
    }

    /// Creates the chain from an explicit start.
    ///
    /// # Panics
    /// Panics if the configuration has the wrong length.
    #[deprecated(note = "construct through the sampler facade: \
                `Sampler::for_mrf(&mrf).algorithm(Algorithm::Metropolis).start(state).build()`")]
    pub fn with_state(mrf: impl Into<Arc<Mrf>>, state: Vec<Spin>) -> Self {
        MetropolisChain {
            inner: crate::sampler::wire(mrf, MetropolisRule, 0, Some(state), Backend::Sequential),
        }
    }
}

impl Chain for MetropolisChain {
    fn state(&self) -> &[Spin] {
        self.inner.state()
    }

    fn set_state(&mut self, state: &[Spin]) {
        self.inner.set_state(state);
    }

    fn step(&mut self, rng: &mut Xoshiro256pp) {
        self.inner.step_keyed(rng.next());
    }

    fn name(&self) -> &'static str {
        "Metropolis"
    }
}

/// Systematic scan: one step = one heat-bath sweep in vertex order.
#[derive(Clone, Debug)]
pub struct ScanChain {
    mrf: Arc<Mrf>,
    state: Vec<Spin>,
    scratch: Vec<f64>,
    resampler: Resampler,
}

impl ScanChain {
    /// Creates the chain with the deterministic default start.
    pub fn new(mrf: impl Into<Arc<Mrf>>) -> Self {
        let mrf = mrf.into();
        let state = default_start(&mrf);
        let scratch = vec![0.0; mrf.q()];
        let resampler = Resampler::new(&mrf);
        ScanChain {
            mrf,
            state,
            scratch,
            resampler,
        }
    }
}

impl Chain for ScanChain {
    fn state(&self) -> &[Spin] {
        &self.state
    }

    fn set_state(&mut self, state: &[Spin]) {
        assert_eq!(state.len(), self.state.len());
        self.state.copy_from_slice(state);
    }

    fn step(&mut self, rng: &mut Xoshiro256pp) {
        for v in self.mrf.graph().vertices() {
            self.mrf
                .marginal_weights_into(v, &self.state, &mut self.scratch);
            let pick = self
                .resampler
                .resample(&self.scratch, rng)
                .expect("scan marginal must be well-defined");
            self.state[v.index()] = pick;
        }
    }

    fn name(&self) -> &'static str {
        "SystematicScan"
    }
}

/// Deterministic default start: at each vertex, the smallest spin with
/// positive activity.
pub fn default_start(mrf: &Mrf) -> Vec<Spin> {
    mrf.graph()
        .vertices()
        .map(|v| {
            let b = mrf.vertex_activity(v);
            (0..mrf.q() as Spin)
                .find(|&c| b.get(c) > 0.0)
                .expect("vertex activity has a positive entry")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    // The legacy constructors are the surface under test here.
    #![allow(deprecated)]

    use super::*;
    use lsl_analysis::EmpiricalDistribution;
    use lsl_graph::generators;
    use lsl_mrf::gibbs::{encode_config, Enumeration};
    use lsl_mrf::models;

    fn empirical_tv<C: Chain>(
        mut make: impl FnMut(u64) -> C,
        q: usize,
        steps: usize,
        replicas: usize,
        exact: &Enumeration,
    ) -> f64 {
        let mut emp = EmpiricalDistribution::new();
        for rep in 0..replicas {
            let mut chain = make(rep as u64);
            let mut rng = Xoshiro256pp::seed_from(1000 + rep as u64);
            chain.run(steps, &mut rng);
            emp.record(encode_config(chain.state(), q));
        }
        emp.tv_against_dense(&exact.distribution())
    }

    #[test]
    fn glauber_reaches_feasibility() {
        let mrf = models::proper_coloring(generators::complete(4), 5);
        let mut chain = GlauberChain::new(&mrf);
        let mut rng = Xoshiro256pp::seed_from(3);
        chain.run(100, &mut rng);
        assert!(mrf.is_feasible(chain.state()));
    }

    #[test]
    fn glauber_samples_gibbs_on_small_instance() {
        let mrf = models::uniform_independent_set(generators::path(3));
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = empirical_tv(|_| GlauberChain::new(&mrf), 2, 80, 6000, &exact);
        assert!(tv < 0.04, "tv = {tv}");
    }

    #[test]
    fn metropolis_samples_gibbs_on_small_instance() {
        let mrf = models::proper_coloring(generators::cycle(3), 4);
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = empirical_tv(|_| MetropolisChain::new(&mrf), 4, 150, 6000, &exact);
        assert!(tv < 0.06, "tv = {tv}");
    }

    #[test]
    fn metropolis_weighted_model() {
        // Hardcore with λ = 2 on P2: π({}) = 1/5, π({0}) = π({1}) = 2/5.
        let mrf = models::hardcore(generators::path(2), 2.0);
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = empirical_tv(|_| MetropolisChain::new(&mrf), 2, 60, 8000, &exact);
        assert!(tv < 0.04, "tv = {tv}");
    }

    #[test]
    fn scan_samples_gibbs() {
        let mrf = models::proper_coloring(generators::path(4), 3);
        let exact = Enumeration::new(&mrf).unwrap();
        let tv = empirical_tv(|_| ScanChain::new(&mrf), 3, 25, 6000, &exact);
        assert!(tv < 0.05, "tv = {tv}");
    }

    #[test]
    fn default_start_respects_lists() {
        let g = generators::path(2);
        let mrf = models::list_coloring(g, 4, &[vec![2, 3], vec![0]]);
        assert_eq!(default_start(&mrf), vec![2, 0]);
    }

    #[test]
    fn set_state_roundtrip() {
        let mrf = models::proper_coloring(generators::path(3), 3);
        let mut chain = GlauberChain::new(&mrf);
        chain.set_state(&[2, 1, 0]);
        assert_eq!(chain.state(), &[2, 1, 0]);
    }

    #[test]
    fn arbitrary_start_in_support() {
        let g = generators::path(3);
        let mrf = models::list_coloring(g, 5, &[vec![1], vec![2, 4], vec![0]]);
        let mut rng = Xoshiro256pp::seed_from(9);
        for _ in 0..20 {
            let s = arbitrary_start(&mrf, &mut rng);
            assert_eq!(s[0], 1);
            assert!(s[1] == 2 || s[1] == 4);
            assert_eq!(s[2], 0);
        }
    }
}
