//! Declarative job specifications: a parse/print round-trippable,
//! hand-rolled spec format naming a complete workload.
//!
//! The paper frames sampling as a *service the network provides*: a
//! query names a local Gibbs distribution and the system returns a
//! sample. [`JobSpec`] is that query as a value — one line of
//! whitespace-separated `key=value` tokens covering every scenario the
//! workspace can run:
//!
//! ```text
//! graph=torus:256x256 model=ising:beta=0.4 algorithm=local-metropolis \
//!     scheduler=luby backend=sharded:8 seed=7 job=coalescence:trials=5,max-rounds=2000000
//! ```
//!
//! * `graph=` — every [`lsl_graph::generators`] family
//!   (`torus:RxC`, `cycle:N`, `gnp:n=N,p=P`, ...);
//! * `model=` — every [`lsl_mrf::models`] constructor
//!   (`coloring:q=Q`, `ising:beta=B`, ...) plus the CSP scenarios
//!   (`dominating-set`, `mis`);
//! * `algorithm=` / `scheduler=` / `backend=` / `partitioner=` /
//!   `hotpath=` — the facade's [`Algorithm`], [`Sched`], [`Backend`],
//!   [`Partitioner`], and [`HotPath`], via their `FromStr`/`Display`
//!   forms;
//! * `seed=` / `graph-seed=` / `burn-in=` — determinism knobs (the
//!   graph seed defaults to the chain seed);
//! * `job=` — what to measure: `run:rounds=N` (default),
//!   `distribution:rounds=N,replicas=B`, `tv:rounds=N,replicas=B`,
//!   `coalescence:trials=T,max-rounds=M`.
//!
//! Parsing is total and typed: anything wrong — an unknown key, a bad
//! arity, an invalid combination — surfaces as a [`SpecError`] value
//! (facade rejections are wrapped [`BuildError`]s), never a panic, and
//! graph-constructor preconditions (`cycle` needs `n ≥ 3`, ...) are
//! checked at *parse* time so a validated spec cannot blow up a
//! service worker later. Printing ([`std::fmt::Display`]) emits a
//! canonical form that parses back to the identical spec —
//! property-tested across the registry in `tests/spec_roundtrip.rs`.
//!
//! [`ScenarioRegistry`] enumerates every recognized scenario with its
//! syntax — the data behind `lsl list scenarios`.
//!
//! Running a spec ([`JobSpec::run`]) goes through the sampler facade,
//! so the result is bit-identical to building the same workload by
//! hand; [`Service`](crate::service::Service) runs specs concurrently
//! with a model cache and the same guarantee.

use crate::codec::StateBlob;
use crate::engine::sharded::CommStats;
use crate::engine::{Backend, HotPath};
use crate::sampler::{Algorithm, BuildError, Sampler, SamplerBuilder, Sched};
use lsl_graph::partition::Partitioner;
use lsl_graph::Graph;
use lsl_mrf::csp::Csp;
use lsl_mrf::gibbs::Enumeration;
use lsl_mrf::{models, Mrf, Spin};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Why a spec string was rejected. Every failure is a value — the spec
/// layer never panics on user input.
#[derive(Clone, Debug, PartialEq)]
#[must_use = "a rejected spec explains what to fix"]
pub enum SpecError {
    /// A token was not of the form `key=value`.
    NotKeyValue {
        /// The offending token.
        token: String,
    },
    /// An unrecognized top-level key.
    UnknownKey {
        /// The offending key.
        key: String,
    },
    /// The same key appeared twice.
    DuplicateKey {
        /// The repeated key.
        key: String,
    },
    /// A required key was missing.
    MissingKey {
        /// The missing key (`graph` or `model`).
        key: &'static str,
    },
    /// A scenario name (graph family, model, job) was not recognized.
    UnknownScenario {
        /// Which key the name appeared under.
        kind: &'static str,
        /// The unrecognized name.
        name: String,
    },
    /// A value failed to parse or violated a constructor precondition
    /// (wrong arity, non-numeric argument, `cycle` with `n < 3`, ...).
    BadValue {
        /// The key whose value was rejected.
        key: String,
        /// What was wrong.
        message: String,
    },
    /// The facade rejected the (algorithm, scheduler, model)
    /// combination — the spec layer reuses [`BuildError`] unchanged.
    Combo(BuildError),
    /// The job is not runnable on this workload (e.g. `tv` needs a
    /// state space small enough to enumerate exactly).
    Unsupported {
        /// What was requested and why it cannot run.
        message: String,
    },
    /// The job body panicked; the panic was contained to the job (the
    /// worker survives) and its message is carried here.
    JobPanicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The service owning this job shut down before answering.
    ServiceStopped,
    /// The job was cancelled (handle, client frame, or server drain)
    /// before it produced a result.
    Cancelled,
    /// The job was refused admission; the reason says which limit.
    Rejected(crate::lifecycle::RejectReason),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NotKeyValue { token } => {
                write!(f, "token {token:?} is not of the form key=value")
            }
            SpecError::UnknownKey { key } => write!(
                f,
                "unknown key {key:?} (expected graph | model | algorithm | scheduler | \
                 backend | partitioner | hotpath | seed | graph-seed | burn-in | job)"
            ),
            SpecError::DuplicateKey { key } => write!(f, "key {key:?} given twice"),
            SpecError::MissingKey { key } => write!(f, "required key {key:?} is missing"),
            SpecError::UnknownScenario { kind, name } => {
                write!(
                    f,
                    "unknown {kind} {name:?} (run `lsl list scenarios` for the registry)"
                )
            }
            SpecError::BadValue { key, message } => write!(f, "bad value for {key:?}: {message}"),
            SpecError::Combo(e) => write!(f, "invalid combination: {e}"),
            SpecError::Unsupported { message } => f.write_str(message),
            SpecError::JobPanicked { message } => {
                write!(f, "the job panicked: {message}")
            }
            SpecError::ServiceStopped => f.write_str("the sampling service shut down"),
            SpecError::Cancelled => f.write_str("the job was cancelled"),
            SpecError::Rejected(reason) => write!(f, "the job was rejected: {reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<BuildError> for SpecError {
    fn from(e: BuildError) -> Self {
        SpecError::Combo(e)
    }
}

/// Shorthand for the `BadValue` constructor used throughout parsing.
fn bad(key: &str, message: impl Into<String>) -> SpecError {
    SpecError::BadValue {
        key: key.to_string(),
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// Graph scenarios
// ---------------------------------------------------------------------

/// A named graph family with its parameters — every
/// [`lsl_graph::generators`] entry. Random families (`gnp`,
/// `random-regular`, `random-tree`) are generated deterministically
/// from the spec's graph seed.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // variants mirror `lsl_graph::generators` 1:1
pub enum GraphSpec {
    Path { n: usize },
    Cycle { n: usize },
    Complete { n: usize },
    CompleteBipartite { a: usize, b: usize },
    Star { n: usize },
    Grid { rows: usize, cols: usize },
    Torus { rows: usize, cols: usize },
    Hypercube { dim: u32 },
    Book { pages: usize },
    Caterpillar { spine: usize, legs: usize },
    Gnp { n: usize, p: f64 },
    RandomRegular { n: usize, d: usize },
    RandomTree { n: usize },
}

/// Splits `args` as `<a>x<b>` into two integers.
fn parse_axb(key: &str, args: &str) -> Result<(usize, usize), SpecError> {
    let (a, b) = args
        .split_once('x')
        .ok_or_else(|| bad(key, format!("expected <a>x<b>, got {args:?}")))?;
    let a = a
        .parse::<usize>()
        .map_err(|_| bad(key, format!("{a:?} is not an integer")))?;
    let b = b
        .parse::<usize>()
        .map_err(|_| bad(key, format!("{b:?} is not an integer")))?;
    Ok((a, b))
}

/// Parses `name=value,name=value` argument lists (the named-argument
/// scenario syntax), validating the exact expected name set.
fn parse_named(key: &str, args: &str, expected: &[&str]) -> Result<Vec<String>, SpecError> {
    let mut out = vec![None; expected.len()];
    for piece in args.split(',') {
        let (name, value) = piece
            .split_once('=')
            .ok_or_else(|| bad(key, format!("expected name=value, got {piece:?}")))?;
        let slot = expected.iter().position(|&e| e == name).ok_or_else(|| {
            bad(
                key,
                format!("unknown argument {name:?} (expected {expected:?})"),
            )
        })?;
        if out[slot].is_some() {
            return Err(bad(key, format!("argument {name:?} given twice")));
        }
        out[slot] = Some(value.to_string());
    }
    expected
        .iter()
        .zip(out)
        .map(|(&name, v)| v.ok_or_else(|| bad(key, format!("missing argument {name:?}"))))
        .collect()
}

/// Like [`parse_named`], but missing arguments fall back to
/// `defaults` (parallel to `expected`), and an empty argument string
/// yields all defaults — the syntax behind `sample` / `sample:count=8`.
fn parse_named_defaults(
    key: &str,
    args: &str,
    expected: &[&str],
    defaults: &[&str],
) -> Result<Vec<String>, SpecError> {
    debug_assert_eq!(expected.len(), defaults.len());
    let mut out: Vec<Option<String>> = vec![None; expected.len()];
    if !args.is_empty() {
        for piece in args.split(',') {
            let (name, value) = piece
                .split_once('=')
                .ok_or_else(|| bad(key, format!("expected name=value, got {piece:?}")))?;
            let slot = expected.iter().position(|&e| e == name).ok_or_else(|| {
                bad(
                    key,
                    format!("unknown argument {name:?} (expected {expected:?})"),
                )
            })?;
            if out[slot].is_some() {
                return Err(bad(key, format!("argument {name:?} given twice")));
            }
            out[slot] = Some(value.to_string());
        }
    }
    Ok(defaults
        .iter()
        .zip(out)
        .map(|(&d, v)| v.unwrap_or_else(|| d.to_string()))
        .collect())
}

fn parse_int<T: FromStr>(key: &str, value: &str) -> Result<T, SpecError> {
    value
        .parse::<T>()
        .map_err(|_| bad(key, format!("{value:?} is not a valid number")))
}

impl GraphSpec {
    /// Parses the value of a `graph=` key (e.g. `torus:256x256`).
    /// Constructor preconditions are checked here so a parsed spec can
    /// never panic a worker at build time.
    pub fn parse(value: &str) -> Result<Self, SpecError> {
        const KEY: &str = "graph";
        let (name, args) = match value.split_once(':') {
            Some((n, a)) => (n, a),
            None => (value, ""),
        };
        let one = |what: &str| -> Result<usize, SpecError> {
            if args.is_empty() {
                return Err(bad(KEY, format!("{name} needs {what}, e.g. {name}:16")));
            }
            parse_int::<usize>(KEY, args)
        };
        // Empty vertex sets are rejected here, not deep in a worker:
        // replica jobs on a 0-vertex model would otherwise panic the
        // engine (the facade's EmptyModel check covers only `build()`).
        let nonzero = |key_name: &str, n: usize| -> Result<usize, SpecError> {
            if n == 0 {
                Err(bad(KEY, format!("{key_name} needs at least 1 vertex")))
            } else {
                Ok(n)
            }
        };
        // Size arithmetic is checked: a product that overflows usize
        // must become a BadValue, not a debug-build panic (or a
        // silently wrapped size in release).
        let checked_area = |key_name: &str, a: usize, b: usize| -> Result<usize, SpecError> {
            a.checked_mul(b)
                .ok_or_else(|| bad(KEY, format!("{key_name} size {a}x{b} overflows")))
        };
        let spec = match name {
            "path" => GraphSpec::Path {
                n: nonzero("path", one("a size")?)?,
            },
            "cycle" => {
                let n = one("a size")?;
                if n < 3 {
                    return Err(bad(KEY, "a cycle needs at least 3 vertices"));
                }
                GraphSpec::Cycle { n }
            }
            "complete" => GraphSpec::Complete {
                n: nonzero("complete", one("a size")?)?,
            },
            "complete-bipartite" => {
                let (a, b) = parse_axb(KEY, args)?;
                let n = a.checked_add(b).ok_or_else(|| {
                    bad(KEY, format!("complete-bipartite size {a}+{b} overflows"))
                })?;
                nonzero("complete-bipartite", n)?;
                GraphSpec::CompleteBipartite { a, b }
            }
            "star" => GraphSpec::Star { n: one("a size")? },
            "grid" => {
                let (rows, cols) = parse_axb(KEY, args)?;
                nonzero("grid", checked_area("grid", rows, cols)?)?;
                GraphSpec::Grid { rows, cols }
            }
            "torus" => {
                let (rows, cols) = parse_axb(KEY, args)?;
                if rows < 3 || cols < 3 {
                    return Err(bad(KEY, "torus sides must be >= 3"));
                }
                checked_area("torus", rows, cols)?;
                GraphSpec::Torus { rows, cols }
            }
            "hypercube" => {
                if args.is_empty() {
                    return Err(bad(KEY, "hypercube needs a dimension, e.g. hypercube:8"));
                }
                // Parsed as u32 directly: a usize-then-truncate would
                // let values like 2^32 wrap past the cap.
                let dim = parse_int::<u32>(KEY, args)?;
                if dim > 24 {
                    return Err(bad(KEY, "hypercube dimension capped at 24"));
                }
                GraphSpec::Hypercube { dim }
            }
            "book" => GraphSpec::Book {
                pages: one("a page count")?,
            },
            "caterpillar" => {
                let (spine, legs) = parse_axb(KEY, args)?;
                nonzero("caterpillar", spine)?;
                checked_area("caterpillar", spine, legs)?
                    .checked_add(spine)
                    .ok_or_else(|| bad(KEY, "caterpillar size overflows"))?;
                GraphSpec::Caterpillar { spine, legs }
            }
            "gnp" => {
                let vals = parse_named(KEY, args, &["n", "p"])?;
                let n = nonzero("gnp", parse_int::<usize>(KEY, &vals[0])?)?;
                let p = parse_int::<f64>(KEY, &vals[1])?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(KEY, format!("gnp probability {p} not in [0, 1]")));
                }
                GraphSpec::Gnp { n, p }
            }
            "random-regular" => {
                let vals = parse_named(KEY, args, &["n", "d"])?;
                let n = parse_int::<usize>(KEY, &vals[0])?;
                let d = parse_int::<usize>(KEY, &vals[1])?;
                let stubs = checked_area("random-regular", n, d)?;
                if stubs % 2 != 0 {
                    return Err(bad(KEY, "random-regular needs n*d even"));
                }
                if d >= n {
                    return Err(bad(KEY, "random-regular needs d < n"));
                }
                GraphSpec::RandomRegular { n, d }
            }
            "random-tree" => {
                let vals = parse_named(KEY, args, &["n"])?;
                GraphSpec::RandomTree {
                    n: nonzero("random-tree", parse_int::<usize>(KEY, &vals[0])?)?,
                }
            }
            other => {
                return Err(SpecError::UnknownScenario {
                    kind: "graph family",
                    name: other.to_string(),
                })
            }
        };
        Ok(spec)
    }

    /// Builds the graph. Random families draw from a generator seeded
    /// by `graph_seed` — the same seed always yields the same graph.
    pub fn build(&self, graph_seed: u64) -> Graph {
        use lsl_graph::generators as g;
        let mut rng = StdRng::seed_from_u64(graph_seed);
        match *self {
            GraphSpec::Path { n } => g::path(n),
            GraphSpec::Cycle { n } => g::cycle(n),
            GraphSpec::Complete { n } => g::complete(n),
            GraphSpec::CompleteBipartite { a, b } => g::complete_bipartite(a, b),
            GraphSpec::Star { n } => g::star(n),
            GraphSpec::Grid { rows, cols } => g::grid(rows, cols),
            GraphSpec::Torus { rows, cols } => g::torus(rows, cols),
            GraphSpec::Hypercube { dim } => g::hypercube(dim),
            GraphSpec::Book { pages } => g::book(pages),
            GraphSpec::Caterpillar { spine, legs } => g::caterpillar(spine, legs),
            GraphSpec::Gnp { n, p } => g::gnp(n, p, &mut rng),
            GraphSpec::RandomRegular { n, d } => g::random_regular(n, d, &mut rng),
            GraphSpec::RandomTree { n } => g::random_tree(n, &mut rng),
        }
    }

    /// Whether building consults the graph seed.
    pub fn is_random(&self) -> bool {
        matches!(
            self,
            GraphSpec::Gnp { .. } | GraphSpec::RandomRegular { .. } | GraphSpec::RandomTree { .. }
        )
    }
}

impl fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphSpec::Path { n } => write!(f, "path:{n}"),
            GraphSpec::Cycle { n } => write!(f, "cycle:{n}"),
            GraphSpec::Complete { n } => write!(f, "complete:{n}"),
            GraphSpec::CompleteBipartite { a, b } => write!(f, "complete-bipartite:{a}x{b}"),
            GraphSpec::Star { n } => write!(f, "star:{n}"),
            GraphSpec::Grid { rows, cols } => write!(f, "grid:{rows}x{cols}"),
            GraphSpec::Torus { rows, cols } => write!(f, "torus:{rows}x{cols}"),
            GraphSpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            GraphSpec::Book { pages } => write!(f, "book:{pages}"),
            GraphSpec::Caterpillar { spine, legs } => write!(f, "caterpillar:{spine}x{legs}"),
            GraphSpec::Gnp { n, p } => write!(f, "gnp:n={n},p={p}"),
            GraphSpec::RandomRegular { n, d } => write!(f, "random-regular:n={n},d={d}"),
            GraphSpec::RandomTree { n } => write!(f, "random-tree:n={n}"),
        }
    }
}

// ---------------------------------------------------------------------
// Model scenarios
// ---------------------------------------------------------------------

/// A named distribution over configurations of the graph — every
/// [`lsl_mrf::models`] constructor plus the weighted-CSP scenarios.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // variants mirror `lsl_mrf::models` / `Csp` 1:1
pub enum ModelSpec {
    /// `coloring:q=Q` — uniform proper q-colorings.
    Coloring { q: usize },
    /// `list-coloring:q=Q,size=K` — proper list colorings with
    /// pseudorandom per-vertex lists of `K` colors out of `[Q]`,
    /// derived deterministically from the graph seed.
    ListColoring { q: usize, size: usize },
    /// `hardcore:lambda=L` — independent sets weighted `λ^|I|`.
    Hardcore { lambda: f64 },
    /// `independent-set` — uniform independent sets (`hardcore`, λ=1).
    IndependentSet,
    /// `vertex-cover` — uniform vertex covers.
    VertexCover,
    /// `ising:beta=B` — the Ising model.
    Ising { beta: f64 },
    /// `potts:q=Q,beta=B` — the q-state Potts model.
    Potts { q: usize, beta: f64 },
    /// `dominating-set` — uniform dominating sets (a weighted CSP; the
    /// all-ones configuration is the canonical feasible start).
    DominatingSet,
    /// `mis` — uniform maximal independent sets (a weighted CSP; a
    /// greedy MIS is the canonical feasible start).
    Mis,
}

impl ModelSpec {
    /// Parses the value of a `model=` key (e.g. `ising:beta=0.4`).
    pub fn parse(value: &str) -> Result<Self, SpecError> {
        const KEY: &str = "model";
        let (name, args) = match value.split_once(':') {
            Some((n, a)) => (n, a),
            None => (value, ""),
        };
        let no_args = |spec: ModelSpec| -> Result<ModelSpec, SpecError> {
            if args.is_empty() {
                Ok(spec)
            } else {
                Err(bad(KEY, format!("{name} takes no arguments, got {args:?}")))
            }
        };
        match name {
            "coloring" => {
                let vals = parse_named(KEY, args, &["q"])?;
                let q = parse_int::<usize>(KEY, &vals[0])?;
                if q < 2 {
                    return Err(bad(KEY, "coloring needs q >= 2"));
                }
                Ok(ModelSpec::Coloring { q })
            }
            "list-coloring" => {
                let vals = parse_named(KEY, args, &["q", "size"])?;
                let q = parse_int::<usize>(KEY, &vals[0])?;
                let size = parse_int::<usize>(KEY, &vals[1])?;
                if q < 2 {
                    return Err(bad(KEY, "list-coloring needs q >= 2"));
                }
                if size == 0 || size > q {
                    return Err(bad(KEY, "list-coloring needs 1 <= size <= q"));
                }
                Ok(ModelSpec::ListColoring { q, size })
            }
            "hardcore" => {
                let vals = parse_named(KEY, args, &["lambda"])?;
                let lambda = parse_int::<f64>(KEY, &vals[0])?;
                if !(lambda > 0.0) {
                    return Err(bad(KEY, "hardcore needs lambda > 0"));
                }
                Ok(ModelSpec::Hardcore { lambda })
            }
            "independent-set" => no_args(ModelSpec::IndependentSet),
            "vertex-cover" => no_args(ModelSpec::VertexCover),
            "ising" => {
                let vals = parse_named(KEY, args, &["beta"])?;
                let beta = parse_int::<f64>(KEY, &vals[0])?;
                if !(beta > 0.0) {
                    return Err(bad(KEY, "ising needs beta > 0"));
                }
                Ok(ModelSpec::Ising { beta })
            }
            "potts" => {
                let vals = parse_named(KEY, args, &["q", "beta"])?;
                let q = parse_int::<usize>(KEY, &vals[0])?;
                let beta = parse_int::<f64>(KEY, &vals[1])?;
                if q < 2 {
                    return Err(bad(KEY, "potts needs q >= 2"));
                }
                if !(beta > 0.0) {
                    return Err(bad(KEY, "potts needs beta > 0"));
                }
                Ok(ModelSpec::Potts { q, beta })
            }
            "dominating-set" => no_args(ModelSpec::DominatingSet),
            "mis" => no_args(ModelSpec::Mis),
            other => Err(SpecError::UnknownScenario {
                kind: "model",
                name: other.to_string(),
            }),
        }
    }

    /// Whether the model is a weighted CSP (built through
    /// [`Sampler::for_csp`] with a canonical feasible start).
    pub fn is_csp(&self) -> bool {
        matches!(self, ModelSpec::DominatingSet | ModelSpec::Mis)
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelSpec::Coloring { q } => write!(f, "coloring:q={q}"),
            ModelSpec::ListColoring { q, size } => write!(f, "list-coloring:q={q},size={size}"),
            ModelSpec::Hardcore { lambda } => write!(f, "hardcore:lambda={lambda}"),
            ModelSpec::IndependentSet => f.write_str("independent-set"),
            ModelSpec::VertexCover => f.write_str("vertex-cover"),
            ModelSpec::Ising { beta } => write!(f, "ising:beta={beta}"),
            ModelSpec::Potts { q, beta } => write!(f, "potts:q={q},beta={beta}"),
            ModelSpec::DominatingSet => f.write_str("dominating-set"),
            ModelSpec::Mis => f.write_str("mis"),
        }
    }
}

/// A built model: the owned handles a spec's workload samples from.
/// Cached by [`Service`](crate::service::Service) under the spec's
/// [`JobSpec::model_key`].
#[derive(Clone, Debug)]
pub enum BuiltModel {
    /// An MRF workload.
    Mrf(Arc<Mrf>),
    /// A CSP workload with its canonical feasible start.
    Csp {
        /// The CSP.
        csp: Arc<Csp>,
        /// The canonical feasible start configuration.
        start: Vec<Spin>,
    },
}

/// Greedy maximal independent set by ascending vertex id — the
/// canonical feasible start of the `mis` scenario.
fn greedy_mis(g: &Graph) -> Vec<Spin> {
    let n = g.num_vertices();
    let mut in_set = vec![0 as Spin; n];
    for v in g.vertices() {
        if g.neighbors(v).all(|u| in_set[u.index()] == 0) {
            in_set[v.index()] = 1;
        }
    }
    in_set
}

/// The domain size `q` of a built model — what a
/// [`StateBlob`] packs against.
fn domain_size(model: &BuiltModel) -> usize {
    match model {
        BuiltModel::Mrf(mrf) => mrf.q(),
        BuiltModel::Csp { csp, .. } => csp.q(),
    }
}

// ---------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------

/// A full-state delivery sink: `stream` jobs hand `(round, blob)`
/// pairs here, with the same preemption contract as
/// [`ProgressSink`](crate::mixing::ProgressSink) — `Break` stops the
/// job at the current slice boundary.
pub type StateSink<'a> = &'a mut dyn FnMut(u64, StateBlob) -> std::ops::ControlFlow<()>;

/// What a spec measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobKind {
    /// `run:rounds=N` — advance one trajectory and report the final
    /// configuration (the default job, `rounds=100`).
    Run {
        /// Rounds to advance after burn-in.
        rounds: usize,
    },
    /// `distribution:rounds=N,replicas=B` — the empirical distribution
    /// of `B` iid replicas after `N` rounds (MRF only).
    Distribution {
        /// Rounds per replica.
        rounds: usize,
        /// Number of iid replicas.
        replicas: usize,
    },
    /// `tv:rounds=N,replicas=B` — empirical total-variation distance to
    /// the exactly enumerated Gibbs distribution (MRF only; the state
    /// space must be small enough to enumerate).
    Tv {
        /// Rounds per replica.
        rounds: usize,
        /// Number of iid replicas.
        replicas: usize,
    },
    /// `coalescence:trials=T,max-rounds=M` — grand-coupling coalescence
    /// rounds from adversarial starts (MRF only).
    Coalescence {
        /// Independent grand couplings.
        trials: usize,
        /// Per-trial round budget.
        max_rounds: usize,
    },
    /// `sample[:rounds=N,count=K]` — advance `K` iid replicas and
    /// return their final configurations as packed
    /// [`StateBlob`]s (defaults
    /// `rounds=100,count=1`; `count > 1` is MRF only, like every
    /// replica job).
    Sample {
        /// Rounds to advance after burn-in.
        rounds: usize,
        /// Number of iid replicas whose final states ship.
        count: usize,
    },
    /// `stream[:rounds=N,every=K]` — advance one trajectory,
    /// delivering the full configuration every `K` rounds as
    /// [`JobEvent::State`](crate::service::JobEvent::State) (defaults
    /// `rounds=100,every=1`; the final round always ships).
    Stream {
        /// Rounds to advance after burn-in.
        rounds: usize,
        /// Rounds between state deliveries.
        every: usize,
    },
}

impl JobKind {
    fn parse(value: &str) -> Result<Self, SpecError> {
        const KEY: &str = "job";
        let (name, args) = match value.split_once(':') {
            Some((n, a)) => (n, a),
            None => (value, ""),
        };
        match name {
            "run" => {
                if args.is_empty() {
                    return Ok(JobKind::Run { rounds: 100 });
                }
                let vals = parse_named(KEY, args, &["rounds"])?;
                Ok(JobKind::Run {
                    rounds: parse_int::<usize>(KEY, &vals[0])?,
                })
            }
            "distribution" => {
                let vals = parse_named(KEY, args, &["rounds", "replicas"])?;
                Ok(JobKind::Distribution {
                    rounds: parse_int::<usize>(KEY, &vals[0])?,
                    replicas: parse_int::<usize>(KEY, &vals[1])?,
                })
            }
            "tv" => {
                let vals = parse_named(KEY, args, &["rounds", "replicas"])?;
                Ok(JobKind::Tv {
                    rounds: parse_int::<usize>(KEY, &vals[0])?,
                    replicas: parse_int::<usize>(KEY, &vals[1])?,
                })
            }
            "coalescence" => {
                let vals = parse_named(KEY, args, &["trials", "max-rounds"])?;
                Ok(JobKind::Coalescence {
                    trials: parse_int::<usize>(KEY, &vals[0])?,
                    max_rounds: parse_int::<usize>(KEY, &vals[1])?,
                })
            }
            "sample" => {
                let vals = parse_named_defaults(KEY, args, &["rounds", "count"], &["100", "1"])?;
                let count = parse_int::<usize>(KEY, &vals[1])?;
                if count == 0 {
                    return Err(bad(KEY, "sample needs count >= 1"));
                }
                Ok(JobKind::Sample {
                    rounds: parse_int::<usize>(KEY, &vals[0])?,
                    count,
                })
            }
            "stream" => {
                let vals = parse_named_defaults(KEY, args, &["rounds", "every"], &["100", "1"])?;
                let every = parse_int::<usize>(KEY, &vals[1])?;
                if every == 0 {
                    return Err(bad(KEY, "stream needs every >= 1"));
                }
                Ok(JobKind::Stream {
                    rounds: parse_int::<usize>(KEY, &vals[0])?,
                    every,
                })
            }
            other => Err(SpecError::UnknownScenario {
                kind: "job",
                name: other.to_string(),
            }),
        }
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            JobKind::Run { rounds } => write!(f, "run:rounds={rounds}"),
            JobKind::Distribution { rounds, replicas } => {
                write!(f, "distribution:rounds={rounds},replicas={replicas}")
            }
            JobKind::Tv { rounds, replicas } => {
                write!(f, "tv:rounds={rounds},replicas={replicas}")
            }
            JobKind::Coalescence { trials, max_rounds } => {
                write!(f, "coalescence:trials={trials},max-rounds={max_rounds}")
            }
            JobKind::Sample { rounds, count } => {
                write!(f, "sample:rounds={rounds},count={count}")
            }
            JobKind::Stream { rounds, every } => {
                write!(f, "stream:rounds={rounds},every={every}")
            }
        }
    }
}

// ---------------------------------------------------------------------
// The spec itself
// ---------------------------------------------------------------------

/// A complete declarative workload: graph × model × algorithm ×
/// scheduler × backend × job, parseable from (and printable to) one
/// spec line. See the [module docs](self) for the grammar.
///
/// Optional keys are stored as `Option` so printing reproduces exactly
/// what was written: `spec.to_string().parse()` returns an identical
/// `JobSpec`. Effective defaults are resolved at run time
/// ([`JobSpec::algorithm_or_default`] and friends).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The graph scenario (required).
    pub graph: GraphSpec,
    /// The model scenario (required).
    pub model: ModelSpec,
    /// The chain (default: the facade's per-model default).
    pub algorithm: Option<Algorithm>,
    /// The LubyGlauber scheduler (default: Luby, facade-side).
    pub scheduler: Option<Sched>,
    /// The execution backend (default: sequential).
    pub backend: Option<Backend>,
    /// The sharded partitioner (default: contiguous).
    pub partitioner: Option<Partitioner>,
    /// The engine hot path (default: the engine default, lane-batched
    /// kernels). Trajectories are hot-path-independent.
    pub hotpath: Option<HotPath>,
    /// The chain master seed (default: 0).
    pub seed: Option<u64>,
    /// The random-graph seed (default: the chain seed).
    pub graph_seed: Option<u64>,
    /// Burn-in rounds before the job's measured rounds (default: 0;
    /// `run` jobs only).
    pub burn_in: Option<usize>,
    /// What to measure (default: `run:rounds=100`).
    pub job: Option<JobKind>,
}

impl JobSpec {
    /// A minimal spec for `graph` × `model`, defaults everywhere else.
    pub fn new(graph: GraphSpec, model: ModelSpec) -> Self {
        JobSpec {
            graph,
            model,
            algorithm: None,
            scheduler: None,
            backend: None,
            partitioner: None,
            hotpath: None,
            seed: None,
            graph_seed: None,
            burn_in: None,
            job: None,
        }
    }

    /// The effective algorithm (the facade's per-model default when
    /// unset: LocalMetropolis on MRFs, LubyGlauber on CSPs).
    pub fn algorithm_or_default(&self) -> Algorithm {
        self.algorithm.unwrap_or(if self.model.is_csp() {
            Algorithm::LubyGlauber
        } else {
            Algorithm::LocalMetropolis
        })
    }

    /// The effective chain seed (0 when unset).
    pub fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(0)
    }

    /// The effective graph seed (the chain seed when unset).
    pub fn graph_seed_or_default(&self) -> u64 {
        self.graph_seed.unwrap_or_else(|| self.seed_or_default())
    }

    /// The effective backend (sequential when unset).
    pub fn backend_or_default(&self) -> Backend {
        self.backend.unwrap_or(Backend::Sequential)
    }

    /// The effective job (`run:rounds=100` when unset).
    pub fn job_or_default(&self) -> JobKind {
        self.job.unwrap_or(JobKind::Run { rounds: 100 })
    }

    /// The cache key of the built model: the part of the canonical form
    /// that determines the graph and model bit-for-bit. Two specs with
    /// equal keys build identical models, so a
    /// [`Service`](crate::service::Service) shares one build.
    pub fn model_key(&self) -> String {
        let mut key = format!("graph={} model={}", self.graph, self.model);
        // The graph seed only matters for random families; the list
        // coloring also derives its lists from it.
        let seeded = self.graph.is_random() || matches!(self.model, ModelSpec::ListColoring { .. });
        if seeded {
            key.push_str(&format!(" graph-seed={}", self.graph_seed_or_default()));
        }
        key
    }

    /// Builds the model (graph included), deterministically: equal
    /// [`JobSpec::model_key`]s yield bit-identical models.
    pub fn build_model(&self) -> BuiltModel {
        let graph_seed = self.graph_seed_or_default();
        let graph = Arc::new(self.graph.build(graph_seed));
        match self.model {
            ModelSpec::Coloring { q } => {
                BuiltModel::Mrf(Arc::new(models::proper_coloring(graph, q)))
            }
            ModelSpec::ListColoring { q, size } => {
                // Deterministic pseudorandom lists: shuffle [q] per
                // vertex under a seed derived from the graph seed.
                let mut rng = StdRng::seed_from_u64(graph_seed ^ 0x4c49_5354_434f_4c52); // "LISTCOLR"
                let lists: Vec<Vec<u32>> = (0..graph.num_vertices())
                    .map(|_| {
                        let mut colors: Vec<u32> = (0..q as u32).collect();
                        colors.shuffle(&mut rng);
                        colors.truncate(size);
                        colors.sort_unstable();
                        colors
                    })
                    .collect();
                BuiltModel::Mrf(Arc::new(models::list_coloring(graph, q, &lists)))
            }
            ModelSpec::Hardcore { lambda } => {
                BuiltModel::Mrf(Arc::new(models::hardcore(graph, lambda)))
            }
            ModelSpec::IndependentSet => {
                BuiltModel::Mrf(Arc::new(models::uniform_independent_set(graph)))
            }
            ModelSpec::VertexCover => BuiltModel::Mrf(Arc::new(models::vertex_cover(graph))),
            ModelSpec::Ising { beta } => BuiltModel::Mrf(Arc::new(models::ising(graph, beta))),
            ModelSpec::Potts { q, beta } => {
                BuiltModel::Mrf(Arc::new(models::potts(graph, q, beta)))
            }
            ModelSpec::DominatingSet => {
                let start = vec![1; graph.num_vertices()];
                BuiltModel::Csp {
                    csp: Arc::new(Csp::dominating_set(graph)),
                    start,
                }
            }
            ModelSpec::Mis => {
                let start = greedy_mis(&graph);
                BuiltModel::Csp {
                    csp: Arc::new(Csp::maximal_independent_set(graph)),
                    start,
                }
            }
        }
    }

    /// Opens the facade builder this spec describes, over an
    /// already-built model (so services can reuse cached builds).
    pub fn sampler_builder(&self, model: &BuiltModel) -> SamplerBuilder {
        let mut b = match model {
            BuiltModel::Mrf(mrf) => Sampler::for_mrf(Arc::clone(mrf)),
            BuiltModel::Csp { csp, start } => {
                Sampler::for_csp(Arc::clone(csp)).start(start.clone())
            }
        };
        b = b
            .algorithm(self.algorithm_or_default())
            .backend(self.backend_or_default())
            .seed(self.seed_or_default());
        if let Some(sched) = self.scheduler {
            b = b.scheduler(sched);
        }
        if let Some(p) = self.partitioner {
            b = b.partitioner(p);
        }
        if let Some(h) = self.hotpath {
            b = b.hotpath(h);
        }
        b
    }

    /// A static upper bound on the engine rounds this job may execute —
    /// the admission proxy behind
    /// [`Limits::max_rounds`](crate::lifecycle::Limits::max_rounds).
    /// Saturating, so absurd specs rank as "infinite" rather than wrap.
    pub fn round_budget(&self) -> u64 {
        let budget = match self.job_or_default() {
            JobKind::Run { rounds } => {
                (rounds as u64).saturating_add(self.burn_in.unwrap_or(0) as u64)
            }
            JobKind::Distribution { rounds, replicas } | JobKind::Tv { rounds, replicas } => {
                (rounds as u64).saturating_mul(replicas as u64)
            }
            JobKind::Coalescence { trials, max_rounds } => {
                (trials as u64).saturating_mul(max_rounds as u64)
            }
            JobKind::Sample { rounds, count } => (rounds as u64)
                .saturating_add(self.burn_in.unwrap_or(0) as u64)
                .saturating_mul(count as u64),
            JobKind::Stream { rounds, .. } => {
                (rounds as u64).saturating_add(self.burn_in.unwrap_or(0) as u64)
            }
        };
        budget.max(1)
    }

    /// Builds the model and runs the job — the one-call entry point.
    /// Bit-identical to hand-building the same workload through the
    /// facade (property-tested in `tests/service_identity.rs`).
    pub fn run(&self) -> Result<JobResult, SpecError> {
        let model = self.build_model();
        self.run_on(&model)
    }

    /// Runs the job on an already-built model (the service's path).
    pub fn run_on(&self, model: &BuiltModel) -> Result<JobResult, SpecError> {
        self.run_on_observed(model, &mut |_, _| std::ops::ControlFlow::Continue(()))
    }

    /// [`JobSpec::run_on`] reporting progress through `progress` with
    /// monotone `(done, total)` work units — what a service worker
    /// runs so in-flight jobs stream `Progress` events from the
    /// long-running round loops. Observation never changes the result:
    /// `run` jobs are advanced in round slices (bit-identical under
    /// the engine's counter-keyed randomness) and the measurement jobs
    /// call the `*_observed` facade verbs, which batch and seed
    /// exactly like their silent forms.
    pub fn run_on_observed(
        &self,
        model: &BuiltModel,
        progress: crate::mixing::ProgressSink<'_>,
    ) -> Result<JobResult, SpecError> {
        self.run_on_streamed(model, progress, &mut |_, _| {
            std::ops::ControlFlow::Continue(())
        })
    }

    /// [`JobSpec::run_on_observed`] with a second sink for full-state
    /// delivery: `stream` jobs hand every `every`-th configuration to
    /// `states` as a packed [`StateBlob`]
    /// (final round included). Like progress observation, state
    /// extraction never perturbs the trajectory — states are read at
    /// slice boundaries, where `run(a); run(b)` ≡ `run(a+b)` holds by
    /// the determinism contract. Non-streaming jobs never call
    /// `states`.
    pub fn run_on_streamed(
        &self,
        model: &BuiltModel,
        progress: crate::mixing::ProgressSink<'_>,
        states: StateSink<'_>,
    ) -> Result<JobResult, SpecError> {
        let started = std::time::Instant::now();
        let output = match self.job_or_default() {
            JobKind::Run { rounds } => {
                let mut sampler = self
                    .sampler_builder(model)
                    .burn_in(self.burn_in.unwrap_or(0))
                    .build()?;
                // Sliced stepping: `run(a); run(b)` equals `run(a+b)`
                // by the determinism contract, so ticking every slice
                // is free of observable effect on the trajectory.
                let slice = (rounds / 16).max(1);
                let mut ran = 0usize;
                while ran < rounds {
                    let now = slice.min(rounds - ran);
                    sampler.run(now);
                    ran += now;
                    if progress(ran as u64, rounds.max(1) as u64).is_break() {
                        // Preempted (cancellation): the caller discards
                        // the result, so stop at this slice boundary.
                        break;
                    }
                }
                if rounds == 0 {
                    let _ = progress(1, 1);
                }
                let state = sampler.state();
                let feasible = match model {
                    BuiltModel::Mrf(mrf) => mrf.is_feasible(state),
                    BuiltModel::Csp { csp, .. } => csp.is_feasible(state),
                };
                JobOutput::Run {
                    rounds: sampler.round(),
                    n: state.len(),
                    feasible,
                    fingerprint: fingerprint(state),
                    comm: sampler.comm_stats().map(CommSummary::of),
                }
            }
            JobKind::Distribution { rounds, replicas } => {
                let emp = self
                    .sampler_builder(model)
                    .distribution_observed(rounds, replicas, progress)?;
                JobOutput::Distribution {
                    replicas: emp.total(),
                    support: emp.support_size(),
                }
            }
            JobKind::Tv { rounds, replicas } => {
                let mrf = match model {
                    BuiltModel::Mrf(mrf) => mrf,
                    BuiltModel::Csp { .. } => {
                        return Err(SpecError::Unsupported {
                            message: "the tv job needs an MRF (exact enumeration)".into(),
                        })
                    }
                };
                let exact = Enumeration::new(mrf).map_err(|e| SpecError::Unsupported {
                    message: format!("the tv job cannot enumerate this model exactly: {e}"),
                })?;
                let tv = self
                    .sampler_builder(model)
                    .tv_observed(&exact, rounds, replicas, progress)?;
                JobOutput::Tv {
                    rounds,
                    replicas,
                    tv,
                }
            }
            JobKind::Coalescence { trials, max_rounds } => {
                let report = self
                    .sampler_builder(model)
                    .coalescence_observed(trials, max_rounds, progress)?;
                JobOutput::Coalescence {
                    trials,
                    mean_rounds: report.summary.mean,
                    std_error: report.summary.std_error,
                    timeouts: report.timeouts,
                }
            }
            JobKind::Sample { rounds, count } => {
                let q = domain_size(model);
                if count == 1 {
                    // One replica rides the plain sampler path, so
                    // single-sample jobs work on CSPs too.
                    let mut sampler = self
                        .sampler_builder(model)
                        .burn_in(self.burn_in.unwrap_or(0))
                        .build()?;
                    let slice = (rounds / 16).max(1);
                    let mut ran = 0usize;
                    while ran < rounds {
                        let now = slice.min(rounds - ran);
                        sampler.run(now);
                        ran += now;
                        if progress(ran as u64, rounds.max(1) as u64).is_break() {
                            break;
                        }
                    }
                    if rounds == 0 {
                        let _ = progress(1, 1);
                    }
                    JobOutput::Sample {
                        rounds: sampler.round(),
                        states: vec![StateBlob::pack(sampler.state(), q)],
                    }
                } else {
                    let mut replicas = self
                        .sampler_builder(model)
                        .burn_in(self.burn_in.unwrap_or(0))
                        .replicas(count)
                        .build()?;
                    let slice = (rounds / 16).max(1);
                    let mut ran = 0usize;
                    while ran < rounds {
                        let now = slice.min(rounds - ran);
                        replicas.run(now);
                        ran += now;
                        if progress(ran as u64, rounds.max(1) as u64).is_break() {
                            break;
                        }
                    }
                    if rounds == 0 {
                        let _ = progress(1, 1);
                    }
                    JobOutput::Sample {
                        rounds: replicas.round(),
                        states: (0..count)
                            .map(|b| StateBlob::pack(replicas.state(b), q))
                            .collect(),
                    }
                }
            }
            JobKind::Stream { rounds, every } => {
                let q = domain_size(model);
                let mut sampler = self
                    .sampler_builder(model)
                    .burn_in(self.burn_in.unwrap_or(0))
                    .build()?;
                let n = sampler.state().len();
                let mut ran = 0usize;
                let mut shipped = 0u64;
                while ran < rounds {
                    // Slices of `every` rounds: each boundary is a
                    // delivery point, and the last (possibly partial)
                    // slice ships the final configuration.
                    let now = every.min(rounds - ran);
                    sampler.run(now);
                    ran += now;
                    if states(sampler.round(), StateBlob::pack(sampler.state(), q)).is_break() {
                        break;
                    }
                    shipped += 1;
                    if progress(ran as u64, rounds.max(1) as u64).is_break() {
                        break;
                    }
                }
                if rounds == 0 {
                    // Degenerate stream: deliver the start state once.
                    if states(sampler.round(), StateBlob::pack(sampler.state(), q)).is_continue() {
                        shipped += 1;
                    }
                    let _ = progress(1, 1);
                }
                JobOutput::Stream {
                    rounds: sampler.round(),
                    every,
                    n,
                    states: shipped,
                    fingerprint: fingerprint(sampler.state()),
                }
            }
        };
        Ok(JobResult {
            spec: self.to_string(),
            output,
            elapsed_secs: started.elapsed().as_secs_f64(),
        })
    }
}

impl fmt::Display for JobSpec {
    /// The canonical form: keys in fixed order, unset keys omitted.
    /// Parsing the printed form reproduces the identical spec.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph={} model={}", self.graph, self.model)?;
        if let Some(a) = self.algorithm {
            write!(f, " algorithm={a}")?;
        }
        if let Some(s) = self.scheduler {
            write!(f, " scheduler={s}")?;
        }
        if let Some(b) = self.backend {
            write!(f, " backend={b}")?;
        }
        if let Some(p) = self.partitioner {
            write!(f, " partitioner={p}")?;
        }
        if let Some(h) = self.hotpath {
            write!(f, " hotpath={h}")?;
        }
        if let Some(s) = self.seed {
            write!(f, " seed={s}")?;
        }
        if let Some(s) = self.graph_seed {
            write!(f, " graph-seed={s}")?;
        }
        if let Some(b) = self.burn_in {
            write!(f, " burn-in={b}")?;
        }
        if let Some(j) = self.job {
            write!(f, " job={j}")?;
        }
        Ok(())
    }
}

impl FromStr for JobSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut graph = None;
        let mut model = None;
        let mut algorithm = None;
        let mut scheduler = None;
        let mut backend = None;
        let mut partitioner = None;
        let mut hotpath = None;
        let mut seed = None;
        let mut graph_seed = None;
        let mut burn_in = None;
        let mut job = None;

        fn set<T>(slot: &mut Option<T>, key: &str, value: T) -> Result<(), SpecError> {
            if slot.is_some() {
                return Err(SpecError::DuplicateKey {
                    key: key.to_string(),
                });
            }
            *slot = Some(value);
            Ok(())
        }

        for token in s.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| SpecError::NotKeyValue {
                    token: token.to_string(),
                })?;
            match key {
                "graph" => set(&mut graph, key, GraphSpec::parse(value)?)?,
                "model" => set(&mut model, key, ModelSpec::parse(value)?)?,
                "algorithm" => set(
                    &mut algorithm,
                    key,
                    value.parse::<Algorithm>().map_err(|m| bad(key, m))?,
                )?,
                "scheduler" => set(
                    &mut scheduler,
                    key,
                    value.parse::<Sched>().map_err(|m| bad(key, m))?,
                )?,
                "backend" => set(
                    &mut backend,
                    key,
                    value.parse::<Backend>().map_err(|m| bad(key, m))?,
                )?,
                "partitioner" => set(
                    &mut partitioner,
                    key,
                    value.parse::<Partitioner>().map_err(|m| bad(key, m))?,
                )?,
                "hotpath" => set(
                    &mut hotpath,
                    key,
                    value.parse::<HotPath>().map_err(|m| bad(key, m))?,
                )?,
                "seed" => set(&mut seed, key, parse_int::<u64>(key, value)?)?,
                "graph-seed" => set(&mut graph_seed, key, parse_int::<u64>(key, value)?)?,
                "burn-in" => set(&mut burn_in, key, parse_int::<usize>(key, value)?)?,
                "job" => set(&mut job, key, JobKind::parse(value)?)?,
                other => {
                    return Err(SpecError::UnknownKey {
                        key: other.to_string(),
                    })
                }
            }
        }

        Ok(JobSpec {
            graph: graph.ok_or(SpecError::MissingKey { key: "graph" })?,
            model: model.ok_or(SpecError::MissingKey { key: "model" })?,
            algorithm,
            scheduler,
            backend,
            partitioner,
            hotpath,
            seed,
            graph_seed,
            burn_in,
            job,
        })
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// FNV-1a over the configuration — a stable fingerprint for comparing
/// trajectories without shipping whole states around.
pub fn fingerprint(state: &[Spin]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &s in state {
        for byte in s.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Boundary-communication totals of a sharded run (a `PartialEq`
/// condensation of [`CommStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommSummary {
    /// Rounds accounted for.
    pub rounds_seen: u64,
    /// Total boundary messages.
    pub total_messages: u64,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Messages whose state actually changed.
    pub total_changed: u64,
}

impl CommSummary {
    /// Condenses a [`CommStats`] record.
    pub fn of(stats: &CommStats) -> Self {
        CommSummary {
            rounds_seen: stats.rounds_seen(),
            total_messages: stats.total_messages(),
            total_bytes: stats.total_bytes(),
            total_changed: stats.total_changed(),
        }
    }
}

/// What a job measured. Everything here is a deterministic function of
/// the spec (the determinism contract extended to jobs), so equality
/// across runs — or across service workers — is exact.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutput {
    /// A `run` job: one trajectory's endpoint.
    Run {
        /// Total rounds executed (burn-in included).
        rounds: u64,
        /// Number of vertices.
        n: usize,
        /// Whether the final configuration is feasible.
        feasible: bool,
        /// FNV-1a fingerprint of the final configuration.
        fingerprint: u64,
        /// Boundary-communication totals (sharded backend only).
        comm: Option<CommSummary>,
    },
    /// A `distribution` job: the empirical distribution's shape.
    Distribution {
        /// Replicas recorded.
        replicas: u64,
        /// Distinct configurations observed.
        support: usize,
    },
    /// A `tv` job: empirical distance to exact.
    Tv {
        /// Rounds per replica.
        rounds: usize,
        /// Replicas.
        replicas: usize,
        /// Empirical total-variation distance to the exact Gibbs
        /// distribution.
        tv: f64,
    },
    /// A `coalescence` job: grand-coupling summary.
    Coalescence {
        /// Trials run.
        trials: usize,
        /// Mean coalescence round over completed trials.
        mean_rounds: f64,
        /// Standard error of the mean.
        std_error: f64,
        /// Trials that exhausted the budget.
        timeouts: usize,
    },
    /// A `sample` job: the final configurations themselves — what the
    /// paper's samplers exist to produce.
    Sample {
        /// Total rounds executed per replica (burn-in included).
        rounds: u64,
        /// One packed configuration per replica, in replica order.
        states: Vec<StateBlob>,
    },
    /// A `stream` job's summary: the per-round states went out as
    /// [`JobEvent::State`](crate::service::JobEvent::State) events;
    /// the result records the stream's shape and the final
    /// fingerprint for cross-checking against a `run` job.
    Stream {
        /// Total rounds executed (burn-in included).
        rounds: u64,
        /// Rounds between deliveries.
        every: usize,
        /// Number of vertices per delivered state.
        n: usize,
        /// States delivered.
        states: u64,
        /// FNV-1a fingerprint of the final configuration.
        fingerprint: u64,
    },
}

impl JobOutput {
    /// The one scalar a sweep summarizes per job, chosen per kind:
    /// `run` → feasibility as 1.0/0.0 (so a sweep's mean is the
    /// feasibility rate), `distribution` → support size, `tv` → the
    /// TV distance, `coalescence` → mean coalescence rounds. A
    /// deterministic function of the output, so sweep summaries are
    /// covered by the determinism contract.
    #[must_use]
    pub fn metric(&self) -> f64 {
        match *self {
            JobOutput::Run { feasible, .. } => {
                if feasible {
                    1.0
                } else {
                    0.0
                }
            }
            JobOutput::Distribution { support, .. } => support as f64,
            JobOutput::Tv { tv, .. } => tv,
            JobOutput::Coalescence { mean_rounds, .. } => mean_rounds,
            JobOutput::Sample { ref states, .. } => states.len() as f64,
            JobOutput::Stream { states, .. } => states as f64,
        }
    }
}

impl fmt::Display for JobOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutput::Run {
                rounds,
                n,
                feasible,
                fingerprint,
                comm,
            } => {
                write!(
                    f,
                    "run: rounds={rounds} n={n} feasible={feasible} fingerprint={fingerprint:016x}"
                )?;
                if let Some(c) = comm {
                    write!(
                        f,
                        " messages={} bytes={} changed={}",
                        c.total_messages, c.total_bytes, c.total_changed
                    )?;
                }
                Ok(())
            }
            JobOutput::Distribution { replicas, support } => {
                write!(f, "distribution: replicas={replicas} support={support}")
            }
            JobOutput::Tv {
                rounds,
                replicas,
                tv,
            } => write!(f, "tv: rounds={rounds} replicas={replicas} tv={tv:.6}"),
            JobOutput::Coalescence {
                trials,
                mean_rounds,
                std_error,
                timeouts,
            } => write!(
                f,
                "coalescence: trials={trials} mean_rounds={mean_rounds:.2} \
                 se={std_error:.2} timeouts={timeouts}"
            ),
            JobOutput::Sample { rounds, states } => {
                // Human form: shape only — the blobs themselves go to
                // `--out`, not the terminal.
                let (n, bytes) = states
                    .first()
                    .map(|b| (b.n(), b.byte_len()))
                    .unwrap_or((0, 0));
                write!(
                    f,
                    "sample: rounds={rounds} count={} n={n} bytes-per-state={bytes}",
                    states.len()
                )
            }
            JobOutput::Stream {
                rounds,
                every,
                n,
                states,
                fingerprint,
            } => write!(
                f,
                "stream: rounds={rounds} every={every} n={n} states={states} \
                 fingerprint={fingerprint:016x}"
            ),
        }
    }
}

/// A finished job: the canonical spec it ran, what it measured, and
/// how long it took. Equality compares the spec and the output — the
/// wall-clock field is excluded, so bit-identity assertions between a
/// service run and a direct run are exact.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The canonical form of the spec that ran.
    pub spec: String,
    /// What the job measured.
    pub output: JobOutput,
    /// Wall-clock seconds (excluded from equality).
    pub elapsed_secs: f64,
}

impl PartialEq for JobResult {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec && self.output == other.output
    }
}

// ---------------------------------------------------------------------
// Sweeps: one spec line, many deterministic jobs
// ---------------------------------------------------------------------

/// Cap on the jobs one sweep line may expand into — a typo like
/// `seeds=0..999999999` must be a parse error, not a queue flood.
pub const MAX_SWEEP_JOBS: usize = 4096;

/// Which model parameter a `sweep=` clause varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepParam {
    /// The inverse temperature of `ising` / `potts`.
    Beta,
    /// The fugacity of `hardcore`.
    Lambda,
}

impl SweepParam {
    /// The spec-string name.
    pub fn name(self) -> &'static str {
        match self {
            SweepParam::Beta => "beta",
            SweepParam::Lambda => "lambda",
        }
    }
}

impl fmt::Display for SweepParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A `sweep=param:start..end:step` clause: an inclusive arithmetic
/// ladder of model-parameter values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamSweep {
    /// The swept parameter.
    pub param: SweepParam,
    /// First value (must be > 0: every swept model requires it).
    pub start: f64,
    /// Last value covered (inclusive up to float rounding).
    pub end: f64,
    /// Ladder step (must be > 0).
    pub step: f64,
}

impl ParamSweep {
    fn parse(value: &str) -> Result<Self, SpecError> {
        const KEY: &str = "sweep";
        let (name, rest) = value.split_once(':').ok_or_else(|| {
            bad(
                KEY,
                format!("expected param:start..end:step, got {value:?}"),
            )
        })?;
        let param = match name {
            "beta" => SweepParam::Beta,
            "lambda" => SweepParam::Lambda,
            other => {
                return Err(bad(
                    KEY,
                    format!("unknown sweep parameter {other:?} (expected beta | lambda)"),
                ))
            }
        };
        let (range, step) = rest
            .rsplit_once(':')
            .ok_or_else(|| bad(KEY, format!("expected start..end:step, got {rest:?}")))?;
        let (start, end) = range
            .split_once("..")
            .ok_or_else(|| bad(KEY, format!("expected start..end, got {range:?}")))?;
        let start = parse_int::<f64>(KEY, start)?;
        let end = parse_int::<f64>(KEY, end)?;
        let step = parse_int::<f64>(KEY, step)?;
        if !(start > 0.0) || !start.is_finite() {
            return Err(bad(KEY, "sweep start must be a finite number > 0"));
        }
        if !(step > 0.0) || !step.is_finite() {
            return Err(bad(KEY, "sweep step must be a finite number > 0"));
        }
        if !(end >= start) || !end.is_finite() {
            return Err(bad(KEY, "sweep needs start <= end"));
        }
        let sweep = ParamSweep {
            param,
            start,
            end,
            step,
        };
        if sweep.len() > MAX_SWEEP_JOBS {
            return Err(bad(
                KEY,
                format!(
                    "sweep expands to {} values (cap {MAX_SWEEP_JOBS})",
                    sweep.len()
                ),
            ));
        }
        Ok(sweep)
    }

    /// Number of ladder values.
    #[must_use]
    pub fn len(&self) -> usize {
        // A hair of slack so 0.1..0.5:0.1 yields five values despite
        // binary rounding of the quotient.
        ((self.end - self.start) / self.step + 1e-9).floor() as usize + 1
    }

    /// Whether the ladder is empty (it never is — `len() >= 1`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ladder values, computed as `start + i·step` (no running
    /// accumulation, so every value is a pure function of its index).
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.start + i as f64 * self.step)
            .collect()
    }
}

impl fmt::Display for ParamSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}..{}:{}",
            self.param, self.start, self.end, self.step
        )
    }
}

/// A spec line that may expand into many jobs: a base [`JobSpec`] plus
/// the sweep clauses `seeds=a..b` (half-open seed range) and
/// `sweep=param:start..end:step` (model-parameter ladder). Expansion
/// ([`SweepSpec::expand`]) is deterministic — member `i` is a plain
/// [`JobSpec`] equal to what a hand-written single-job line would
/// produce, so sweep answers are covered by the bit-identity contract.
///
/// A line with neither clause is a single job ([`SweepSpec::is_single`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// The job template (its `seed=` / model parameters are what the
    /// clauses override per member).
    pub base: JobSpec,
    /// `seeds=a..b`: member seeds `a, a+1, .., b-1`.
    pub seeds: Option<(u64, u64)>,
    /// `sweep=param:start..end:step`: the parameter ladder.
    pub sweep: Option<ParamSweep>,
}

impl SweepSpec {
    /// Wraps a single job (no sweep clauses).
    pub fn single(base: JobSpec) -> Self {
        SweepSpec {
            base,
            seeds: None,
            sweep: None,
        }
    }

    /// Whether the line is a plain single job.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.seeds.is_none() && self.sweep.is_none()
    }

    /// How many jobs the line expands into.
    #[must_use]
    pub fn job_count(&self) -> usize {
        let seeds = self.seeds.map_or(1, |(a, b)| (b - a) as usize);
        let values = self.sweep.map_or(1, |s| s.len());
        seeds * values
    }

    /// Expands into member jobs, seed-major: member `i` covers seed
    /// index `i / values` and ladder index `i % values`. Every member
    /// is an ordinary [`JobSpec`]; running it alone gives the same
    /// answer as running it inside the sweep.
    #[must_use]
    pub fn expand(&self) -> Vec<JobSpec> {
        let seeds: Vec<Option<u64>> = match self.seeds {
            Some((a, b)) => (a..b).map(Some).collect(),
            None => vec![None],
        };
        let values: Vec<Option<(SweepParam, f64)>> = match self.sweep {
            Some(s) => s.values().into_iter().map(|v| Some((s.param, v))).collect(),
            None => vec![None],
        };
        let mut jobs = Vec::with_capacity(seeds.len() * values.len());
        for &seed in &seeds {
            for &value in &values {
                let mut spec = self.base.clone();
                if let Some(seed) = seed {
                    spec.seed = Some(seed);
                }
                if let Some((param, v)) = value {
                    spec.model = match (param, spec.model) {
                        (SweepParam::Beta, ModelSpec::Ising { .. }) => ModelSpec::Ising { beta: v },
                        (SweepParam::Beta, ModelSpec::Potts { q, .. }) => {
                            ModelSpec::Potts { q, beta: v }
                        }
                        (SweepParam::Lambda, ModelSpec::Hardcore { .. }) => {
                            ModelSpec::Hardcore { lambda: v }
                        }
                        // Parse-time validation rejects the mismatch.
                        (_, m) => m,
                    };
                }
                jobs.push(spec);
            }
        }
        jobs
    }
}

impl fmt::Display for SweepSpec {
    /// Canonical form: the base spec, then `seeds=`, then `sweep=`.
    /// Parsing the printed form reproduces the identical sweep.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        if let Some((a, b)) = self.seeds {
            write!(f, " seeds={a}..{b}")?;
        }
        if let Some(s) = self.sweep {
            write!(f, " sweep={s}")?;
        }
        Ok(())
    }
}

impl FromStr for SweepSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut seeds: Option<(u64, u64)> = None;
        let mut sweep: Option<ParamSweep> = None;
        let mut base_tokens: Vec<&str> = Vec::new();
        for token in s.split_whitespace() {
            if let Some(value) = token.strip_prefix("seeds=") {
                if seeds.is_some() {
                    return Err(SpecError::DuplicateKey {
                        key: "seeds".to_string(),
                    });
                }
                let (a, b) = value.split_once("..").ok_or_else(|| {
                    bad("seeds", format!("expected a half-open a..b, got {value:?}"))
                })?;
                let a = parse_int::<u64>("seeds", a)?;
                let b = parse_int::<u64>("seeds", b)?;
                if b <= a {
                    return Err(bad("seeds", format!("empty seed range {a}..{b}")));
                }
                if (b - a) as usize > MAX_SWEEP_JOBS {
                    return Err(bad(
                        "seeds",
                        format!("{} seeds requested (cap {MAX_SWEEP_JOBS})", b - a),
                    ));
                }
                seeds = Some((a, b));
            } else if let Some(value) = token.strip_prefix("sweep=") {
                if sweep.is_some() {
                    return Err(SpecError::DuplicateKey {
                        key: "sweep".to_string(),
                    });
                }
                sweep = Some(ParamSweep::parse(value)?);
            } else {
                base_tokens.push(token);
            }
        }
        let base: JobSpec = base_tokens.join(" ").parse()?;
        if let Some(s) = sweep {
            let compatible = matches!(
                (s.param, base.model),
                (SweepParam::Beta, ModelSpec::Ising { .. })
                    | (SweepParam::Beta, ModelSpec::Potts { .. })
                    | (SweepParam::Lambda, ModelSpec::Hardcore { .. })
            );
            if !compatible {
                return Err(bad(
                    "sweep",
                    format!("model {} has no {} parameter", base.model, s.param),
                ));
            }
        }
        if seeds.is_some() && base.seed.is_some() {
            return Err(bad("seeds", "seeds=a..b replaces seed=, give one of them"));
        }
        let sweep = SweepSpec { base, seeds, sweep };
        if sweep.job_count() > MAX_SWEEP_JOBS {
            return Err(bad(
                "sweep",
                format!(
                    "line expands to {} jobs (cap {MAX_SWEEP_JOBS})",
                    sweep.job_count()
                ),
            ));
        }
        Ok(sweep)
    }
}

/// Per-sweep aggregate of the member jobs' [`JobOutput::metric`]s.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepSummary {
    /// Member jobs aggregated.
    pub jobs: usize,
    /// Mean metric.
    pub mean: f64,
    /// Smallest metric.
    pub min: f64,
    /// Largest metric.
    pub max: f64,
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep: jobs={} mean={:.6} min={:.6} max={:.6}",
            self.jobs, self.mean, self.min, self.max
        )
    }
}

/// All results of one expanded sweep line: the member results in
/// expansion order plus the metric summary. A deterministic function
/// of the sweep spec (every member is), so sweep answers can be
/// asserted bit-identical across services, backends, and the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepResult {
    /// The canonical sweep line.
    pub spec: String,
    /// Member results, indexed by expansion order.
    pub results: Vec<JobResult>,
    /// Aggregate over the members' [`JobOutput::metric`]s.
    pub summary: SweepSummary,
}

impl SweepResult {
    /// Aggregates member results (in expansion order) into a sweep
    /// result.
    ///
    /// # Panics
    /// Panics if `results` is empty (expansion always yields ≥ 1 job).
    #[must_use]
    pub fn aggregate(spec: String, results: Vec<JobResult>) -> Self {
        assert!(!results.is_empty(), "a sweep has at least one member");
        let metrics: Vec<f64> = results.iter().map(|r| r.output.metric()).collect();
        let mean = metrics.iter().sum::<f64>() / metrics.len() as f64;
        let min = metrics.iter().copied().fold(f64::INFINITY, f64::min);
        let max = metrics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        SweepResult {
            spec,
            summary: SweepSummary {
                jobs: results.len(),
                mean,
                min,
                max,
            },
            results,
        }
    }
}

// ---------------------------------------------------------------------
// The scenario registry
// ---------------------------------------------------------------------

/// Which axis of the workload space a registry entry names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// A `graph=` family.
    Graph,
    /// A `model=` scenario.
    Model,
    /// An `algorithm=` chain.
    Algorithm,
    /// A `scheduler=` choice.
    Scheduler,
    /// A `backend=` executor.
    Backend,
    /// A `partitioner=` choice.
    Partitioner,
    /// A `job=` measurement.
    Job,
    /// A `seeds=` sweep clause.
    Seeds,
    /// A `sweep=` parameter-ladder clause.
    Sweep,
}

impl ScenarioKind {
    /// The spec key this kind appears under.
    pub fn key(self) -> &'static str {
        match self {
            ScenarioKind::Graph => "graph",
            ScenarioKind::Model => "model",
            ScenarioKind::Algorithm => "algorithm",
            ScenarioKind::Scheduler => "scheduler",
            ScenarioKind::Backend => "backend",
            ScenarioKind::Partitioner => "partitioner",
            ScenarioKind::Job => "job",
            ScenarioKind::Seeds => "seeds",
            ScenarioKind::Sweep => "sweep",
        }
    }
}

/// One recognized scenario: its syntax and a one-line summary.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioEntry {
    /// Which axis the entry belongs to.
    pub kind: ScenarioKind,
    /// The accepted syntax, e.g. `torus:<rows>x<cols>`.
    pub syntax: &'static str,
    /// What the scenario is.
    pub summary: &'static str,
}

/// The registry of every scenario the spec grammar accepts — the data
/// behind `lsl list scenarios`, and the sweep source of the round-trip
/// property tests.
pub struct ScenarioRegistry;

impl ScenarioRegistry {
    /// Every recognized scenario, grouped by kind in declaration order.
    pub fn entries() -> &'static [ScenarioEntry] {
        use ScenarioKind as K;
        const E: &[ScenarioEntry] = &[
            // graphs
            ScenarioEntry {
                kind: K::Graph,
                syntax: "path:<n>",
                summary: "path P_n",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "cycle:<n>",
                summary: "cycle C_n (n >= 3)",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "complete:<n>",
                summary: "complete graph K_n",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "complete-bipartite:<a>x<b>",
                summary: "complete bipartite K_{a,b}",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "star:<n>",
                summary: "star K_{1,n}",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "grid:<rows>x<cols>",
                summary: "grid, 4-neighborhood, no wraparound",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "torus:<rows>x<cols>",
                summary: "torus (grid with wraparound; sides >= 3)",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "hypercube:<d>",
                summary: "d-dimensional hypercube on 2^d vertices",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "book:<pages>",
                summary: "triangles sharing one edge (unbounded degree)",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "caterpillar:<spine>x<legs>",
                summary: "spine path with pendant legs",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "gnp:n=<n>,p=<p>",
                summary: "Erdos-Renyi G(n,p), seeded by graph-seed",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "random-regular:n=<n>,d=<d>",
                summary: "random simple d-regular graph, seeded",
            },
            ScenarioEntry {
                kind: K::Graph,
                syntax: "random-tree:n=<n>",
                summary: "uniform random labeled tree, seeded",
            },
            // models
            ScenarioEntry {
                kind: K::Model,
                syntax: "coloring:q=<q>",
                summary: "uniform proper q-colorings",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "list-coloring:q=<q>,size=<k>",
                summary: "list colorings, pseudorandom k-lists from graph-seed",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "hardcore:lambda=<l>",
                summary: "hardcore model, weight lambda^|I|",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "independent-set",
                summary: "uniform independent sets (hardcore, lambda=1)",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "vertex-cover",
                summary: "uniform vertex covers",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "ising:beta=<b>",
                summary: "Ising model (beta>1 ferro, beta<1 antiferro)",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "potts:q=<q>,beta=<b>",
                summary: "q-state Potts model",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "dominating-set",
                summary: "uniform dominating sets (weighted CSP)",
            },
            ScenarioEntry {
                kind: K::Model,
                syntax: "mis",
                summary: "uniform maximal independent sets (weighted CSP)",
            },
            // algorithms
            ScenarioEntry {
                kind: K::Algorithm,
                syntax: "local-metropolis",
                summary: "Algorithm 2 (default on MRFs)",
            },
            ScenarioEntry {
                kind: K::Algorithm,
                syntax: "local-metropolis-no-rule3",
                summary: "E9 ablation (wrong chain, MRF only)",
            },
            ScenarioEntry {
                kind: K::Algorithm,
                syntax: "luby-glauber",
                summary: "Algorithm 1 (default on CSPs)",
            },
            ScenarioEntry {
                kind: K::Algorithm,
                syntax: "glauber",
                summary: "sequential heat-bath baseline",
            },
            ScenarioEntry {
                kind: K::Algorithm,
                syntax: "metropolis",
                summary: "sequential single-site Metropolis baseline",
            },
            // schedulers
            ScenarioEntry {
                kind: K::Scheduler,
                syntax: "luby",
                summary: "the paper's Luby step (default)",
            },
            ScenarioEntry {
                kind: K::Scheduler,
                syntax: "singleton",
                summary: "one uniform vertex per round",
            },
            ScenarioEntry {
                kind: K::Scheduler,
                syntax: "bernoulli:<p>",
                summary: "Bernoulli volunteering, p in (0, 1]",
            },
            ScenarioEntry {
                kind: K::Scheduler,
                syntax: "chromatic",
                summary: "greedy-coloring class scan",
            },
            // backends
            ScenarioEntry {
                kind: K::Backend,
                syntax: "sequential",
                summary: "one vertex after another (default)",
            },
            ScenarioEntry {
                kind: K::Backend,
                syntax: "parallel:<threads>",
                summary: "scoped-thread fork-join (0 = auto)",
            },
            ScenarioEntry {
                kind: K::Backend,
                syntax: "sharded:<shards>",
                summary: "owner-computes shards with boundary exchange (0 = auto)",
            },
            ScenarioEntry {
                kind: K::Backend,
                syntax: "cluster:<shards>",
                summary: "cross-process worker fleet (in-process fallback when run locally)",
            },
            // partitioners
            ScenarioEntry {
                kind: K::Partitioner,
                syntax: "contiguous",
                summary: "balanced contiguous index blocks (default)",
            },
            ScenarioEntry {
                kind: K::Partitioner,
                syntax: "bfs",
                summary: "BFS-grown regions",
            },
            ScenarioEntry {
                kind: K::Partitioner,
                syntax: "greedy",
                summary: "greedy edge-cut minimization",
            },
            // jobs
            ScenarioEntry {
                kind: K::Job,
                syntax: "run:rounds=<n>",
                summary: "advance one trajectory (default, rounds=100)",
            },
            ScenarioEntry {
                kind: K::Job,
                syntax: "distribution:rounds=<n>,replicas=<b>",
                summary: "empirical distribution of b iid replicas (MRF)",
            },
            ScenarioEntry {
                kind: K::Job,
                syntax: "tv:rounds=<n>,replicas=<b>",
                summary: "empirical TV to exact Gibbs (small MRF)",
            },
            ScenarioEntry {
                kind: K::Job,
                syntax: "coalescence:trials=<t>,max-rounds=<m>",
                summary: "grand-coupling coalescence rounds (MRF)",
            },
            ScenarioEntry {
                kind: K::Job,
                syntax: "sample:rounds=<n>,count=<k>",
                summary: "ship k final configurations (defaults 100,1)",
            },
            ScenarioEntry {
                kind: K::Job,
                syntax: "stream:rounds=<n>,every=<k>",
                summary: "stream the state every k rounds (defaults 100,1)",
            },
            // sweep clauses
            ScenarioEntry {
                kind: K::Seeds,
                syntax: "<a>..<b>",
                summary: "expand the line into one job per seed in [a, b)",
            },
            ScenarioEntry {
                kind: K::Sweep,
                syntax: "<beta|lambda>:<start>..<end>:<step>",
                summary: "expand into one job per model-parameter value",
            },
        ];
        E
    }

    /// A ready-to-print listing, grouped by kind.
    pub fn render() -> String {
        let mut out = String::new();
        let mut last: Option<ScenarioKind> = None;
        for e in Self::entries() {
            if last != Some(e.kind) {
                if last.is_some() {
                    out.push('\n');
                }
                out.push_str(&format!("{}=\n", e.kind.key()));
                last = Some(e.kind);
            }
            out.push_str(&format!("  {:42} {}\n", e.syntax, e.summary));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> JobSpec {
        s.parse::<JobSpec>().unwrap()
    }

    #[test]
    fn parses_the_readme_spec() {
        let spec = parse(
            "graph=torus:8x8 model=ising:beta=0.4 algorithm=local-metropolis \
             backend=sharded:4 seed=7 job=run:rounds=200",
        );
        assert_eq!(spec.graph, GraphSpec::Torus { rows: 8, cols: 8 });
        assert_eq!(spec.model, ModelSpec::Ising { beta: 0.4 });
        assert_eq!(spec.algorithm, Some(Algorithm::LocalMetropolis));
        assert_eq!(spec.backend, Some(Backend::Sharded { shards: 4 }));
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.job, Some(JobKind::Run { rounds: 200 }));
    }

    #[test]
    fn print_parse_is_identity() {
        for s in [
            "graph=cycle:12 model=coloring:q=5",
            "graph=torus:8x8 model=ising:beta=0.4 algorithm=luby-glauber \
             scheduler=bernoulli:0.25 backend=parallel:3 seed=9 burn-in=10 \
             job=run:rounds=50",
            "graph=gnp:n=32,p=0.2 model=hardcore:lambda=1.5 graph-seed=3 \
             job=coalescence:trials=2,max-rounds=100000",
            "graph=random-regular:n=16,d=4 model=potts:q=3,beta=0.5 \
             backend=sharded:0 partitioner=bfs",
            "graph=path:6 model=dominating-set job=run:rounds=40",
            "graph=cycle:7 model=mis algorithm=luby-glauber",
            "graph=grid:4x5 model=list-coloring:q=8,size=4 seed=2",
        ] {
            let spec = parse(s);
            let printed = spec.to_string();
            assert_eq!(parse(&printed), spec, "round-trip failed for {s:?}");
            assert_eq!(printed.parse::<JobSpec>().unwrap().to_string(), printed);
        }
    }

    #[test]
    fn typed_errors_cover_the_failure_modes() {
        assert!(matches!(
            "graph=torus:8x8".parse::<JobSpec>(),
            Err(SpecError::MissingKey { key: "model" })
        ));
        assert!(matches!(
            "model=mis".parse::<JobSpec>(),
            Err(SpecError::MissingKey { key: "graph" })
        ));
        assert!(matches!(
            "graph=torus:8x8 model=mis frobnicate=1".parse::<JobSpec>(),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            "graph=torus:8x8 model=mis graph=cycle:5".parse::<JobSpec>(),
            Err(SpecError::DuplicateKey { .. })
        ));
        assert!(matches!(
            "graph=moebius:9 model=mis".parse::<JobSpec>(),
            Err(SpecError::UnknownScenario {
                kind: "graph family",
                ..
            })
        ));
        assert!(matches!(
            "graph=torus:2x8 model=mis".parse::<JobSpec>(),
            Err(SpecError::BadValue { .. })
        ));
        // Empty vertex sets are parse errors, not worker panics: a
        // replica job on a 0-vertex model would assert in the engine.
        for empty in [
            "graph=path:0",
            "graph=complete:0",
            "graph=grid:0x4",
            "graph=caterpillar:0x2",
            "graph=gnp:n=0,p=0.5",
            "graph=random-tree:n=0",
        ] {
            assert!(
                matches!(
                    format!("{empty} model=coloring:q=3").parse::<JobSpec>(),
                    Err(SpecError::BadValue { .. })
                ),
                "{empty} should be rejected at parse time"
            );
        }
        // Hypercube dimensions are parsed as u32 (no usize wraparound
        // past the cap).
        assert!(matches!(
            "graph=hypercube:4294967296 model=mis".parse::<JobSpec>(),
            Err(SpecError::BadValue { .. })
        ));
        assert!(matches!(
            "graph=torus:8x8 model=ising:beta=0.4 nonsense".parse::<JobSpec>(),
            Err(SpecError::NotKeyValue { .. })
        ));
        assert!(matches!(
            "graph=cycle:8 model=potts:q=3".parse::<JobSpec>(),
            Err(SpecError::BadValue { .. }) // missing beta: bad arity
        ));
        // Facade rejections surface as wrapped BuildErrors at run time.
        let spec = parse("graph=cycle:8 model=coloring:q=5 algorithm=glauber scheduler=luby");
        assert!(matches!(spec.run(), Err(SpecError::Combo(_))));
    }

    #[test]
    fn run_job_reports_a_feasible_sample() {
        let spec = parse("graph=torus:6x6 model=coloring:q=12 seed=5 job=run:rounds=60");
        let result = spec.run().unwrap();
        match result.output {
            JobOutput::Run {
                rounds,
                n,
                feasible,
                comm,
                ..
            } => {
                assert_eq!(rounds, 60);
                assert_eq!(n, 36);
                assert!(feasible);
                assert!(comm.is_none(), "flat backends have no comm record");
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn sharded_run_reports_comm_and_matches_sequential() {
        let seq = parse("graph=torus:6x6 model=coloring:q=12 seed=5 job=run:rounds=30");
        let sharded = parse(
            "graph=torus:6x6 model=coloring:q=12 seed=5 backend=sharded:4 \
             partitioner=bfs job=run:rounds=30",
        );
        let a = seq.run().unwrap();
        let b = sharded.run().unwrap();
        let (fa, fb) = match (&a.output, &b.output) {
            (
                JobOutput::Run {
                    fingerprint: fa, ..
                },
                JobOutput::Run {
                    fingerprint: fb,
                    comm,
                    ..
                },
            ) => {
                assert!(comm.expect("sharded has comm").total_messages > 0);
                (*fa, *fb)
            }
            other => panic!("wrong outputs: {other:?}"),
        };
        assert_eq!(fa, fb, "backends must not change the trajectory");
    }

    #[test]
    fn csp_scenarios_run_feasibly() {
        for s in [
            "graph=path:5 model=dominating-set job=run:rounds=60",
            "graph=cycle:6 model=mis job=run:rounds=40",
            "graph=cycle:6 model=mis algorithm=local-metropolis job=run:rounds=40",
        ] {
            let result = parse(s).run().unwrap();
            match result.output {
                JobOutput::Run { feasible, .. } => assert!(feasible, "{s} left feasibility"),
                other => panic!("wrong output: {other:?}"),
            }
        }
    }

    #[test]
    fn tv_job_matches_direct_facade_call() {
        let spec = parse(
            "graph=cycle:4 model=coloring:q=3 algorithm=luby-glauber seed=99 \
             job=tv:rounds=40,replicas=2000",
        );
        let result = spec.run().unwrap();
        let model = spec.build_model();
        let mrf = match &model {
            BuiltModel::Mrf(m) => Arc::clone(m),
            _ => unreachable!(),
        };
        let exact = Enumeration::new(&mrf).unwrap();
        let direct = Sampler::for_mrf(mrf)
            .algorithm(Algorithm::LubyGlauber)
            .seed(99)
            .tv(&exact, 40, 2000)
            .unwrap();
        match result.output {
            JobOutput::Tv { tv, .. } => assert_eq!(tv, direct, "spec and facade diverged"),
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn model_cache_key_distinguishes_seeded_families() {
        let a = parse("graph=gnp:n=16,p=0.3 model=coloring:q=9 seed=1");
        let b = parse("graph=gnp:n=16,p=0.3 model=coloring:q=9 seed=2");
        assert_ne!(a.model_key(), b.model_key(), "gnp depends on the seed");
        let c = parse("graph=torus:4x4 model=coloring:q=9 seed=1");
        let d = parse("graph=torus:4x4 model=coloring:q=9 seed=2");
        assert_eq!(
            c.model_key(),
            d.model_key(),
            "deterministic families share builds"
        );
    }

    #[test]
    fn registry_names_parse_back() {
        // Every graph syntax line's name (before ':') is accepted by the
        // parser (with example arguments) — the registry cannot rot.
        let known_graphs = [
            "path:5",
            "cycle:5",
            "complete:4",
            "complete-bipartite:2x3",
            "star:4",
            "grid:3x4",
            "torus:3x3",
            "hypercube:3",
            "book:3",
            "caterpillar:3x2",
            "gnp:n=8,p=0.5",
            "random-regular:n=8,d=2",
            "random-tree:n=8",
        ];
        let graph_entries = ScenarioRegistry::entries()
            .iter()
            .filter(|e| e.kind == ScenarioKind::Graph)
            .count();
        assert_eq!(known_graphs.len(), graph_entries);
        for g in known_graphs {
            GraphSpec::parse(g).unwrap();
        }
        let known_models = [
            "coloring:q=4",
            "list-coloring:q=4,size=2",
            "hardcore:lambda=1",
            "independent-set",
            "vertex-cover",
            "ising:beta=0.5",
            "potts:q=3,beta=0.5",
            "dominating-set",
            "mis",
        ];
        let model_entries = ScenarioRegistry::entries()
            .iter()
            .filter(|e| e.kind == ScenarioKind::Model)
            .count();
        assert_eq!(known_models.len(), model_entries);
        for m in known_models {
            ModelSpec::parse(m).unwrap();
        }
        assert!(ScenarioRegistry::render().contains("torus:<rows>x<cols>"));
    }

    #[test]
    fn greedy_mis_start_is_feasible() {
        for s in ["graph=cycle:9 model=mis", "graph=star:5 model=mis"] {
            let spec = parse(s);
            match spec.build_model() {
                BuiltModel::Csp { csp, start } => assert!(csp.is_feasible(&start), "{s}"),
                _ => unreachable!(),
            }
        }
    }
}
