//! The sharded backend: owner-computes graph shards with boundary
//! exchange.
//!
//! The paper's model of computation is a *network*: each vertex holds
//! its own state, and per-round cost is the communication crossing
//! edges. The other backends simulate that on one flat address space;
//! this module simulates it honestly. The graph is split into `K`
//! shards by an [`lsl_graph::partition::Partition`]; each shard runs on
//! its own worker with a **private state slab** and advances only the
//! vertices it owns. Between rounds, shards exchange exactly the
//! **boundary-vertex states** the cut demands, through double-buffered
//! frontier buffers, and the exchange volume is recorded per round
//! ([`CommStats`]) so experiments can plot communication against the
//! `O(Δ·cut)` the LOCAL model charges for (experiment E14).
//!
//! # The owner-computes contract
//!
//! Shard `s` maintains valid state for its owned vertices plus a
//! distance-1 **halo** (the ghost copies of neighbors owned
//! elsewhere). One round proceeds as:
//!
//! 1. **Propose** (parallel, per shard): locals are computed for the
//!    owned set *and* the halo. Halo proposals are recomputed rather
//!    than communicated — they are pure functions of
//!    `(master, round, vertex)` by the determinism contract, so owner
//!    and subscriber compute bit-identical values. This is why the
//!    backend requires [`SyncRule::STATE_FREE_PROPOSE`] of rules that
//!    propose (asserted at construction; both synchronous chains
//!    qualify, and the single-site rules have no propose phase).
//! 2. **Resolve** (parallel, per shard): each owned vertex combines its
//!    neighborhood's states and locals — all within the slab's valid
//!    region — into its next spin, written to a per-shard next buffer.
//! 3. **Exchange** (the only cross-shard step): every owner copies its
//!    boundary vertices' new states into per-edge-of-the-shard-graph
//!    frontier buffers, and every subscriber drains the buffers into
//!    its halo. One state crossing one shard boundary is one message.
//!
//! Because every random draw of round `r` is already keyed by
//! `(master, r, vertex-or-edge)`, sharded trajectories are
//! **bit-identical** to the sequential backend by construction, for
//! every partition — property-tested across partitioners, algorithms,
//! and schedulers in `tests/sharded.rs`.

use super::{Packing, RoundCtx, StateSlab, SyncRule};
use lsl_graph::partition::Partition;
use lsl_graph::{Graph, VertexId};
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// The boundary structure a [`Partition`] induces: the directed
/// exchange channels plus, per shard, the halo it subscribes to and
/// the owned frontier it publishes. Built once at construction by both
/// the in-process [`ShardedChain`] and the cross-process cluster layer
/// ([`crate::cluster`]), which must agree on it exactly — the
/// coordinator's communication accounting replays these channels.
pub(crate) struct ExchangePlan {
    /// Directed boundary channels `(owner, subscriber, vertices)`,
    /// vertices ascending, channels in `(owner, subscriber)` order.
    pub(crate) channels: Vec<(usize, usize, Vec<VertexId>)>,
    /// Per-shard halo: vertices owned elsewhere whose state the shard
    /// must mirror (ascending).
    pub(crate) halos: Vec<Vec<VertexId>>,
    /// Per-shard published frontier: owned vertices some other shard's
    /// halo subscribes to (ascending).
    pub(crate) boundary_out: Vec<Vec<VertexId>>,
}

/// Computes the [`ExchangePlan`] of a partition: per-shard distance-1
/// halos and the directed owner→subscriber channels they induce.
pub(crate) fn exchange_plan(g: &Graph, partition: &Partition) -> ExchangePlan {
    let k = partition.num_shards();
    let mut halos = Vec::with_capacity(k);
    let mut plan_map: std::collections::BTreeMap<(usize, usize), Vec<VertexId>> =
        std::collections::BTreeMap::new();
    for s in 0..k {
        let mut halo: Vec<VertexId> = partition
            .members(s)
            .iter()
            .flat_map(|&v| g.neighbors(v))
            .filter(|&u| partition.shard_of(u) != s)
            .collect();
        halo.sort_unstable();
        halo.dedup();
        for &v in &halo {
            plan_map
                .entry((partition.shard_of(v), s))
                .or_default()
                .push(v);
        }
        halos.push(halo);
    }
    let mut boundary_out = vec![Vec::new(); k];
    let channels: Vec<(usize, usize, Vec<VertexId>)> = plan_map
        .into_iter()
        .map(|((owner, subscriber), mut vertices)| {
            vertices.sort_unstable();
            vertices.dedup();
            boundary_out[owner].extend_from_slice(&vertices);
            (owner, subscriber, vertices)
        })
        .collect();
    for frontier in &mut boundary_out {
        frontier.sort_unstable();
        frontier.dedup();
    }
    ExchangePlan {
        channels,
        halos,
        boundary_out,
    }
}

/// One shard's private execution state — the per-shard unit shared by
/// the in-process [`ShardedChain`] and the cross-process cluster
/// workers ([`crate::cluster`]). Both advance the *same* code here,
/// which is what makes distributed trajectories bit-identical to local
/// ones by construction.
pub(crate) struct ShardCore<R: SyncRule> {
    /// Vertices this shard owns (ascending).
    pub(crate) owned: Vec<VertexId>,
    /// Owned ∪ halo: the vertices whose slab entries are maintained
    /// (ascending). Proposals are computed over this whole set.
    pub(crate) active: Vec<VertexId>,
    /// Halo vertices (ascending) — what a remote exchange must feed.
    pub(crate) halo: Vec<VertexId>,
    /// Owned frontier vertices (ascending) — what a remote exchange
    /// must publish.
    pub(crate) boundary_out: Vec<VertexId>,
    /// Full-length private state slab, packed at the model's auto
    /// packing (rules read it through
    /// [`StateView`](super::StateView)). Global indexing keeps the
    /// [`SyncRule`] interface unchanged; only `active` entries are
    /// maintained, everything else goes stale after round 0.
    slab: StateSlab,
    /// Next spins of owned vertices (parallel to `owned`) — the private
    /// half of the double buffering.
    next_owned: Vec<Spin>,
    /// Full-length locals slab; valid at `active` after a propose.
    locals: Vec<R::Local>,
    scratch: R::Scratch,
}

impl<R: SyncRule> ShardCore<R> {
    /// Builds shard `s`'s core from the shared plan and a full start
    /// configuration.
    pub(crate) fn build(
        mrf: &Arc<Mrf>,
        rule: &R,
        partition: &Partition,
        plan: &ExchangePlan,
        s: usize,
        state: &[Spin],
        packing: Packing,
    ) -> Self {
        let owned: Vec<VertexId> = partition.members(s).to_vec();
        let halo = plan.halos[s].clone();
        let mut active = owned.clone();
        active.extend_from_slice(&halo);
        active.sort_unstable();
        let next_owned = vec![0; owned.len()];
        ShardCore {
            owned,
            active,
            halo,
            boundary_out: plan.boundary_out[s].clone(),
            slab: StateSlab::from_spins(packing, state),
            next_owned,
            locals: vec![R::Local::default(); state.len()],
            scratch: rule.make_scratch(mrf),
        }
    }

    /// Phase 1+2 of a synchronous round: propose over owned ∪ halo
    /// (halo proposals recomputed locally — see the module docs), then
    /// resolve the owned vertices into the private next buffer.
    pub(crate) fn propose_and_resolve(&mut self, rule: &R, ctx: &RoundCtx) {
        if R::HAS_PROPOSE {
            for &v in &self.active {
                let mut rng = ctx.propose_rng(v);
                self.locals[v.index()] =
                    rule.propose(ctx, v, &self.slab, rng.raw(), &mut self.scratch);
            }
        }
        for (i, &v) in self.owned.iter().enumerate() {
            let mut rng = ctx.resolve_rng(v);
            self.next_owned[i] = rule.resolve(
                ctx,
                v,
                &self.slab,
                &self.locals,
                rng.raw(),
                &mut self.scratch,
            );
        }
    }

    /// Commits the resolved next states into this shard's slab,
    /// mirroring them into `mirror` (the canonical observer-facing
    /// configuration) when one is kept.
    pub(crate) fn commit(&mut self, mirror: Option<&mut [Spin]>) {
        if let Some(mirror) = mirror {
            for (i, &v) in self.owned.iter().enumerate() {
                self.slab.set(v.index(), self.next_owned[i]);
                mirror[v.index()] = self.next_owned[i];
            }
        } else {
            for (i, &v) in self.owned.iter().enumerate() {
                self.slab.set(v.index(), self.next_owned[i]);
            }
        }
    }

    /// Resolves the active vertex of a single-site round (the caller
    /// must own it) and commits it immediately; returns the new spin.
    /// Single-site rules skip the propose phase, so the
    /// (default-valued) locals slab stands in, exactly as in the flat
    /// backends.
    pub(crate) fn resolve_single(&mut self, rule: &R, ctx: &RoundCtx, v: VertexId) -> Spin {
        let mut rng = ctx.resolve_rng(v);
        let spin = rule.resolve(
            ctx,
            v,
            &self.slab,
            &self.locals,
            rng.raw(),
            &mut self.scratch,
        );
        self.slab.set(v.index(), spin);
        spin
    }

    /// The slab's value at `v` (valid for `active` vertices).
    pub(crate) fn get(&self, v: VertexId) -> Spin {
        self.slab.get(v.index())
    }

    /// Drains one remotely-owned state into the halo; returns whether
    /// the ghost copy actually changed (the `changed` accounting).
    pub(crate) fn set_remote(&mut self, v: VertexId, spin: Spin) -> bool {
        let changed = self.slab.get(v.index()) != spin;
        self.slab.set(v.index(), spin);
        changed
    }

    /// Reads the slab's values of `vs`, in order (e.g. the published
    /// frontier, for the wire).
    pub(crate) fn spins_of(&self, vs: &[VertexId]) -> Vec<Spin> {
        vs.iter().map(|&v| self.slab.get(v.index())).collect()
    }

    /// Refreshes every maintained slab entry from a full configuration.
    pub(crate) fn refresh(&mut self, state: &[Spin]) {
        for &v in &self.active {
            self.slab.set(v.index(), state[v.index()]);
        }
    }
}

/// One directed boundary channel of the shard graph: `owner` sends the
/// states of `vertices` to `subscriber` every round, staged through
/// `buffer` (the shared half of the double buffering — owners fill it
/// after the barrier, subscribers drain it before the next round).
struct Exchange {
    owner: usize,
    subscriber: usize,
    /// Boundary vertices owned by `owner` that `subscriber`'s halo
    /// needs (ascending, so membership is a binary search).
    vertices: Vec<VertexId>,
    /// Packed like the slabs — what crosses a boundary is the packed
    /// representation, which is what the byte accounting charges for.
    buffer: StateSlab,
}

/// Per-round boundary-communication record of a [`ShardedChain`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundComm {
    /// The round the exchange followed.
    pub round: u64,
    /// Boundary-vertex states that crossed a shard boundary (one
    /// vertex-state to one subscriber = one message).
    pub messages: u64,
    /// Payload bytes at the chain's slab packing:
    /// `ceil(messages × bits_per_spin / 8)` — 1 byte per message for
    /// `q ≤ 256`, 1 *bit* per message for two-spin models.
    pub bytes: u64,
    /// Messages whose state actually differed from the subscriber's
    /// ghost copy — the volume a delta-compressing implementation
    /// would send.
    pub changed: u64,
}

/// Per-round records retained before the history stops growing (the
/// running totals keep counting): bounds memory on long-lived chains
/// at ~2 MiB.
const MAX_ROUND_RECORDS: usize = 1 << 16;

/// Boundary-communication accounting of a [`ShardedChain`]: one
/// [`RoundComm`] per executed round (up to a retention cap) plus
/// running totals over *all* rounds.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    rounds: Vec<RoundComm>,
    rounds_seen: u64,
    total_messages: u64,
    total_bytes: u64,
    total_changed: u64,
}

impl CommStats {
    /// The per-round records, oldest first. Only the first `2^16`
    /// rounds since the last [`CommStats::clear`] are retained; the
    /// totals keep counting past the cap.
    pub fn per_round(&self) -> &[RoundComm] {
        &self.rounds
    }

    /// Number of rounds accounted for (including any past the
    /// per-round retention cap).
    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen
    }

    /// Total messages across all accounted rounds.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Total payload bytes across all accounted rounds.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total changed-state messages across all accounted rounds (see
    /// [`RoundComm::changed`]).
    pub fn total_changed(&self) -> u64 {
        self.total_changed
    }

    /// Drops the per-round history and totals (and re-arms the
    /// per-round retention cap).
    pub fn clear(&mut self) {
        self.rounds.clear();
        self.rounds_seen = 0;
        self.total_messages = 0;
        self.total_bytes = 0;
        self.total_changed = 0;
    }

    /// Accounts one round. `pub(crate)` so the cluster coordinator can
    /// replay the exact channel accounting of the in-process exchange.
    pub(crate) fn record(&mut self, round: u64, messages: u64, changed: u64, bits_per_spin: u32) {
        let bytes = (messages * u64::from(bits_per_spin)).div_ceil(8);
        if self.rounds.len() < MAX_ROUND_RECORDS {
            self.rounds.push(RoundComm {
                round,
                messages,
                bytes,
                changed,
            });
        }
        self.rounds_seen += 1;
        self.total_messages += messages;
        self.total_bytes += bytes;
        self.total_changed += changed;
    }
}

/// One chain advanced by owner-computes shards with boundary exchange.
///
/// Bit-identical to [`SyncChain`](super::SyncChain) under
/// [`Backend::Sequential`](super::Backend::Sequential) for every
/// partition, by the determinism contract. The facade builds one of
/// these for `.backend(Backend::Sharded { .. })`.
///
/// Like [`SyncChain`](super::SyncChain), the chain *owns* its model as
/// an `Arc<Mrf>` (constructors take `impl Into<Arc<Mrf>>`), so it is a
/// `'static`, `Send` handle servable from worker threads.
///
/// # Example
/// ```
/// use lsl_core::engine::sharded::ShardedChain;
/// use lsl_core::engine::rules::LocalMetropolisRule;
/// use lsl_graph::partition::Partition;
/// use lsl_graph::generators;
/// use lsl_mrf::models;
/// use std::sync::Arc;
///
/// let mrf = Arc::new(models::proper_coloring(generators::torus(6, 6), 12));
/// let part = Partition::bfs(mrf.graph(), 4);
/// let mut chain = ShardedChain::new(Arc::clone(&mrf), LocalMetropolisRule::new(), 7, part);
/// chain.run(40);
/// assert!(mrf.is_feasible(chain.state()));
/// assert!(chain.comm().total_messages() > 0);
/// ```
pub struct ShardedChain<R: SyncRule> {
    mrf: Arc<Mrf>,
    rule: R,
    partition: Partition,
    shards: Vec<ShardCore<R>>,
    plan: Vec<Exchange>,
    /// Canonical observer-facing configuration, refreshed from the
    /// owners' next buffers every round.
    state: Vec<Spin>,
    /// The packing every slab and exchange buffer uses
    /// ([`Packing::auto_for`] the model's `q`).
    packing: Packing,
    comm: CommStats,
    master: u64,
    round: u64,
    last_key: Option<(u64, u64)>,
}

impl<R: SyncRule> std::fmt::Debug for ShardedChain<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedChain")
            .field("rule", &self.rule.name())
            .field("shards", &self.partition.num_shards())
            .field("n", &self.state.len())
            .field("round", &self.round)
            .finish()
    }
}

impl<R: SyncRule> ShardedChain<R> {
    /// Builds the sharded chain on the deterministic default start.
    ///
    /// # Panics
    /// Panics if the partition does not cover `mrf`'s vertices, or if
    /// the rule has a state-dependent propose phase (see the module
    /// docs for the owner-computes contract).
    pub fn new(mrf: impl Into<Arc<Mrf>>, rule: R, master: u64, partition: Partition) -> Self {
        let mrf = mrf.into();
        let start = crate::single_site::default_start(&mrf);
        Self::with_state(mrf, rule, master, start, partition)
    }

    /// Builds the sharded chain from an explicit start.
    ///
    /// # Panics
    /// As [`ShardedChain::new`], plus if the configuration has the
    /// wrong length.
    pub fn with_state(
        mrf: impl Into<Arc<Mrf>>,
        rule: R,
        master: u64,
        state: Vec<Spin>,
        partition: Partition,
    ) -> Self {
        let mrf = mrf.into();
        let n = mrf.num_vertices();
        assert_eq!(state.len(), n, "state length must be n");
        assert_eq!(
            partition.len(),
            n,
            "partition covers {} vertices, model has {n}",
            partition.len()
        );
        assert!(
            !R::HAS_PROPOSE || R::STATE_FREE_PROPOSE,
            "the sharded backend recomputes halo proposals locally, which \
             requires state-free proposals (SyncRule::STATE_FREE_PROPOSE)"
        );
        let g = mrf.graph();
        let k = partition.num_shards();
        let packing = Packing::auto_for(mrf.q());

        // The shared plan: per-shard halos, and the boundary channels
        // they induce (the cluster layer rebuilds the same plan).
        let ep = exchange_plan(g, &partition);
        let shards = (0..k)
            .map(|s| ShardCore::build(&mrf, &rule, &partition, &ep, s, &state, packing))
            .collect();
        let plan = ep
            .channels
            .into_iter()
            .map(|(owner, subscriber, vertices)| {
                let buffer = StateSlab::new(packing, vertices.len());
                Exchange {
                    owner,
                    subscriber,
                    vertices,
                    buffer,
                }
            })
            .collect();
        ShardedChain {
            mrf,
            rule,
            partition,
            shards,
            plan,
            state,
            packing,
            comm: CommStats::default(),
            master,
            round: 0,
            last_key: None,
        }
    }

    /// The model being sampled.
    pub fn mrf(&self) -> &Mrf {
        &self.mrf
    }

    /// The owning handle of the model (cheap to clone and share).
    pub fn mrf_handle(&self) -> &Arc<Mrf> {
        &self.mrf
    }

    /// The vertex-step rule.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// The partition the shards follow.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.partition.num_shards()
    }

    /// The packing of every shard slab and exchange buffer.
    pub fn packing(&self) -> Packing {
        self.packing
    }

    /// The current configuration.
    pub fn state(&self) -> &[Spin] {
        &self.state
    }

    /// Overwrites the current configuration (every shard's slab is
    /// refreshed in its maintained region).
    ///
    /// # Panics
    /// Panics if the length is wrong.
    pub fn set_state(&mut self, state: &[Spin]) {
        assert_eq!(state.len(), self.state.len());
        self.state.copy_from_slice(state);
        for w in &mut self.shards {
            w.refresh(state);
        }
    }

    /// The number of rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The `(master, round)` pair of the most recent round, if any.
    pub fn last_round_key(&self) -> Option<(u64, u64)> {
        self.last_key
    }

    /// The boundary-communication record so far.
    pub fn comm(&self) -> &CommStats {
        &self.comm
    }

    /// Clears the boundary-communication record (e.g. after burn-in).
    pub fn reset_comm(&mut self) {
        self.comm.clear();
    }

    /// Advances one round using this chain's own master seed.
    pub fn step(&mut self) {
        self.step_keyed(self.master);
    }

    /// Advances one round keyed by an externally supplied master seed
    /// (the sharded counterpart of
    /// [`SyncChain::step_keyed`](super::SyncChain::step_keyed)).
    pub fn step_keyed(&mut self, master: u64) {
        // A cheap handle clone keeps `ctx` independent of `self`, so the
        // `&mut self` round bodies below can borrow freely.
        let mrf = Arc::clone(&self.mrf);
        let ctx = RoundCtx::new(&mrf, master, self.round);
        if let Some(v) = self.rule.active_vertex(&ctx) {
            self.single_site_round(&ctx, v);
        } else {
            self.synchronous_round(&ctx);
        }
        self.last_key = Some((master, self.round));
        self.round += 1;
    }

    /// Advances `t` rounds.
    pub fn run(&mut self, t: usize) {
        for _ in 0..t {
            self.step();
        }
    }

    /// A single-site round: only the owner of the active vertex works,
    /// and the exchange ships that one state to subscribing halos.
    fn single_site_round(&mut self, ctx: &RoundCtx, v: VertexId) {
        let s = self.partition.shard_of(v);
        let spin = self.shards[s].resolve_single(&self.rule, ctx, v);
        self.state[v.index()] = spin;
        let (mut messages, mut changed) = (0u64, 0u64);
        for ex in &self.plan {
            if ex.owner != s || ex.vertices.binary_search(&v).is_err() {
                continue;
            }
            messages += 1;
            changed += u64::from(self.shards[ex.subscriber].set_remote(v, spin));
        }
        self.comm
            .record(self.round, messages, changed, self.packing.bits_per_spin());
    }

    /// A synchronous round: per-shard propose + resolve in parallel,
    /// then commit and boundary exchange.
    fn synchronous_round(&mut self, ctx: &RoundCtx) {
        let rule = &self.rule;
        // Phase 1+2: every shard proposes over owned ∪ halo and
        // resolves its owned vertices, all within its private slab.
        if self.shards.len() == 1 {
            self.shards[0].propose_and_resolve(rule, ctx);
        } else {
            std::thread::scope(|scope| {
                for w in self.shards.iter_mut() {
                    scope.spawn(move || w.propose_and_resolve(rule, ctx));
                }
            });
        }

        // Commit: owners publish their next states (private half of the
        // double buffer) into their own slab and the canonical mirror.
        let state = &mut self.state;
        for w in &mut self.shards {
            w.commit(Some(&mut state[..]));
        }

        // Exchange, stage 1: owners fill the packed frontier buffers.
        for ex in &mut self.plan {
            let owner = &self.shards[ex.owner];
            for (i, &v) in ex.vertices.iter().enumerate() {
                ex.buffer.set(i, owner.get(v));
            }
        }
        // Exchange, stage 2: subscribers drain them into their halos.
        let (mut messages, mut changed) = (0u64, 0u64);
        for ex in &self.plan {
            let sub = &mut self.shards[ex.subscriber];
            for (i, &v) in ex.vertices.iter().enumerate() {
                let spin = ex.buffer.get(i);
                messages += 1;
                changed += u64::from(sub.set_remote(v, spin));
            }
        }
        self.comm
            .record(self.round, messages, changed, self.packing.bits_per_spin());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::rules::{GlauberRule, LocalMetropolisRule, LubyGlauberRule};
    use crate::engine::SyncChain;
    use lsl_graph::generators;
    use lsl_mrf::models;

    #[test]
    fn sharded_matches_sequential_trajectory() {
        let mrf = models::proper_coloring(generators::torus(5, 5), 10);
        let part = Partition::contiguous(mrf.graph(), 4);
        let mut seq = SyncChain::new(&mrf, LocalMetropolisRule::new(), 42);
        let mut sharded = ShardedChain::new(&mrf, LocalMetropolisRule::new(), 42, part);
        for r in 0..30 {
            seq.step();
            sharded.step();
            assert_eq!(seq.state(), sharded.state(), "diverged at round {r}");
        }
    }

    #[test]
    fn single_shard_sends_nothing() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let part = Partition::contiguous(mrf.graph(), 1);
        let mut chain = ShardedChain::new(&mrf, LocalMetropolisRule::new(), 7, part);
        chain.run(10);
        assert_eq!(chain.comm().total_messages(), 0);
        assert_eq!(chain.comm().per_round().len(), 10);
    }

    #[test]
    fn synchronous_round_messages_are_bounded_by_twice_the_cut() {
        // One message per (boundary vertex, subscriber) pair; each cut
        // edge induces at most two such pairs.
        let mrf = models::proper_coloring(generators::torus(6, 6), 12);
        for k in [2, 3, 4] {
            let part = Partition::bfs(mrf.graph(), k);
            let cut = part.stats(mrf.graph()).cut_size as u64;
            let mut chain = ShardedChain::new(&mrf, LubyGlauberRule::luby(), 3, part);
            chain.run(5);
            // q = 12 packs into byte lanes: one byte per message.
            assert_eq!(chain.packing(), Packing::Byte);
            for rc in chain.comm().per_round() {
                assert!(rc.messages > 0, "a cut partition must communicate");
                assert!(rc.messages <= 2 * cut, "{} > 2*{cut}", rc.messages);
                assert_eq!(rc.bytes, rc.messages);
                assert!(rc.changed <= rc.messages);
            }
        }
    }

    #[test]
    fn two_spin_models_exchange_bits() {
        // Ising spins pack into bit lanes: a round's payload is
        // ceil(messages / 8) bytes, not 4 bytes per message.
        let mrf = models::ising(generators::torus(6, 6), 0.3);
        let part = Partition::bfs(mrf.graph(), 3);
        let mut chain = ShardedChain::new(&mrf, LocalMetropolisRule::new(), 9, part);
        assert_eq!(chain.packing(), Packing::Bit);
        chain.run(5);
        for rc in chain.comm().per_round() {
            assert!(rc.messages > 0);
            assert_eq!(rc.bytes, rc.messages.div_ceil(8));
        }
    }

    #[test]
    fn single_site_rounds_ship_at_most_the_active_vertex() {
        let mrf = models::proper_coloring(generators::cycle(12), 5);
        let part = Partition::contiguous(mrf.graph(), 3);
        let mut chain = ShardedChain::new(&mrf, GlauberRule, 11, part);
        let mut seq = SyncChain::new(&mrf, GlauberRule, 11);
        for _ in 0..200 {
            chain.step();
            seq.step();
            assert_eq!(chain.state(), seq.state());
        }
        let max_degree = mrf.graph().max_degree() as u64;
        for rc in chain.comm().per_round() {
            assert!(rc.messages <= max_degree, "one vertex to ≤ Δ shards");
        }
    }

    #[test]
    fn set_state_reaches_every_slab() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let part = Partition::bfs(mrf.graph(), 4);
        let mut a = ShardedChain::new(&mrf, LocalMetropolisRule::new(), 5, part.clone());
        let mut b = SyncChain::new(&mrf, LocalMetropolisRule::new(), 5);
        a.run(7);
        b.run(7);
        let fresh = crate::single_site::default_start(&mrf);
        a.set_state(&fresh);
        b.set_state(&fresh);
        for _ in 0..10 {
            a.step();
            b.step();
            assert_eq!(a.state(), b.state());
        }
    }

    #[test]
    fn reset_comm_clears_history() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let part = Partition::contiguous(mrf.graph(), 2);
        let mut chain = ShardedChain::new(&mrf, LocalMetropolisRule::new(), 1, part);
        chain.run(5);
        assert!(chain.comm().total_messages() > 0);
        chain.reset_comm();
        assert_eq!(chain.comm().total_messages(), 0);
        assert!(chain.comm().per_round().is_empty());
    }
}
