//! Lane-batched hot kernels for the synchronous chains.
//!
//! The scalar engine phases ([`super::SyncRule::propose`] /
//! [`super::SyncRule::resolve`]) pay a fixed per-vertex toll: a
//! generator construction per phase per vertex (six SplitMix64 steps
//! each, drawn from or not), an edge-coin stream construction per
//! *endpoint* (each shared coin is evaluated twice), and a normalizing
//! division per filter factor. None of that is the chain — it is
//! plumbing. A [`HotKernel`] removes it by restructuring one round as a
//! few strided passes over packed [`StateSlab`](super::StateSlab)
//! lanes:
//!
//! * **block RNG** — the round's single-draw randomness (proposal
//!   draws, scheduler marks, edge coins) is generated once per phase as
//!   a contiguous block of stream *heads*
//!   ([`lsl_local::rng::fill_stream_heads`]). The per-index streams are
//!   unchanged — each head is still the pure function of
//!   `(master, round, vertex-or-edge)` the determinism contract
//!   demands — so trajectories are provably unchanged, and each edge
//!   coin is computed **once**, not once per endpoint. Multi-draw
//!   consumers keep full streams, rebuilt from a seed block
//!   ([`lsl_local::rng::fill_stream_seeds`]).
//! * **packed lanes** — states and proposals live in `u8` (or bit)
//!   lanes, so the resolve phase's neighborhood gathers touch a quarter
//!   (or a thirty-second) of the cache lines.
//! * **precomputed filter tables** — the LocalMetropolis factors
//!   `Ã_e(a, b)` are tabled per edge *kind* at construction (the same
//!   `get / max` division, done `q²` times instead of `3·2m` times per
//!   round).
//! * **selected-only resolve streams** — LubyGlauber's scheduler marks
//!   an independent set; only its members draw from their resolve
//!   streams, so the kernel constructs exactly those generators
//!   (the scalar path constructs all `n`). The marked independent set
//!   also makes every write conflict-free by construction, which is
//!   what lets one strided pass write `next` directly.
//!
//! Every kernel is **bit-identical** to the scalar phases by
//! construction, and property-tested to be (`tests/hotpath_identity.rs`). The
//! scalar path stays compiled and selectable ([`HotPath::Scalar`]) as
//! the regression oracle.

use super::slab::Packing;
use super::{RoundCtx, EDGE_LABEL};
use crate::schedule::VertexScheduler;
use crate::update::Resampler;
use lsl_graph::{EdgeId, VertexId};
use lsl_local::rng::{
    fill_stream_heads, fill_stream_seeds, head_to_f64, Xoshiro256pp, VERTEX_STREAM_LABEL,
};
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// Which implementation serves a chain's synchronous rounds.
///
/// The default is the lane-batched hot path with auto packing — always
/// bit-identical to [`HotPath::Scalar`], which remains available as the
/// regression oracle (and is what multi-worker backends and single-site
/// rounds run regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotPath {
    /// The scalar per-vertex phases — the oracle.
    Scalar,
    /// Lane-batched kernels over packed slabs.
    Lanes {
        /// Slab packing; `None` resolves to
        /// [`Packing::auto_for`]`(q)` per model.
        packing: Option<Packing>,
        /// `true`: per-round block fills of stream heads/seeds.
        /// `false`: a generator construction per vertex, as the scalar
        /// path does (the ablation arm of the E17 sweep).
        block_rng: bool,
    },
}

impl Default for HotPath {
    fn default() -> Self {
        HotPath::Lanes {
            packing: None,
            block_rng: true,
        }
    }
}

impl HotPath {
    /// Checks an explicitly requested packing against a model's domain
    /// size (auto packing is always valid).
    ///
    /// # Errors
    /// A message naming the unsupported combination.
    pub fn validate_for(&self, q: usize) -> Result<(), String> {
        match *self {
            HotPath::Lanes {
                packing: Some(p), ..
            } if !p.supports(q) => Err(format!("packing {p} cannot hold q = {q} spins")),
            _ => Ok(()),
        }
    }

    /// The packing a chain on a `q`-spin model would use (`None` for
    /// the scalar path).
    pub fn resolved_packing(&self, q: usize) -> Option<Packing> {
        match *self {
            HotPath::Scalar => None,
            HotPath::Lanes { packing, .. } => Some(packing.unwrap_or_else(|| Packing::auto_for(q))),
        }
    }

    /// Builds `rule`'s kernel under this selection: `None` for
    /// [`HotPath::Scalar`], for rules without a kernel, and for an
    /// (unvalidated) packing that cannot hold the model's spins — the
    /// engine then runs the scalar phases.
    pub fn build_kernel<R: super::SyncRule>(
        &self,
        mrf: &Arc<Mrf>,
        rule: &R,
    ) -> Option<Box<dyn HotKernel<R::Local>>> {
        match *self {
            HotPath::Scalar => None,
            HotPath::Lanes { packing, block_rng } => {
                let packing = packing.unwrap_or_else(|| Packing::auto_for(mrf.q()));
                if !packing.supports(mrf.q()) {
                    return None;
                }
                rule.hot_kernel(mrf, packing, block_rng)
            }
        }
    }
}

/// Canonical spec-string form: `scalar` or
/// `lanes:<auto|wide|byte|bit>:<block|pervertex>`; the `FromStr` impl
/// also accepts the segments after `lanes` in any order or omitted.
impl std::fmt::Display for HotPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            HotPath::Scalar => write!(f, "scalar"),
            HotPath::Lanes { packing, block_rng } => {
                match packing {
                    None => write!(f, "lanes:auto")?,
                    Some(p) => write!(f, "lanes:{p}")?,
                }
                write!(f, ":{}", if block_rng { "block" } else { "pervertex" })
            }
        }
    }
}

impl std::str::FromStr for HotPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        match parts.next() {
            Some("scalar") => match parts.next() {
                None => Ok(HotPath::Scalar),
                Some(extra) => Err(format!("scalar takes no argument, got {extra:?}")),
            },
            Some("lanes") => {
                let (mut packing, mut block_rng) = (None, true);
                for part in parts {
                    match part {
                        "auto" => packing = None,
                        "block" => block_rng = true,
                        "pervertex" => block_rng = false,
                        p => {
                            packing = Some(p.parse::<Packing>().map_err(|_| {
                                format!(
                                    "unknown hot-path option {p:?} \
                                 (expected auto | wide | byte | bit | block | pervertex)"
                                )
                            })?)
                        }
                    }
                }
                Ok(HotPath::Lanes { packing, block_rng })
            }
            _ => Err(format!(
                "unknown hot path {s:?} (expected scalar | lanes[:packing][:block|pervertex])"
            )),
        }
    }
}

/// One rule's lane-batched round implementation.
///
/// `round` must be bit-identical to running the scalar propose +
/// resolve phases of the same rule under the same [`RoundCtx`]: it
/// reads `state`, writes every vertex of `next`, and publishes the
/// propose phase's locals into `locals` (so observers like
/// [`SyncChain::locals`](super::SyncChain::locals) see exactly what the
/// scalar phases would publish).
pub trait HotKernel<L>: Send {
    /// Executes one synchronous round.
    fn round(&mut self, ctx: &RoundCtx, state: &[Spin], next: &mut [Spin], locals: &mut [L]);
}

/// A generator that serves a precomputed stream head: its first draw is
/// exactly the underlying stream's first draw. Only handed to
/// single-draw consumers (one proposal sample / one mark), which is
/// checked against the scalar path by the bit-identity property tests.
struct OneShotRng(u64);

impl rand::TryRng for OneShotRng {
    type Error = std::convert::Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.0 >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.0)
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.0.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Ok(())
    }
}

/// Monomorphic packed lanes — the kernels' private storage. Same
/// layouts as [`StateSlab`](super::StateSlab), but resolved at compile
/// time so the gather loops stay branch-free.
trait LaneBuf: Send + 'static {
    fn with_len(len: usize) -> Self;
    fn load(&mut self, wide: &[Spin]);
    fn get(&self, i: usize) -> Spin;
    fn set(&mut self, i: usize, s: Spin);
    /// The raw one-bit-per-index words, when this packing has them —
    /// unlocks the word-interleaved `q = 2` edge pass.
    fn as_bits(&self) -> Option<&[u64]> {
        None
    }
}

impl LaneBuf for Vec<Spin> {
    fn with_len(len: usize) -> Self {
        vec![0; len]
    }

    fn load(&mut self, wide: &[Spin]) {
        self.copy_from_slice(wide);
    }

    #[inline]
    fn get(&self, i: usize) -> Spin {
        self[i]
    }

    #[inline]
    fn set(&mut self, i: usize, s: Spin) {
        self[i] = s;
    }
}

impl LaneBuf for Vec<u8> {
    fn with_len(len: usize) -> Self {
        vec![0; len]
    }

    fn load(&mut self, wide: &[Spin]) {
        for (slot, &s) in self.iter_mut().zip(wide) {
            debug_assert!(s < 256);
            *slot = s as u8;
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Spin {
        self[i] as Spin
    }

    #[inline]
    fn set(&mut self, i: usize, s: Spin) {
        debug_assert!(s < 256);
        self[i] = s as u8;
    }
}

/// Bit lanes in `u64` words.
struct BitLanes {
    words: Vec<u64>,
}

impl LaneBuf for BitLanes {
    fn with_len(len: usize) -> Self {
        BitLanes {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn load(&mut self, wide: &[Spin]) {
        self.words.fill(0);
        for (i, &s) in wide.iter().enumerate() {
            debug_assert!(s < 2);
            self.words[i >> 6] |= u64::from(s) << (i & 63);
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Spin {
        ((self.words[i >> 6] >> (i & 63)) & 1) as Spin
    }

    #[inline]
    fn set(&mut self, i: usize, s: Spin) {
        debug_assert!(s < 2);
        let w = &mut self.words[i >> 6];
        let shift = i & 63;
        *w = (*w & !(1u64 << shift)) | (u64::from(s) << shift);
    }

    fn as_bits(&self) -> Option<&[u64]> {
        Some(&self.words)
    }
}

/// Spreads the low 32 bits of `x` to the even bit positions (the
/// classic Morton half-interleave).
#[inline(always)]
fn spread32(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    (x | (x << 1)) & 0x5555_5555_5555_5555
}

/// The LocalMetropolis kernel: one proposal pass, one coin block, one
/// edge pass ANDing accepts into a per-vertex byte, one combine pass.
struct LmKernel<L: LaneBuf> {
    mrf: Arc<Mrf>,
    rule3: bool,
    block_rng: bool,
    /// Every edge activity is 0/max — every coin is deterministic and
    /// the coin block is never filled (the coloring/hardcore fast path,
    /// same branch the scalar rule takes per edge).
    hard: bool,
    q: usize,
    /// Stored-orientation endpoints per edge, indexed by edge id and
    /// packed `v << 32 | u` (one load per edge). Both endpoints of an
    /// edge evaluate the *same* stored-orientation filter product
    /// against the *same* coin, so one edge-pass evaluation serves
    /// both — the scalar path pays it twice.
    euv: Vec<u64>,
    /// Base offset of each edge's kind table in `tables`.
    etbl: Vec<u32>,
    /// The common table base when every edge has the same kind (the
    /// usual generator output) — lets the edge pass skip the per-edge
    /// `etbl` load.
    kind0: Option<u32>,
    /// `q == 2` with one vertex kind: `(total, w0, w1, fallback)` of
    /// the single activity, for the vectorized proposal pass (exact
    /// float-op order of [`lsl_mrf::VertexActivity::sample`]).
    fast2: Option<(f64, f64, f64, Spin)>,
    /// Per-edge-kind normalized activities, `q²` entries each: the same
    /// `get / max` values [`lsl_mrf::EdgeActivity::normalized`]
    /// computes, divided once at construction.
    tables: Vec<f64>,
    /// `q == 2` only (else empty): the filter *products* per edge kind,
    /// 16 entries indexed by the state nibble
    /// `sp(u)·8 + sp(v)·4 + sx(u)·2 + sx(v)`, multiplied at
    /// construction in the exact factor order of the scalar rule — the
    /// Ising/hardcore edge pass becomes one table load per edge.
    products: Vec<f64>,
    /// The same products permuted to the word-interleaved nibble
    /// `sp(u)·8 + sx(u)·4 + sp(v)·2 + sx(v)` (what two 2-bit lane
    /// extractions assemble directly).
    products2: Vec<f64>,
    /// `ceil(products2 · 2⁵³)`, clamped at 0: `coin < p` over coins
    /// `k·2⁻⁵³` is exactly `k < thr` (the scale is an exponent shift,
    /// so the threshold is exact), turning the accept test into one
    /// integer compare on the raw head.
    thr2: Vec<u64>,
    /// Interleaved 2-bit lanes `sp(v)·2 + sx(v)`, rebuilt per round
    /// from the bit-packed slabs by [`spread32`] word ops.
    cbits: Vec<u64>,
    /// Packed current state / proposals.
    sx: L,
    sp: L,
    /// Proposal heads (propose-phase vertex streams).
    heads: Vec<u64>,
    /// Shared edge coins as raw stream heads, one per *edge* (the
    /// scalar path evaluates each from both endpoints); consumed via
    /// [`head_to_f64`] or the integer thresholds `thr2`.
    coins: Vec<u64>,
    /// Per-vertex accept accumulator: `1` until some incident edge's
    /// filter rejects.
    ok: Vec<u8>,
    /// Wide mirror of the proposals for publishing into `locals`.
    proposals_wide: Vec<Spin>,
    /// Propose-master the current proposal block belongs to: coupled
    /// replicas share one master per round, so a batch of `B` replicas
    /// fills and samples the block once.
    proposals_key: Option<u64>,
}

impl<L: LaneBuf> LmKernel<L> {
    fn new(mrf: Arc<Mrf>, rule3: bool, block_rng: bool) -> Self {
        let g = mrf.graph();
        let n = g.num_vertices();
        let m = g.num_edges();
        let q = mrf.q();
        let qq = (q * q) as u32;
        let mut tables = Vec::with_capacity(mrf.edge_palette().len() * (q * q));
        for act in mrf.edge_palette() {
            for a in 0..q as Spin {
                for b in 0..q as Spin {
                    tables.push(act.normalized(a, b));
                }
            }
        }
        let (mut euv, mut etbl) = (vec![0u64; m], vec![0u32; m]);
        for (e, a, b) in g.edges() {
            let i = e.index();
            euv[i] = u64::from(b.0) << 32 | u64::from(a.0);
            etbl[i] = mrf.edge_kind_of(e) * qq;
        }
        let kind0 =
            (etbl.windows(2).all(|w| w[0] == w[1])).then(|| etbl.first().copied().unwrap_or(0));
        let fast2 = (q == 2 && mrf.vertex_palette().len() == 1).then(|| {
            let act = &mrf.vertex_palette()[0];
            // `rposition(w > 0)` of the scalar sampler's slack fallback.
            let fallback = if act.get(1) > 0.0 { 1 } else { 0 };
            (act.total(), act.get(0), act.get(1), fallback)
        });
        let (mut products, mut products2, mut thr2) = (Vec::new(), Vec::new(), Vec::new());
        if q == 2 {
            products.reserve(mrf.edge_palette().len() * 16);
            products2.reserve(mrf.edge_palette().len() * 16);
            thr2.reserve(mrf.edge_palette().len() * 16);
            for kind in 0..mrf.edge_palette().len() {
                let tbl = &tables[kind * 4..][..4];
                let p_of = |su: usize, sv: usize, xu: usize, xv: usize| {
                    let mut p = tbl[su * 2 + sv] * tbl[xu * 2 + sv];
                    if rule3 {
                        p *= tbl[su * 2 + xv];
                    }
                    p
                };
                for idx in 0..16usize {
                    products.push(p_of(idx >> 3 & 1, idx >> 2 & 1, idx >> 1 & 1, idx & 1));
                    let p2 = p_of(idx >> 3 & 1, idx >> 1 & 1, idx >> 2 & 1, idx & 1);
                    products2.push(p2);
                    thr2.push((p2 * (1u64 << 53) as f64).ceil().max(0.0) as u64);
                }
            }
        }
        let hard = mrf.all_hard_constraints();
        LmKernel {
            rule3,
            block_rng,
            hard,
            q,
            euv,
            etbl,
            kind0,
            fast2,
            tables,
            products,
            products2,
            thr2,
            cbits: Vec::new(),
            sx: L::with_len(n),
            sp: L::with_len(n),
            heads: vec![0; if block_rng { n } else { 0 }],
            coins: vec![0; if block_rng && !hard { m } else { 0 }],
            ok: vec![0; n],
            proposals_wide: vec![0; n],
            proposals_key: None,
            mrf,
        }
    }
}

impl<L: LaneBuf> HotKernel<Spin> for LmKernel<L> {
    fn round(&mut self, ctx: &RoundCtx, state: &[Spin], next: &mut [Spin], locals: &mut [Spin]) {
        let n = state.len();
        self.sx.load(state);

        // Propose: one block of stream heads serves every vertex's
        // single proposal draw. The block is keyed by the propose
        // master, so coupled replicas sharing a round's randomness
        // reuse it for free.
        if self.proposals_key != Some(ctx.propose_master) {
            if self.block_rng {
                fill_stream_heads(ctx.propose_master, VERTEX_STREAM_LABEL, &mut self.heads);
                if let Some((total, w0, w1, fallback)) = self.fast2 {
                    // The scalar sampler's exact subtraction ladder for
                    // the single two-entry activity, as a vectorizable
                    // pass (then one pack pass into the proposal lanes).
                    for (slot, &head) in self.proposals_wide.iter_mut().zip(&self.heads) {
                        let t0 = head_to_f64(head) * total - w0;
                        let t1 = t0 - w1;
                        *slot = if t0 < 0.0 {
                            0
                        } else if t1 < 0.0 {
                            1
                        } else {
                            fallback
                        };
                    }
                    self.sp.load(&self.proposals_wide);
                } else {
                    for v in 0..n {
                        let act = self.mrf.vertex_activity(VertexId(v as u32));
                        let s = act.sample(&mut OneShotRng(self.heads[v]));
                        self.proposals_wide[v] = s;
                        self.sp.set(v, s);
                    }
                }
            } else {
                for v in 0..n {
                    let mut rng = ctx.propose_rng(VertexId(v as u32));
                    let act = self.mrf.vertex_activity(VertexId(v as u32));
                    let s = act.sample(rng.raw());
                    self.proposals_wide[v] = s;
                    self.sp.set(v, s);
                }
            }
            // Coins: one evaluation per edge (the scalar path pays one
            // per endpoint). Skipped entirely for hard-constraint
            // models, whose coins are all deterministic.
            if self.block_rng && !self.hard {
                fill_stream_heads(ctx.edge_master, EDGE_LABEL, &mut self.coins);
            }
            self.proposals_key = Some(ctx.propose_master);
        }
        locals.copy_from_slice(&self.proposals_wide);

        // Resolve as an edge pass. The scalar rule's per-vertex view
        // evaluates, at *both* endpoints of each edge, the identical
        // stored-orientation factor product `p` against the identical
        // shared coin — so one evaluation per edge decides both, ANDed
        // into the accept byte of each endpoint. Its early-exit is
        // droppable because coins are pure functions of
        // `(edge_master, edge)`: no stream state is consumed by the
        // extra evaluations. The coin test folds the scalar ladder
        // (`p ≤ 0` reject, `p ≥ 1` accept, else reject iff `coin ≥ p`)
        // into one branchless `coin < p` — coins live in `[0, 1)`, so
        // all three rungs agree. Factors multiply in the exact order of
        // the scalar rule for f64-identical products.
        let (rule3, hard, block_rng, q) = (self.rule3, self.hard, self.block_rng, self.q);
        let qq = q * q;
        let Self {
            euv,
            etbl,
            kind0,
            tables,
            products,
            products2,
            thr2,
            cbits,
            sx,
            sp,
            coins,
            ok,
            ..
        } = self;
        ok.fill(1);
        let m = euv.len();
        // One loop shape, pluggable accept test.
        macro_rules! edge_pass {
            ($acc_of:expr) => {
                for e in 0..m {
                    let uv = euv[e];
                    let u = uv as u32 as usize;
                    let v = (uv >> 32) as usize;
                    let acc: u8 = $acc_of(e, u, v);
                    ok[u] &= acc;
                    ok[v] &= acc;
                }
            };
        }
        // The f64 accept test: every factor of a hard model is 0 or 1,
        // so `p > 0.0` is "no factor rejected" with no coin consulted —
        // the branch the scalar rule takes per edge. Soft models fold
        // the scalar ladder into one `coin < p`.
        macro_rules! accept {
            ($e:expr, $p:expr) => {
                if hard {
                    u8::from($p > 0.0)
                } else if block_rng {
                    u8::from(head_to_f64(coins[$e]) < $p)
                } else {
                    u8::from(ctx.edge_coin(EdgeId($e as u32)) < $p)
                }
            };
        }
        match (q == 2, sp.as_bits(), sx.as_bits()) {
            (true, Some(pw), Some(xw)) => {
                // Bit slabs: interleave both slabs into 2-bit lanes
                // (word ops, not per-vertex shifts), so each endpoint's
                // `(proposal, state)` pair is one extraction, and test
                // block coins in the integer domain against `thr2`.
                cbits.resize(2 * pw.len(), 0);
                for (i, (&p, &x)) in pw.iter().zip(xw).enumerate() {
                    cbits[2 * i] = spread32(p) << 1 | spread32(x);
                    cbits[2 * i + 1] = spread32(p >> 32) << 1 | spread32(x >> 32);
                }
                let cbits: &[u64] = cbits;
                let idx_of = |u: usize, v: usize| {
                    let cu = cbits[u >> 5] >> ((u & 31) << 1) & 3;
                    let cv = cbits[v >> 5] >> ((v & 31) << 1) & 3;
                    (cu << 2 | cv) as usize
                };
                let base = |e: usize| match *kind0 {
                    Some(b) => b as usize * 4,
                    None => etbl[e] as usize * 4,
                };
                if hard {
                    edge_pass!(|e: usize, u, v| u8::from(thr2[base(e) + idx_of(u, v)] != 0));
                } else if block_rng {
                    edge_pass!(|e: usize, u, v| u8::from(
                        coins[e] >> 11 < thr2[base(e) + idx_of(u, v)]
                    ));
                } else {
                    edge_pass!(|e: usize, u, v| u8::from(
                        ctx.edge_coin(EdgeId(e as u32)) < products2[base(e) + idx_of(u, v)]
                    ));
                }
            }
            (true, ..) => {
                // Wider slabs, q = 2: still one product-table load in
                // place of the factor gathers + multiplies.
                let idx_of = |u: usize, v: usize| {
                    (sp.get(u) << 3 | sp.get(v) << 2 | sx.get(u) << 1 | sx.get(v)) as usize
                };
                if let Some(b) = *kind0 {
                    let pt: &[f64] = &products[b as usize * 4..][..16];
                    edge_pass!(|e: usize, u, v| accept!(e, pt[idx_of(u, v)]));
                } else {
                    edge_pass!(|e: usize, u, v| accept!(
                        e,
                        products[etbl[e] as usize * 4 + idx_of(u, v)]
                    ));
                }
            }
            _ => {
                edge_pass!(|e: usize, u: usize, v: usize| {
                    let tbl = &tables[etbl[e] as usize..][..qq];
                    let (su, sv) = (sp.get(u) as usize, sp.get(v) as usize);
                    let (xu, xv) = (sx.get(u) as usize, sx.get(v) as usize);
                    let mut p = tbl[su * q + sv] * tbl[xu * q + sv];
                    if rule3 {
                        p *= tbl[su * q + xv];
                    }
                    accept!(e, p)
                });
            }
        }

        // Combine: a vertex keeps its proposal iff every incident edge
        // accepted (vacuously for isolated vertices, as in the scalar
        // rule).
        for (v, slot) in next.iter_mut().enumerate() {
            *slot = if self.ok[v] != 0 {
                self.proposals_wide[v]
            } else {
                state[v]
            };
        }
    }
}

/// Builds the LocalMetropolis kernel at the requested packing.
pub(crate) fn local_metropolis_kernel(
    mrf: &Arc<Mrf>,
    rule3: bool,
    packing: Packing,
    block_rng: bool,
) -> Box<dyn HotKernel<Spin>> {
    let mrf = Arc::clone(mrf);
    match packing {
        Packing::Wide => Box::new(LmKernel::<Vec<Spin>>::new(mrf, rule3, block_rng)),
        Packing::Byte => Box::new(LmKernel::<Vec<u8>>::new(mrf, rule3, block_rng)),
        Packing::Bit => Box::new(LmKernel::<BitLanes>::new(mrf, rule3, block_rng)),
    }
}

/// The LubyGlauber kernel: a seed-block mark pass, then heat-bath
/// resamples for exactly the selected independent set (resolve streams
/// are constructed *only* for its members).
struct LgKernel<S: VertexScheduler, L: LaneBuf> {
    mrf: Arc<Mrf>,
    scheduler: S,
    block_rng: bool,
    sx: L,
    /// Seed block for the mark streams (marks may draw any number of
    /// times, so they get full streams, not heads).
    seeds: Vec<u64>,
    weights: Vec<f64>,
    resampler: Resampler,
    /// Wide mark buffer, keyed like the LM proposal block so coupled
    /// replicas mark once per round.
    marks_wide: Vec<S::Mark>,
    marks_key: Option<u64>,
}

impl<S: VertexScheduler, L: LaneBuf> LgKernel<S, L> {
    fn new(mrf: Arc<Mrf>, scheduler: S, block_rng: bool) -> Self {
        let n = mrf.num_vertices();
        LgKernel {
            scheduler,
            block_rng,
            sx: L::with_len(n),
            seeds: vec![0; if block_rng { n } else { 0 }],
            weights: vec![0.0; mrf.q()],
            resampler: Resampler::new(&mrf),
            marks_wide: vec![S::Mark::default(); n],
            marks_key: None,
            mrf,
        }
    }
}

impl<S: VertexScheduler, L: LaneBuf> HotKernel<S::Mark> for LgKernel<S, L> {
    fn round(&mut self, ctx: &RoundCtx, state: &[Spin], next: &mut [Spin], locals: &mut [S::Mark]) {
        self.sx.load(state);

        // Propose: the scheduler marks, streams rebuilt from one seed
        // block (identical streams, one derivation pass).
        if self.marks_key != Some(ctx.propose_master) {
            if self.block_rng {
                fill_stream_seeds(ctx.propose_master, VERTEX_STREAM_LABEL, &mut self.seeds);
                for (v, slot) in self.marks_wide.iter_mut().enumerate() {
                    let mut rng = Xoshiro256pp::seed_from(self.seeds[v]);
                    *slot = self.scheduler.mark(VertexId(v as u32), &mut rng);
                }
            } else {
                for (v, slot) in self.marks_wide.iter_mut().enumerate() {
                    let mut rng = ctx.propose_rng(VertexId(v as u32));
                    *slot = self.scheduler.mark(VertexId(v as u32), rng.raw());
                }
            }
            self.marks_key = Some(ctx.propose_master);
        }
        locals.copy_from_slice(&self.marks_wide);

        // Resolve: non-members keep their spin without touching their
        // resolve stream (the scalar path builds one per vertex and
        // discards it unread — at selection fraction ~1/(Δ+1), most of
        // its resolve-phase randomness work).
        let Self {
            mrf,
            scheduler,
            sx,
            weights,
            resampler,
            ..
        } = self;
        for (v, slot) in next.iter_mut().enumerate() {
            let vid = VertexId(v as u32);
            if scheduler.selected(ctx, vid, locals) {
                let mut rng = ctx.resolve_rng(vid);
                mrf.marginal_weights_with(vid, |u| sx.get(u.index()), weights);
                *slot = resampler
                    .resample(weights, rng.raw())
                    .expect("heat-bath marginal must be well-defined (paper assumption)");
            } else {
                *slot = sx.get(v);
            }
        }
    }
}

/// Builds the LubyGlauber kernel at the requested packing.
pub(crate) fn luby_glauber_kernel<S: VertexScheduler>(
    mrf: &Arc<Mrf>,
    scheduler: S,
    packing: Packing,
    block_rng: bool,
) -> Box<dyn HotKernel<S::Mark>> {
    let mrf = Arc::clone(mrf);
    match packing {
        Packing::Wide => Box::new(LgKernel::<S, Vec<Spin>>::new(mrf, scheduler, block_rng)),
        Packing::Byte => Box::new(LgKernel::<S, Vec<u8>>::new(mrf, scheduler, block_rng)),
        Packing::Bit => Box::new(LgKernel::<S, BitLanes>::new(mrf, scheduler, block_rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsl_local::rng::stream_head;

    #[test]
    fn hotpath_display_parses_back() {
        for hp in [
            HotPath::Scalar,
            HotPath::default(),
            HotPath::Lanes {
                packing: Some(Packing::Bit),
                block_rng: false,
            },
            HotPath::Lanes {
                packing: Some(Packing::Wide),
                block_rng: true,
            },
        ] {
            assert_eq!(hp.to_string().parse::<HotPath>().unwrap(), hp);
        }
        assert_eq!("lanes".parse::<HotPath>().unwrap(), HotPath::default());
        assert_eq!(
            "lanes:byte".parse::<HotPath>().unwrap(),
            HotPath::Lanes {
                packing: Some(Packing::Byte),
                block_rng: true,
            }
        );
        assert_eq!(
            "lanes:pervertex".parse::<HotPath>().unwrap(),
            HotPath::Lanes {
                packing: None,
                block_rng: false,
            }
        );
        assert!("scalar:2".parse::<HotPath>().is_err());
        assert!("simd".parse::<HotPath>().is_err());
        assert!("lanes:nibble".parse::<HotPath>().is_err());
    }

    #[test]
    fn validate_rejects_narrow_packing() {
        let bit = HotPath::Lanes {
            packing: Some(Packing::Bit),
            block_rng: true,
        };
        assert!(bit.validate_for(2).is_ok());
        assert!(bit.validate_for(3).is_err());
        assert!(HotPath::default().validate_for(1 << 20).is_ok());
        assert!(HotPath::Scalar.validate_for(usize::MAX).is_ok());
    }

    #[test]
    fn resolved_packing_follows_q() {
        assert_eq!(HotPath::Scalar.resolved_packing(2), None);
        assert_eq!(HotPath::default().resolved_packing(2), Some(Packing::Bit));
        assert_eq!(HotPath::default().resolved_packing(16), Some(Packing::Byte));
        assert_eq!(
            HotPath::default().resolved_packing(1000),
            Some(Packing::Wide)
        );
    }

    #[test]
    fn one_shot_serves_its_head() {
        use rand::RngExt;
        let head = stream_head(7, VERTEX_STREAM_LABEL, 3);
        let mut one = OneShotRng(head);
        let mut full =
            Xoshiro256pp::seed_from(lsl_local::rng::derive_seed(7, VERTEX_STREAM_LABEL, 3));
        assert_eq!(one.random::<f64>(), full.uniform_f64());
    }

    #[test]
    fn head_mapping_matches_uniform_f64() {
        for seed in 0..64 {
            let mut rng = Xoshiro256pp::seed_from(seed);
            let head = rng.clone().next();
            assert_eq!(head_to_f64(head), rng.uniform_f64());
        }
    }
}
