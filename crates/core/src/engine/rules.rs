//! The paper's chains as vertex-step rules for the step engine.
//!
//! Each rule is the *chain logic* only — what one vertex draws and how
//! it combines its neighborhood — with execution (order, parallelism,
//! batching) left to the engine backends:
//!
//! * [`LocalMetropolisRule`] — Algorithm 2: propose per vertex, filter
//!   by shared per-edge coins (with the rule-3 ablation switch);
//! * [`LubyGlauberRule`] — Algorithm 1 generalized over any
//!   [`VertexScheduler`]: mark, select an independent set, heat-bath
//!   resample the selected vertices;
//! * [`GlauberRule`] / [`MetropolisRule`] — the sequential single-site
//!   baselines, expressed as rounds whose active vertex comes from the
//!   round-shared stream (so even they are pure functions of
//!   `(master, round)` and batch across replicas).

use super::{hotpath, HotKernel, Packing, RoundCtx, StateView, SyncRule};
use crate::schedule::{LubyScheduler, VertexScheduler};
use crate::update::Resampler;
use lsl_graph::VertexId;
use lsl_local::rng::Xoshiro256pp;
use lsl_mrf::{Mrf, Spin};
use std::sync::Arc;

/// Reusable per-worker scratch for heat-bath rules: a marginal-weight
/// buffer and a coupling-friendly resampler. (Distinct from
/// `lsl_mrf::csp::MarginalScratch`, which carries a CSP trial
/// configuration instead of a resampler.)
pub struct HeatBathScratch {
    weights: Vec<f64>,
    resampler: Resampler,
}

impl HeatBathScratch {
    /// Builds scratch sized for `mrf`.
    pub fn new(mrf: &Mrf) -> Self {
        HeatBathScratch {
            weights: vec![0.0; mrf.q()],
            resampler: Resampler::new(mrf),
        }
    }

    /// Heat-bath resample of `v` given `state`, drawing from `rng`.
    fn resample<Sv: StateView + ?Sized>(
        &mut self,
        mrf: &Mrf,
        v: VertexId,
        state: &Sv,
        rng: &mut Xoshiro256pp,
    ) -> Spin {
        mrf.marginal_weights_with(v, |u| state.spin(u.index()), &mut self.weights);
        self.resampler
            .resample(&self.weights, rng)
            .expect("heat-bath marginal must be well-defined (paper assumption)")
    }
}

/// Algorithm 2 (LocalMetropolis) as a vertex-step rule.
///
/// Propose phase: `σ_v ∼ b_v`. Resolve phase: `v` accepts iff every
/// incident edge's shared coin passes the three-factor filter
/// `Ã_e(σ_u, σ_v) · Ã_e(X_u, σ_v) · Ã_e(σ_u, X_v)`. Coins with pass
/// probability exactly 0 or 1 are decided without consulting the coin
/// stream (identically in every backend), which makes hard-constraint
/// models — where *every* coin is deterministic — coin-free.
#[derive(Clone, Debug)]
pub struct LocalMetropolisRule {
    rule3: bool,
}

impl LocalMetropolisRule {
    /// The full (correct) chain.
    pub fn new() -> Self {
        LocalMetropolisRule { rule3: true }
    }

    /// The ablation omitting the third filter factor `Ã_e(σ_u, X_v)`
    /// (the paper warns this breaks reversibility; experiment E9
    /// quantifies the failure).
    pub fn without_rule3() -> Self {
        LocalMetropolisRule { rule3: false }
    }

    /// Whether the full filter is active.
    pub fn rule3_enabled(&self) -> bool {
        self.rule3
    }
}

impl Default for LocalMetropolisRule {
    fn default() -> Self {
        Self::new()
    }
}

impl SyncRule for LocalMetropolisRule {
    type Local = Spin;
    type Scratch = ();

    const STATE_FREE_PROPOSE: bool = true;

    fn name(&self) -> &'static str {
        if self.rule3 {
            "LocalMetropolis"
        } else {
            "LocalMetropolis(no rule 3)"
        }
    }

    fn make_scratch(&self, _mrf: &Mrf) -> Self::Scratch {}

    fn propose<Sv: StateView + ?Sized>(
        &self,
        ctx: &RoundCtx,
        v: VertexId,
        _state: &Sv,
        rng: &mut Xoshiro256pp,
        _scratch: &mut Self::Scratch,
    ) -> Spin {
        ctx.mrf().vertex_activity(v).sample(rng)
    }

    fn resolve<Sv: StateView + ?Sized>(
        &self,
        ctx: &RoundCtx,
        v: VertexId,
        state: &Sv,
        locals: &[Spin],
        _rng: &mut Xoshiro256pp,
        _scratch: &mut Self::Scratch,
    ) -> Spin {
        let mrf = ctx.mrf();
        let g = mrf.graph();
        let old = state.spin(v.index());
        for (e, _) in g.incident_edges(v) {
            // Evaluate the filter in the edge's stored orientation so
            // both endpoints agree on the factors bit-for-bit.
            let (a, b) = g.endpoints(e);
            let (xu, xv) = (state.spin(a.index()), state.spin(b.index()));
            let (su, sv) = (locals[a.index()], locals[b.index()]);
            let act = mrf.edge_activity(e);
            let mut p = act.normalized(su, sv) * act.normalized(xu, sv);
            if self.rule3 {
                p *= act.normalized(su, xv);
            }
            if p <= 0.0 {
                return old;
            }
            if p < 1.0 && ctx.edge_coin(e) >= p {
                return old;
            }
        }
        locals[v.index()]
    }

    fn hot_kernel(
        &self,
        mrf: &Arc<Mrf>,
        packing: Packing,
        block_rng: bool,
    ) -> Option<Box<dyn HotKernel<Spin>>> {
        Some(hotpath::local_metropolis_kernel(
            mrf, self.rule3, packing, block_rng,
        ))
    }
}

/// Algorithm 1 (LubyGlauber) as a vertex-step rule, generic over the
/// independent-set scheduler.
///
/// Propose phase: the scheduler's per-vertex mark (the Luby `β_v`, a
/// Bernoulli volunteer bit, ...). Resolve phase: vertices the scheduler
/// selects resample from their conditional marginal µ_v(· | X_Γ(v));
/// everyone else keeps their spin.
#[derive(Clone, Debug)]
pub struct LubyGlauberRule<S: VertexScheduler = LubyScheduler> {
    scheduler: S,
}

impl LubyGlauberRule<LubyScheduler> {
    /// The paper's chain: Luby-step scheduling.
    pub fn luby() -> Self {
        LubyGlauberRule {
            scheduler: LubyScheduler::new(),
        }
    }
}

impl<S: VertexScheduler> LubyGlauberRule<S> {
    /// The chain under a custom scheduler.
    pub fn with_scheduler(scheduler: S) -> Self {
        LubyGlauberRule { scheduler }
    }

    /// The scheduler in use.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }
}

impl<S: VertexScheduler> SyncRule for LubyGlauberRule<S> {
    type Local = S::Mark;
    type Scratch = HeatBathScratch;

    const STATE_FREE_PROPOSE: bool = true;

    fn name(&self) -> &'static str {
        "LubyGlauber"
    }

    fn make_scratch(&self, mrf: &Mrf) -> Self::Scratch {
        HeatBathScratch::new(mrf)
    }

    fn active_vertex(&self, ctx: &RoundCtx) -> Option<VertexId> {
        // Single-vertex schedulers (e.g. Singleton) take the engine's
        // single-site fast path; `resolve` re-checks `selected`, which
        // must agree, so the trajectory is identical to the full sweep.
        self.scheduler.single_vertex(ctx)
    }

    fn propose<Sv: StateView + ?Sized>(
        &self,
        _ctx: &RoundCtx,
        v: VertexId,
        _state: &Sv,
        rng: &mut Xoshiro256pp,
        _scratch: &mut Self::Scratch,
    ) -> S::Mark {
        self.scheduler.mark(v, rng)
    }

    fn resolve<Sv: StateView + ?Sized>(
        &self,
        ctx: &RoundCtx,
        v: VertexId,
        state: &Sv,
        locals: &[S::Mark],
        rng: &mut Xoshiro256pp,
        scratch: &mut Self::Scratch,
    ) -> Spin {
        if !self.scheduler.selected(ctx, v, locals) {
            return state.spin(v.index());
        }
        scratch.resample(ctx.mrf(), v, state, rng)
    }

    fn hot_kernel(
        &self,
        mrf: &Arc<Mrf>,
        packing: Packing,
        block_rng: bool,
    ) -> Option<Box<dyn HotKernel<S::Mark>>> {
        Some(hotpath::luby_glauber_kernel(
            mrf,
            self.scheduler.clone(),
            packing,
            block_rng,
        ))
    }
}

/// Computes the update mask of a round from its published marks (for
/// instrumentation: which vertices the scheduler selected).
pub fn scheduled_mask<S: VertexScheduler>(
    scheduler: &S,
    ctx: &RoundCtx,
    marks: &[S::Mark],
    out: &mut [bool],
) {
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = scheduler.selected(ctx, VertexId(i as u32), marks);
    }
}

/// The single-site heat-bath Glauber dynamics as an engine rule: each
/// round, the round-shared stream picks one vertex, which resamples from
/// its conditional marginal.
#[derive(Clone, Copy, Debug, Default)]
pub struct GlauberRule;

impl SyncRule for GlauberRule {
    type Local = ();
    type Scratch = HeatBathScratch;

    const HAS_PROPOSE: bool = false;

    fn name(&self) -> &'static str {
        "Glauber"
    }

    fn make_scratch(&self, mrf: &Mrf) -> Self::Scratch {
        HeatBathScratch::new(mrf)
    }

    fn active_vertex(&self, ctx: &RoundCtx) -> Option<VertexId> {
        Some(ctx.shared_vertex())
    }

    fn propose<Sv: StateView + ?Sized>(
        &self,
        _ctx: &RoundCtx,
        _v: VertexId,
        _state: &Sv,
        _rng: &mut Xoshiro256pp,
        _scratch: &mut Self::Scratch,
    ) {
    }

    fn resolve<Sv: StateView + ?Sized>(
        &self,
        ctx: &RoundCtx,
        v: VertexId,
        state: &Sv,
        _locals: &[()],
        rng: &mut Xoshiro256pp,
        scratch: &mut Self::Scratch,
    ) -> Spin {
        scratch.resample(ctx.mrf(), v, state, rng)
    }
}

/// The single-site Metropolis chain as an engine rule: the active vertex
/// proposes `c ∼ b_v` and accepts with probability
/// `Π_{u ∼ v} Ã_uv(c, X_u)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetropolisRule;

impl SyncRule for MetropolisRule {
    type Local = ();
    type Scratch = ();

    const HAS_PROPOSE: bool = false;

    fn name(&self) -> &'static str {
        "Metropolis"
    }

    fn make_scratch(&self, _mrf: &Mrf) -> Self::Scratch {}

    fn active_vertex(&self, ctx: &RoundCtx) -> Option<VertexId> {
        Some(ctx.shared_vertex())
    }

    fn propose<Sv: StateView + ?Sized>(
        &self,
        _ctx: &RoundCtx,
        _v: VertexId,
        _state: &Sv,
        _rng: &mut Xoshiro256pp,
        _scratch: &mut Self::Scratch,
    ) {
    }

    fn resolve<Sv: StateView + ?Sized>(
        &self,
        ctx: &RoundCtx,
        v: VertexId,
        state: &Sv,
        _locals: &[()],
        rng: &mut Xoshiro256pp,
        _scratch: &mut Self::Scratch,
    ) -> Spin {
        let mrf = ctx.mrf();
        let proposal = mrf.vertex_activity(v).sample(rng);
        let mut accept_prob = 1.0;
        for (e, u) in mrf.graph().incident_edges(v) {
            accept_prob *= mrf
                .edge_activity(e)
                .normalized(proposal, state.spin(u.index()));
        }
        // One coin per step keeps coupled streams aligned.
        let coin = rng.uniform_f64();
        if coin < accept_prob {
            proposal
        } else {
            state.spin(v.index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncChain;
    use lsl_graph::generators;
    use lsl_mrf::models;

    #[test]
    fn local_metropolis_rule_preserves_feasibility() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 8);
        let mut chain = SyncChain::new(&mrf, LocalMetropolisRule::new(), 11);
        chain.run(60);
        assert!(mrf.is_feasible(chain.state()));
        for _ in 0..40 {
            chain.step();
            assert!(mrf.is_feasible(chain.state()));
        }
    }

    #[test]
    fn luby_rule_masks_are_independent_sets() {
        let mrf = models::proper_coloring(generators::torus(4, 4), 9);
        let rule = LubyGlauberRule::luby();
        let mut chain = SyncChain::new(&mrf, rule, 5);
        let mut mask = vec![false; mrf.num_vertices()];
        for _ in 0..30 {
            chain.step();
            let (master, round) = chain.last_round_key().unwrap();
            let ctx = crate::engine::RoundCtx::new(&mrf, master, round);
            scheduled_mask(chain.rule().scheduler(), &ctx, chain.locals(), &mut mask);
            assert!(mrf.graph().is_independent_set(&mask));
        }
    }

    #[test]
    fn metropolis_rule_single_site_moves() {
        let mrf = models::proper_coloring(generators::cycle(6), 4);
        let mut chain = SyncChain::new(&mrf, MetropolisRule, 2);
        for _ in 0..50 {
            let before = chain.state().to_vec();
            chain.step();
            let diff = before
                .iter()
                .zip(chain.state())
                .filter(|(a, b)| a != b)
                .count();
            assert!(diff <= 1);
        }
    }
}
